//! Observability walkthrough: capture a traced run, print the per-device
//! timeline summary, and export a Chrome trace for Perfetto.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```
//!
//! Executes one QAWS run with full trace capture, validates the exported
//! JSON by re-reading it with the crate's own parser, and writes the file
//! to `results/trace_example.json` — open it at <https://ui.perfetto.dev>
//! or in `chrome://tracing`.

use shmt::sampling::SamplingMethod;
use shmt::trace::{chrome, summary};
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;

fn main() -> Result<(), shmt::ShmtError> {
    let benchmark = Benchmark::Sobel;
    let size = 1024;
    println!("SHMT trace capture: {benchmark} on a {size}x{size} image\n");

    let inputs = benchmark.generate_inputs(size, size, 42);
    let vop = Vop::from_benchmark(benchmark, inputs)?;
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let runtime = ShmtRuntime::new(Platform::jetson(benchmark), RuntimeConfig::new(policy));

    // `execute_traced` is `execute` plus capture: same code path, same
    // bit-identical output, with a finalized trace on the report.
    let report = runtime.execute_traced(&vop)?;
    let trace = report.trace.as_ref().expect("traced run carries a trace");

    println!(
        "captured {} events across {} kinds (monotonic: {})\n",
        trace.len(),
        trace.distinct_kinds(),
        trace.is_monotonic()
    );
    print!("{}", summary::timeline_summary(trace, report.makespan_s));

    // Export, then prove the file is well-formed by re-reading it.
    let json = chrome::to_chrome_json(trace);
    let parsed = chrome::from_chrome_json(&json).expect("exporter emits valid Chrome JSON");
    println!(
        "\nChrome trace: {} complete spans, {} instants, {} counter samples",
        parsed.complete_events().count(),
        parsed.instant_events().count(),
        parsed.counter_events().count()
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/trace_example.json";
    std::fs::write(path, &json).expect("write trace file");
    println!(
        "wrote {path} ({} bytes) — load it at https://ui.perfetto.dev",
        json.len()
    );
    Ok(())
}
