//! Quickstart: run one kernel simultaneously across CPU + GPU + Edge TPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a Sobel VOP over a synthetic image, executes it under the
//! quality-aware work-stealing policy on the modeled Jetson-class
//! platform, and reports the speedup over the GPU baseline together with
//! the result quality.

use shmt::baseline::{exact_reference, gpu_baseline};
use shmt::quality::{mape, ssim};
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;

fn main() -> Result<(), shmt::ShmtError> {
    let benchmark = Benchmark::Sobel;
    let size = 2048;
    println!("SHMT quickstart: {benchmark} on a {size}x{size} image\n");

    // A VOP describes the computation without fixing data sizes or target
    // hardware (paper §3.2.1).
    let inputs = benchmark.generate_inputs(size, size, 42);
    let vop = Vop::from_benchmark(benchmark, inputs)?;

    // The modeled platform: Maxwell-class GPU, quad-A57 CPU, int8 Edge
    // TPU behind the PCIe bus, calibrated per benchmark.
    let platform = Platform::jetson(benchmark);
    let reference = exact_reference(&vop);
    let baseline = gpu_baseline(&platform, &vop, 64)?;

    // QAWS-TS: top-K criticality assignment with striding sampling — the
    // paper's best-performing quality-aware policy.
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let runtime = ShmtRuntime::new(platform, RuntimeConfig::new(policy));
    let report = runtime.execute(&vop)?;

    println!(
        "GPU baseline latency : {:8.2} ms",
        baseline.makespan_s * 1e3
    );
    for row in report.gantt(60) {
        println!("  {row}");
    }
    println!();
    println!("SHMT latency         : {:8.2} ms", report.makespan_s * 1e3);
    println!(
        "speedup              : {:8.2}x",
        baseline.makespan_s / report.makespan_s
    );
    println!();
    for d in &report.devices {
        println!(
            "  {:<8} {:3} HLOPs, busy {:7.2} ms",
            d.kind.to_string(),
            d.hlops,
            d.busy_s * 1e3
        );
    }
    println!(
        "\nquality: MAPE {:.2}%  SSIM {:.4}  ({}% of elements on the Edge TPU)",
        mape(&reference, &report.output) * 100.0,
        ssim(&reference, &report.output),
        (report.tpu_fraction * 100.0).round()
    );
    println!(
        "energy : {:.2} J vs baseline {:.2} J ({:.0}% saved)",
        report.energy.total_j(),
        baseline.energy.total_j(),
        (1.0 - report.energy.total_j() / baseline.energy.total_j()) * 100.0
    );
    Ok(())
}
