//! Portfolio option pricing with quality control: price a large synthetic
//! book of European calls under every SHMT scheduling policy and report
//! both the latency and the *dollar* impact of the Edge TPU's reduced
//! precision — the tradeoff QAWS manages.
//!
//! ```text
//! cargo run --release --example financial_risk
//! ```

use shmt::baseline::{exact_reference, gpu_baseline};
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_tensor::Tensor;

/// Worst-case absolute pricing error across the book, in dollars per
/// contract.
fn max_abs_error(reference: &Tensor, priced: &Tensor) -> f64 {
    reference
        .as_slice()
        .iter()
        .zip(priced.as_slice())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0, f64::max)
}

fn main() -> Result<(), shmt::ShmtError> {
    let benchmark = Benchmark::Blackscholes;
    let size = 2048; // ~4.2M contracts
    println!("Pricing {} European calls\n", size * size);

    let vop = Vop::from_benchmark(benchmark, benchmark.generate_inputs(size, size, 99))?;
    let platform = Platform::jetson(benchmark);
    let reference = exact_reference(&vop);
    let baseline = gpu_baseline(&platform, &vop, 64)?;
    let book_value: f64 = reference.as_slice().iter().map(|&v| v as f64).sum();
    println!(
        "GPU baseline: {:.2} ms, book value ${:.0}\n",
        baseline.makespan_s * 1e3,
        book_value
    );

    let policies = [
        Policy::WorkStealing,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        },
        Policy::Qaws {
            assignment: QawsAssignment::DeviceLimits,
            sampling: SamplingMethod::Reduction,
        },
        Policy::Oracle,
    ];
    println!(
        "{:<18}{:>10}{:>10}{:>16}{:>18}",
        "policy", "ms", "speedup", "MAPE %", "max err $/contract"
    );
    for policy in policies {
        let runtime = ShmtRuntime::new(platform.clone(), RuntimeConfig::new(policy));
        let report = runtime.execute(&vop)?;
        println!(
            "{:<18}{:>10.2}{:>10.2}{:>16.3}{:>18.4}",
            policy.name(),
            report.makespan_s * 1e3,
            baseline.makespan_s / report.makespan_s,
            shmt::quality::mape(&reference, &report.output) * 100.0,
            max_abs_error(&reference, &report.output),
        );
    }
    println!(
        "\nQuality-aware policies keep the widest-distribution tranches on\n\
         exact hardware, bounding the worst-case mispricing while retaining\n\
         most of the heterogeneous speedup."
    );
    Ok(())
}
