//! A realistic image-processing pipeline on SHMT: despeckle with a mean
//! filter, detect edges with Sobel, then histogram the edge magnitudes —
//! each stage co-executed across all three processing units, with the
//! stage output feeding the next stage's VOP.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use shmt::baseline::{exact_reference, gpu_baseline};
use shmt::quality::ssim;
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_tensor::{gen, Tensor};

fn qaws_ts() -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    }
}

/// Runs one pipeline stage through SHMT and reports it; returns the stage
/// output for the next stage.
fn stage(
    name: &str,
    benchmark: Benchmark,
    inputs: Vec<Tensor>,
    totals: &mut (f64, f64),
) -> Result<Tensor, shmt::ShmtError> {
    let vop = Vop::from_benchmark(benchmark, inputs)?;
    let platform = Platform::jetson(benchmark);
    let baseline = gpu_baseline(&platform, &vop, 64)?;
    let reference = exact_reference(&vop);

    let runtime = ShmtRuntime::new(platform, RuntimeConfig::new(qaws_ts()));
    let report = runtime.execute(&vop)?;
    let quality = if benchmark.is_image() {
        format!("SSIM {:.4}", ssim(&reference, &report.output))
    } else {
        let err = shmt::quality::mape(&reference, &report.output);
        format!("MAPE {:.2}%", err * 100.0)
    };
    println!(
        "  {name:<12} {:7.2} ms (GPU alone {:7.2} ms, {:4.2}x)  {}",
        report.makespan_s * 1e3,
        baseline.makespan_s * 1e3,
        baseline.makespan_s / report.makespan_s,
        quality,
    );
    totals.0 += report.makespan_s;
    totals.1 += baseline.makespan_s;
    Ok(report.output)
}

fn main() -> Result<(), shmt::ShmtError> {
    let size = 2048;
    println!("Edge-detection pipeline on a {size}x{size} frame\n");
    let frame = gen::image8(size, size, 7);

    let mut totals = (0.0, 0.0);
    // Stage 1: despeckle.
    let smoothed = stage(
        "mean filter",
        Benchmark::MeanFilter,
        vec![frame],
        &mut totals,
    )?;
    // Stage 2: edge detection on the smoothed frame.
    let edges = stage("sobel", Benchmark::Sobel, vec![smoothed], &mut totals)?;
    // Stage 3: edge-magnitude statistics (values clamp into the 256-bin
    // range like 8-bit magnitudes).
    let clamped = edges.map(|v| v.clamp(0.0, 255.0));
    let hist = stage(
        "histogram",
        Benchmark::Histogram,
        vec![clamped],
        &mut totals,
    )?;

    let strong_edges: f32 = hist.row(0)[64..].iter().sum();
    println!(
        "\npipeline total {:.2} ms vs GPU-only {:.2} ms ({:.2}x end to end)",
        totals.0 * 1e3,
        totals.1 * 1e3,
        totals.1 / totals.0
    );
    println!("strong edge pixels (magnitude >= 64): {strong_edges:.0}");
    Ok(())
}
