//! The paper's Fig 1 in code: the same three-function program under
//! (a) the conventional model — every function on its best single device,
//! and (c) SHMT — every function spread across all processing units.
//!
//! ```text
//! cargo run --release --example execution_models
//! ```

use shmt::pipeline::{Program, Stage};
use shmt::sampling::SamplingMethod;
use shmt::{Policy, QawsAssignment, RuntimeConfig};
use shmt_kernels::Benchmark;
use shmt_tensor::gen;

fn main() -> Result<(), shmt::ShmtError> {
    let size = 4096;
    // A denoise -> detect -> summarize program (functions A, B, C of Fig 1).
    let program = Program::new(vec![
        Stage {
            benchmark: Benchmark::MeanFilter,
            aux_seed: 1,
        },
        Stage {
            benchmark: Benchmark::Sobel,
            aux_seed: 2,
        },
        Stage {
            benchmark: Benchmark::Histogram,
            aux_seed: 3,
        },
    ])?;
    let frame = gen::image8(size, size, 2024);

    println!("Fig 1 execution models on a {size}x{size} frame, 3-stage program\n");

    // (a) Conventional: each function runs on the single best device.
    let (conventional_s, _) = program.run_conventional(frame.clone(), 64)?;
    println!(
        "(a) conventional (best single device per function): {:7.2} ms",
        conventional_s * 1e3
    );

    // (c) SHMT: every function co-executes on CPU + GPU + Edge TPU.
    let mut cfg = RuntimeConfig::new(Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    });
    cfg.partitions = 64;
    let shmt = program.run_shmt(frame, cfg)?;
    println!(
        "(c) SHMT (all devices per function):                {:7.2} ms",
        shmt.total_latency_s * 1e3
    );
    println!(
        "\nend-to-end gain: {:.2}x   energy: {:.3} J",
        conventional_s / shmt.total_latency_s,
        shmt.total_energy_j
    );
    println!("\nper-stage device shares under SHMT:");
    for (stage, report) in program.stages().iter().zip(&shmt.stages) {
        let shares: Vec<String> = report
            .device_shares()
            .iter()
            .map(|(kind, f)| format!("{kind} {:.0}%", f * 100.0))
            .collect();
        println!(
            "  {:<12} {}",
            stage.benchmark.to_string(),
            shares.join("  ")
        );
    }
    Ok(())
}
