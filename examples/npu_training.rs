//! The paper's §4.2 NPU model-construction workflow, end to end: build a
//! dataset from a target kernel, search topologies simplest-first, train,
//! post-training-quantize for the Edge TPU, and fall back to
//! quantization-aware training when PTQ degrades accuracy.
//!
//! ```text
//! cargo run --release --example npu_training
//! ```

use shmt_npu::workflow::{build_npu_model, WorkflowConfig};
use shmt_npu::{Dataset, TrainConfig};

/// Black-Scholes call price as the scalar target function (normalized
/// spot in [0.5, 1.5]) — the very kernel the paper's Blackscholes NPU
/// model approximates, taken from the benchmark suite.
fn blackscholes(x: &[f32]) -> Vec<f32> {
    vec![shmt_kernels::blackscholes::Blackscholes::default().price(x[0])]
}

fn main() {
    println!("NPU model construction (paper section 4.2)\n");
    for (name, f, range) in [
        (
            "tanh gate",
            (|x: &[f32]| vec![(2.0 * x[0]).tanh()]) as fn(&[f32]) -> Vec<f32>,
            (-1.5f32, 1.5f32),
        ),
        (
            "blackscholes",
            blackscholes as fn(&[f32]) -> Vec<f32>,
            (0.5, 1.5),
        ),
    ] {
        // Step 1: datasets from the target function on random inputs.
        let data = Dataset::from_function(f, 400, 1, range.0, range.1, 2024);
        // Steps 2-4: topology search, training, PTQ, QAT fallback.
        let config = WorkflowConfig {
            topologies: vec![vec![], vec![8], vec![16], vec![16, 16]],
            target_mse: 2e-4,
            qat_trigger: 3.0,
            train: TrainConfig {
                epochs: 300,
                learning_rate: 0.02,
                ..Default::default()
            },
        };
        let model = build_npu_model(&data, &config);
        println!("target `{name}`:");
        println!("  chosen topology : 1 -> {:?} -> 1", model.topology);
        println!(
            "  parameters      : {}",
            model.float_model.parameter_count()
        );
        println!("  fp32 val MSE    : {:.3e}", model.float_mse);
        println!("  int8 val MSE    : {:.3e}", model.quantized_mse);
        println!(
            "  QAT retraining  : {}",
            if model.used_qat { "yes" } else { "no" }
        );
        let probe = 0.5 * (range.0 + range.1);
        println!(
            "  f({probe:.2}) = {:.4} exact vs {:.4} on the int8 path\n",
            f(&[probe])[0],
            model.quantized.forward(&[probe])[0]
        );
    }
}
