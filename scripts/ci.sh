#!/usr/bin/env bash
# Offline CI for the SHMT reproduction: build, test, docs, and a trace
# smoke check. No network access required — the workspace has no registry
# dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --all-targets

echo "== tests =="
cargo test -q --workspace

if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (warnings are errors) =="
    cargo clippy -q --workspace --all-targets -- -D warnings
    # Hot-path crates additionally deny redundant_clone (a nursery lint,
    # so it needs the explicit -D): a stray clone on the serve or kernel
    # path is an allocation the arena work exists to eliminate.
    echo "== clippy hot-path (redundant_clone is an error) =="
    cargo clippy -q -p shmt-tensor -p shmt-kernels -p shmt -p shmt-serve \
        -p shmt-cluster --all-targets -- -D warnings -D clippy::redundant_clone
else
    echo "== clippy skipped (unavailable) =="
fi

echo "== SIMD asm check =="
# Proves the kernel hot loops actually autovectorize: builds shmt-kernels
# with --emit asm and requires packed float ops (mulps/addps/sqrtps) in
# the output. Skips itself on non-x86_64 hosts.
scripts/check_simd.sh

echo "== docs (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt check (hard gate) =="
    cargo fmt --all --check
else
    echo "== fmt check skipped (rustfmt unavailable) =="
fi

echo "== trace smoke check =="
# A traced run must produce Chrome JSON that the crate's own reader
# accepts; trace_run validates every file it writes before reporting it.
cargo run --release -q -p shmt-bench --bin trace_run -- --size 256 --partitions 8 >/dev/null
for f in results/trace_*.json; do
    [ -s "$f" ] || { echo "empty trace file: $f"; exit 1; }
done
echo "trace files written and validated: $(ls results/trace_*.json | wc -l)"

echo "== fault sweep smoke check =="
# fault_sweep re-reads every document with the crate's own JSON parser and
# asserts `degraded` is set iff a dropout scenario was injected; the bin
# aborts if either check fails.
cargo run --release -q -p shmt-bench --bin fault_sweep -- --size 256 --partitions 8 >/dev/null
for f in results/faults_*.json; do
    [ -s "$f" ] || { echo "empty fault sweep file: $f"; exit 1; }
    grep -q '"degraded":true' "$f" || { echo "no degraded scenario in $f"; exit 1; }
    grep -q '"name":"none"' "$f" || { echo "missing fault-free scenario in $f"; exit 1; }
done
echo "fault sweep files written and validated: $(ls results/faults_*.json | wc -l)"

echo "== perf report smoke check =="
# perf_report must produce a JSON artifact that the workspace's own parser
# accepts and that covers every benchmark's exact and NPU paths; the bin
# re-reads and validates the file itself and aborts on any gap. Committed
# full-size reports (BENCH_kernels.json) should be recorded with
# RUSTFLAGS="-C target-cpu=native" on an otherwise idle host so the
# autovectorized hot loops run at the ISA the machine actually has; the
# smoke gate here deliberately uses the portable default.
cargo run --release -q -p shmt-bench --bin perf_report -- --smoke >/dev/null
f=results/BENCH_kernels_smoke.json
[ -s "$f" ] || { echo "empty perf report: $f"; exit 1; }
grep -q '"best_ns":' "$f" || { echo "no measurements in $f"; exit 1; }
grep -q '"kernel/SRAD/npu/128"' "$f" || { echo "benchmark coverage gap in $f"; exit 1; }
# The NPU rows must be real distinct computations, not re-labelled exact
# timings: every benchmark records an output-difference flag.
grep -q '"kernel/Histogram/npu_differs":true' "$f" || { echo "Histogram npu path identical to exact in $f"; exit 1; }
if grep -q '"npu_differs":false' "$f"; then
    echo "an npu path produced output identical to exact in $f"; exit 1
fi
# Serve-path throughput gate: warm server, mixed requests, must clear
# the floor recorded in the artifact.
grep -q '"requests_per_s":' "$f" || { echo "serve RPS section missing in $f"; exit 1; }
grep -q '"rps_above_floor":true' "$f" || { echo "serve path below its RPS floor in $f"; exit 1; }
echo "perf report smoke validated: $f"

echo "== serve bench smoke check =="
# serve_bench sweeps 1/2/4/8 closed-loop clients over a mixed workload,
# asserts every served output is bit-identical to sequential execution,
# and aborts unless 4 concurrent clients beat sequential throughput; the
# artifact is re-read with the workspace's own JSON parser before the
# bin reports success.
cargo run --release -q -p shmt-bench --bin serve_bench -- --smoke >/dev/null
f=results/BENCH_serve_smoke.json
[ -s "$f" ] || { echo "empty serve report: $f"; exit 1; }
grep -q '"vops_per_s":' "$f" || { echo "no throughput measurements in $f"; exit 1; }
grep -q '"bit_identical":true' "$f" || { echo "bit-identity flag missing in $f"; exit 1; }
grep -q '"scaling_4_vs_1":' "$f" || { echo "scaling summary missing in $f"; exit 1; }
echo "serve bench smoke validated: $f"

echo "== chaos sweep smoke check =="
# chaos_sweep runs seeded fault scenarios with the quality guard off and
# on, asserts a disabled guard is bit-identical to no guard at all, that
# guarded runs never exceed their MAPE budget, and that miscalibration
# scenarios do exceed it unguarded; the bin re-reads the artifact with
# the workspace's own JSON parser and aborts on any violation.
cargo run --release -q -p shmt-bench --bin chaos_sweep -- --smoke >/dev/null
f=results/BENCH_quality_smoke.json
[ -s "$f" ] || { echo "empty chaos sweep report: $f"; exit 1; }
grep -q '"guard_off_bit_identical":true' "$f" || { echo "guard-off bit-identity flag missing in $f"; exit 1; }
grep -q '"within_budget":true' "$f" || { echo "no within-budget guarded scenario in $f"; exit 1; }
if grep -q '"within_budget":false' "$f"; then
    echo "guarded scenario exceeded its quality budget in $f"; exit 1
fi
grep -q '"flight_dumps":' "$f" || { echo "flight-dump count missing in $f"; exit 1; }
ls results/flight_chaos_*.json >/dev/null 2>&1 || { echo "no flight dumps from failing chaos scenarios"; exit 1; }
echo "chaos sweep smoke validated: $f ($(ls results/flight_chaos_*.json | wc -l) flight dumps)"

echo "== telemetry smoke check =="
# obs_report proves the telemetry layer pays for itself: serving with the
# observatory and flight ring on must stay within 5% of the NullSink
# path, the OpenMetrics exposition must round-trip byte-identically
# through the workspace's own parser, injected faults must leave flight
# dumps behind, and the per-device EWMA profile must track an injected
# 4x GPU slowdown. The bin aborts on any violation and re-validates its
# own artifact.
cargo run --release -q -p shmt-bench --bin obs_report -- --smoke >/dev/null
f=results/BENCH_obs_smoke.json
[ -s "$f" ] || { echo "empty obs report: $f"; exit 1; }
grep -q '"within_budget":true' "$f" || { echo "telemetry overhead budget flag missing in $f"; exit 1; }
grep -q '"round_trip":true' "$f" || { echo "exporter round-trip flag missing in $f"; exit 1; }
grep -q '"flight_dumps":' "$f" || { echo "flight-dump count missing in $f"; exit 1; }
grep -q '"slowdown_ratio":' "$f" || { echo "profile convergence missing in $f"; exit 1; }
ls results/flight_obs_*.json >/dev/null 2>&1 || { echo "no flight dumps from injected faults"; exit 1; }
echo "telemetry smoke validated: $f"

echo "== adaptive scheduling smoke check =="
# adapt_report closes the loop from Observatory profiles to planner
# policy: under an injected 4x GPU slowdown the adaptive arm must
# strictly beat the static planner on end-to-end virtual-time
# throughput, and under a TPU miscalibration the measured-MAPE feedback
# must hold a quality SLO the static plan breaches. Adaptation off must
# stay bit-identical to the static path. The bin aborts on any
# violation and re-validates its own artifact.
cargo run --release -q -p shmt-bench --bin adapt_report -- --smoke >/dev/null
f=results/BENCH_adapt_smoke.json
[ -s "$f" ] || { echo "empty adapt report: $f"; exit 1; }
grep -q '"adaptive_beats_static":true' "$f" || { echo "adaptive throughput win missing in $f"; exit 1; }
grep -q '"disabled_bit_identical":true' "$f" || { echo "adaptation-off bit-identity flag missing in $f"; exit 1; }
grep -q '"replay_deterministic":true' "$f" || { echo "replay determinism flag missing in $f"; exit 1; }
grep -q '"static_breaches":true' "$f" || { echo "static SLO breach flag missing in $f"; exit 1; }
grep -q '"adaptive_holds":true' "$f" || { echo "adaptive SLO hold flag missing in $f"; exit 1; }
echo "adaptive scheduling smoke validated: $f"

echo "== dag composition smoke check =="
# dag_report runs three pipelines through the VopDag layer and certifies
# its contract: the degenerate linear DAG reproduces Program exactly,
# the resident composition strictly beats naive host round-tripping on
# every pipeline, the unfused DAG is bit-identical to hand-chained
# sequential execution, the unary tail fuses, and identical element-wise
# stages leave interior edges fully resident (zero staged elements). The
# bin aborts on any violation and re-validates its own artifact with the
# workspace's JSON parser.
cargo run --release -q -p shmt-bench --bin dag_report -- --smoke >/dev/null
f=results/BENCH_dag_smoke.json
[ -s "$f" ] || { echo "empty dag report: $f"; exit 1; }
grep -q '"degenerate_matches_program":true' "$f" || { echo "linear DAG diverged from Program in $f"; exit 1; }
grep -q '"zero_staged_interior":true' "$f" || { echo "all-resident chain staged elements in $f"; exit 1; }
grep -q '"fusion_computes_chain":true' "$f" || { echo "fused kernel computed the wrong chain in $f"; exit 1; }
if grep -q '"resident_beats_naive":false' "$f"; then
    echo "a resident composition lost to naive round-tripping in $f"; exit 1
fi
if grep -q '"bit_identical":false' "$f"; then
    echo "a DAG pipeline diverged from its sequential reference in $f"; exit 1
fi
echo "dag composition smoke validated: $f"

echo "== cluster robustness smoke check =="
# cluster_report drives an N-node fleet through seeded chaos (mid-run
# crash, slow node with a hedging A/B, 2x overload, a flapping node, a
# correlated dual failure) under open-loop Poisson/bursty/diurnal load
# and certifies the routing contract: every request resolves (no hangs),
# a single-node crash loses nothing, hedging cuts p99 under a slow node,
# the Interactive p95 SLO holds under 2x overload with BestEffort shed
# first, and a flapping node is quarantined, probed, and reintegrated.
# The bin re-reads the artifact with the workspace's own JSON parser and
# aborts on any violation.
cargo run --release -q -p shmt-bench --bin cluster_report -- --smoke >/dev/null
f=results/BENCH_cluster_smoke.json
[ -s "$f" ] || { echo "empty cluster report: $f"; exit 1; }
grep -q '"no_hangs":true' "$f" || { echo "a routed request hung in $f"; exit 1; }
grep -q '"zero_lost_everywhere":true' "$f" || { echo "requests were lost in $f"; exit 1; }
grep -q '"crash_zero_lost":true' "$f" || { echo "a node crash lost requests in $f"; exit 1; }
grep -q '"hedging_improves_p99":true' "$f" || { echo "hedging failed to cut p99 in $f"; exit 1; }
grep -q '"interactive_slo_held":true' "$f" || { echo "Interactive p95 SLO broke under overload in $f"; exit 1; }
grep -q '"besteffort_shed_first":true' "$f" || { echo "shed ordering violated in $f"; exit 1; }
grep -q '"flapping_reintegrated":true' "$f" || { echo "flapping node never reintegrated in $f"; exit 1; }
grep -q '"dual_failure_served":true' "$f" || { echo "correlated dual failure dropped requests in $f"; exit 1; }
echo "cluster robustness smoke validated: $f"

echo "CI OK"
