#!/usr/bin/env bash
# Proof that the kernel hot loops autovectorize: build shmt-kernels with
# --emit asm and require packed float instructions in the output.
#
# The interior loops are written in the slice idioms (windows(3) zips,
# iter_mut().zip saxpy) that LLVM reliably turns into SIMD; this gate
# keeps that property from silently regressing — a refactor that breaks
# vectorization (say, reintroducing per-element bounds checks) collapses
# the packed-op count and fails CI. Packed sqrtps additionally pins the
# Sobel/SRAD magnitude loops specifically, since sqrt only appears there.
#
# Uses its own target dir: the RUSTFLAGS change would otherwise
# invalidate the main build cache for every later cargo invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

case "$(uname -m)" in
x86_64) ;;
*)
    echo "SIMD asm check skipped (non-x86_64 host: $(uname -m))"
    exit 0
    ;;
esac

RUSTFLAGS="--emit asm" cargo build --release -q -p shmt-kernels \
    --target-dir target/simd-check

asm=$(ls -t target/simd-check/release/deps/shmt_kernels-*.s | head -1)
[ -s "$asm" ] || { echo "no assembly emitted for shmt-kernels"; exit 1; }

packed=$(grep -cE '\b(mulps|addps|subps|vmulps|vaddps|vsubps|vfmadd[0-9]*ps)\b' "$asm" || true)
packed_sqrt=$(grep -cE '\b(sqrtps|vsqrtps)\b' "$asm" || true)

echo "packed float ops: $packed, packed sqrt: $packed_sqrt ($asm)"
if [ "$packed" -lt 50 ]; then
    echo "autovectorization regressed: only $packed packed float ops (want >= 50)"
    exit 1
fi
if [ "$packed_sqrt" -lt 1 ]; then
    echo "autovectorization regressed: no packed sqrt in the stencil magnitude loops"
    exit 1
fi
echo "SIMD asm check OK"
