//! The trace must agree with the report it rode along with: spans sum to
//! the device accounting, instants match the counters, the export
//! round-trips, and capturing nothing costs nothing.

use shmt::calibration::{bench_profile, Calibration};
use shmt::sampling::SamplingMethod;
use shmt::trace::{chrome, summary, EventKind};
use shmt::{
    Platform, Policy, QawsAssignment, RingBufferSink, RunReport, RuntimeConfig, ShmtRuntime,
    TraceRecorder, Vop,
};
use shmt_kernels::Benchmark;

/// A slowed-down platform (compute-dominant at test sizes) so every
/// device participates and steals actually happen.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Default::default()
        },
        bench_profile(b),
    )
}

fn qaws() -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    }
}

fn traced_run(policy: Policy, b: Benchmark, n: usize) -> RunReport {
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = 16;
    cfg.quality.sampling_rate = 0.01;
    ShmtRuntime::new(slow_platform(b), cfg)
        .execute_traced(&vop)
        .unwrap()
}

#[test]
fn compute_spans_reproduce_device_busy_time() {
    let report = traced_run(qaws(), Benchmark::Sobel, 256);
    let trace = report.trace.as_ref().unwrap();
    let busy = trace.busy_per_device();
    for (d, stats) in report.devices.iter().enumerate() {
        assert!(
            (busy[d] - stats.busy_s).abs() < 1e-9,
            "device {d} ({}): span sum {} vs busy_s {}",
            stats.kind,
            busy[d],
            stats.busy_s
        );
        let span_count = trace
            .compute_spans()
            .iter()
            .filter(|s| s.device == d)
            .count();
        assert_eq!(span_count, stats.hlops, "device {d} span count");
    }
}

#[test]
fn steal_events_match_report_steals() {
    let report = traced_run(Policy::WorkStealing, Benchmark::Fft, 256);
    let trace = report.trace.as_ref().unwrap();
    assert!(
        report.steals > 0,
        "work stealing must steal at this imbalance"
    );
    assert_eq!(trace.steals(), report.steals);
    assert_eq!(trace.metrics.counter("steals"), report.steals as f64);
    // Every steal's thief differs from its victim.
    for r in &trace.records {
        if let EventKind::Steal { from, to, .. } = r.kind {
            assert_ne!(from, to);
        }
    }
}

#[test]
fn qaws_trace_is_rich_and_monotonic() {
    let report = traced_run(qaws(), Benchmark::Sobel, 256);
    let trace = report.trace.as_ref().unwrap();
    assert!(trace.is_monotonic(), "finalized trace must be time-ordered");
    assert!(
        trace.distinct_kinds() >= 6,
        "QAWS should exercise >= 6 event kinds, got {}",
        trace.distinct_kinds()
    );
    for kind in [
        "PartitionStart",
        "PartitionEnd",
        "SampleOverhead",
        "Dispatch",
        "ComputeStart",
        "ComputeEnd",
        "Aggregate",
    ] {
        assert!(trace.count(kind) > 0, "missing {kind}");
    }
    // Sampling overhead tiles the serial scheduling window.
    let sampled: f64 = trace
        .records
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::SampleOverhead { cost_s, .. } => Some(cost_s),
            _ => None,
        })
        .sum();
    assert!(
        (sampled - report.scheduling_overhead_s).abs() < 1e-9,
        "sample costs {} vs overhead {}",
        sampled,
        report.scheduling_overhead_s
    );
    // Aggregation happens once per HLOP.
    assert_eq!(trace.count("Aggregate"), report.records.len());
    assert_eq!(
        trace.metrics.counter("hlops.completed"),
        report.records.len() as f64
    );
    // Bus traffic in the metrics matches the report.
    assert_eq!(trace.metrics.counter("bus.bytes"), report.bus_bytes as f64);
}

#[test]
fn chrome_export_round_trips_and_matches_busy_time() {
    let report = traced_run(qaws(), Benchmark::Sobel, 256);
    let trace = report.trace.as_ref().unwrap();
    let json = chrome::to_chrome_json(trace);
    let parsed = chrome::from_chrome_json(&json).expect("own exporter output must parse");
    for (d, stats) in report.devices.iter().enumerate() {
        assert_eq!(parsed.thread_name(d), Some(stats.kind.name()));
        let busy = parsed.span_seconds(d, "compute");
        // Microsecond serialization costs precision; 1e-6 relative slack.
        assert!(
            (busy - stats.busy_s).abs() <= 1e-6 * stats.busy_s.max(1.0),
            "device {d}: exported busy {busy} vs {}",
            stats.busy_s
        );
    }
    assert!(parsed.instant_events().count() > 0);
    assert!(
        parsed.counter_events().count() > 0,
        "queue gauges become counter tracks"
    );
}

#[test]
fn null_sink_runs_bit_identical_to_untraced() {
    let b = Benchmark::MeanFilter;
    let vop = Vop::from_benchmark(b, b.generate_inputs(256, 256, 7)).unwrap();
    let mut cfg = RuntimeConfig::new(qaws());
    cfg.partitions = 16;
    cfg.quality.sampling_rate = 0.01;
    let runtime = ShmtRuntime::new(slow_platform(b), cfg);

    let plain = runtime.execute(&vop).unwrap();
    let nulled = runtime
        .execute_with_sink(&vop, &mut shmt::NullSink)
        .unwrap();
    let traced = runtime.execute_traced(&vop).unwrap();

    for other in [&nulled, &traced] {
        assert_eq!(
            plain.output.as_slice(),
            other.output.as_slice(),
            "bit-identical output"
        );
        assert_eq!(plain.makespan_s, other.makespan_s);
        assert_eq!(plain.steals, other.steals);
        assert_eq!(plain.bus_bytes, other.bus_bytes);
        assert_eq!(plain.energy, other.energy);
        assert_eq!(plain.records.len(), other.records.len());
    }
    assert!(plain.trace.is_none());
    assert!(
        nulled.trace.is_none(),
        "external sinks leave the report bare"
    );
    assert!(traced.trace.is_some());
}

#[test]
fn ring_buffer_sink_keeps_the_tail() {
    let b = Benchmark::Sobel;
    let vop = Vop::from_benchmark(b, b.generate_inputs(256, 256, 7)).unwrap();
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 16;
    let runtime = ShmtRuntime::new(slow_platform(b), cfg);

    let mut ring = shmt::RingBufferSink::new(8);
    let full = {
        let mut rec = TraceRecorder::new();
        runtime.execute_with_sink(&vop, &mut rec).unwrap();
        rec.finish()
    };
    runtime.execute_with_sink(&vop, &mut ring).unwrap();
    assert_eq!(ring.len(), 8);
    assert_eq!(ring.dropped(), full.len() - 8);
    let _: RingBufferSink = ring;
}

#[test]
fn summary_renders_for_a_real_run() {
    let report = traced_run(qaws(), Benchmark::Sobel, 256);
    let trace = report.trace.as_ref().unwrap();
    let text = summary::timeline_summary(trace, report.makespan_s);
    for name in ["GPU", "CPU", "EdgeTPU"] {
        assert!(text.contains(name), "summary must list {name}:\n{text}");
    }
    assert!(text.contains("utilization histogram"));
}

#[test]
fn program_stages_each_carry_a_trace() {
    use shmt::pipeline::{Program, Stage};
    let program = Program::new(vec![
        Stage {
            benchmark: Benchmark::MeanFilter,
            aux_seed: 1,
        },
        Stage {
            benchmark: Benchmark::Sobel,
            aux_seed: 2,
        },
    ])
    .unwrap();
    let input = shmt_tensor::gen::image8(128, 128, 3);
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 8;
    let report = program.run_shmt_traced(input, cfg).unwrap();
    assert_eq!(report.stages.len(), 2);
    for stage in &report.stages {
        let trace = stage.trace.as_ref().expect("per-stage trace");
        assert!(trace.count("ComputeStart") > 0);
        assert!(trace.is_monotonic());
    }
}
