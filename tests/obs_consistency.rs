//! The telemetry layer must observe without perturbing: serving with the
//! full observatory wired stays bit-identical to sequential execution,
//! streaming quantiles stay within one bucket of the exact oracle, the
//! OpenMetrics exposition round-trips through its own parser, the flight
//! recorder dumps context exactly when anomalies happen, and per-device
//! EWMA profiles converge to injected hardware behaviour.

use std::path::PathBuf;

use shmt::calibration::{bench_profile, Calibration};
use shmt::sampling::SamplingMethod;
use shmt::sched::{GPU, TPU};
use shmt::{FaultPlan, Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{FlightConfig, HealthConfig, Request, Server, ServerConfig, TelemetryConfig};
use shmt_trace::openmetrics::Exposition;
use shmt_trace::{Histogram, Observatory};

/// A slowed-down platform (compute-dominant at test sizes) so injected
/// slowdowns move elements-per-busy-second instead of drowning in fixed
/// launch overheads.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Default::default()
        },
        bench_profile(b),
    )
}

fn qaws() -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    }
}

fn request(b: Benchmark, n: usize, seed: u64, policy: Policy) -> Request {
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).expect("valid VOP");
    let mut config = RuntimeConfig::new(policy);
    config.partitions = 8;
    Request::new(vop, Platform::jetson(b), config)
}

fn server_with(telemetry: TelemetryConfig) -> Server {
    Server::new(ServerConfig {
        executors: 2,
        queue_capacity: 8,
        telemetry,
        ..ServerConfig::default()
    })
}

/// A unique per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shmt_obs_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn telemetry_stays_off_the_data_path() {
    // Full telemetry on (observatory + flight ring, no dump dir) must not
    // change a single output bit versus sequential execution.
    let server = server_with(TelemetryConfig::default());
    for (i, b) in [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft]
        .into_iter()
        .enumerate()
    {
        let req = request(b, 64, 10 + i as u64, qaws());
        let reference = ShmtRuntime::new(req.platform.clone(), req.config)
            .execute(req.vop().expect("single-VOP request"))
            .expect("sequential run succeeds")
            .output;
        let served = server
            .submit_blocking(request(b, 64, 10 + i as u64, qaws()))
            .expect("server running")
            .wait()
            .expect("request succeeds");
        assert_eq!(
            served.report.output.as_slice(),
            reference.as_slice(),
            "{b}: telemetry perturbed the served output"
        );
    }
    // And the observatory did actually watch those runs.
    let obs = server.observatory();
    assert!(obs.profiles().iter().any(|p| p.spans > 0));
    assert!(obs.histogram("serve.service_seconds").is_some());
}

#[test]
fn streaming_quantiles_stay_within_one_bucket_of_the_oracle() {
    // The log-bucketed histogram promises: never below the exact
    // nearest-rank value, never more than one bucket ratio (1.25x) above.
    let mut hist = Histogram::latency_log();
    let mut exact: Vec<f64> = Vec::new();
    let mut x: f64 = 3.0e-6;
    for i in 0..4000 {
        let v = x * (1.0 + (i % 97) as f64 / 97.0);
        hist.record(v);
        exact.push(v);
        x *= 1.0021;
    }
    exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
        let got = hist.quantile(q).expect("non-empty histogram");
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let want = exact[rank - 1];
        assert!(
            got >= want && got <= want * 1.25 + 1e-12,
            "q{q}: streaming {got} vs exact {want}"
        );
    }
}

#[test]
fn openmetrics_round_trips_from_a_live_server() {
    let server = server_with(TelemetryConfig::default());
    for i in 0..6 {
        server
            .submit_blocking(request(Benchmark::Sobel, 64, 20 + i, qaws()))
            .expect("server running")
            .wait()
            .expect("request succeeds");
    }
    let text = server.export_openmetrics();
    assert!(text.ends_with("# EOF\n"), "exposition must be terminated");
    let parsed = Exposition::parse(&text).expect("own exporter output parses");
    assert_eq!(parsed.render(), text, "re-render must be byte-identical");
    assert_eq!(
        parsed.sample_value("serve_completed_total", &[]),
        Some(6.0),
        "exported counter agrees with the served request count"
    );
    // Per-device families carry one sample per device roster entry.
    let spans = parsed
        .family("shmt_device_spans")
        .expect("device span family");
    assert_eq!(spans.samples.len(), shmt_trace::DEFAULT_DEVICE_NAMES.len());
}

#[test]
fn flight_ring_evicts_and_dumps_on_anomaly() {
    let dir = scratch_dir("flight");
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 8,
        telemetry: TelemetryConfig {
            flight: FlightConfig {
                capacity: 4,
                dump_dir: Some(dir.clone()),
                ..FlightConfig::default()
            },
            ..TelemetryConfig::default()
        },
        ..ServerConfig::default()
    });
    // Clean requests first: they fill the ring but never dump.
    for i in 0..6 {
        server
            .submit_blocking(request(Benchmark::Sobel, 64, 30 + i, qaws()))
            .expect("server running")
            .wait()
            .expect("request succeeds");
    }
    assert_eq!(server.flight_dumps(), 0, "clean traffic never dumps");
    let records = server.flight_records();
    assert_eq!(records.len(), 4, "ring is bounded at its capacity");
    assert!(
        records
            .iter()
            .all(|r| r.anomalies.is_empty() && r.outcome == "ok"),
        "clean traffic records no anomalies"
    );

    // A TPU dropout forces a re-dispatch: that is an anomaly, and the
    // dump must carry the ring as context.
    let faulted = request(Benchmark::Sobel, 64, 40, qaws())
        .with_faults(FaultPlan::none().with_dropout(TPU, 1.0e-9));
    server
        .submit_blocking(faulted)
        .expect("server running")
        .wait()
        .expect("degraded request still completes");
    assert!(server.flight_dumps() >= 1, "the anomaly must dump");
    assert_eq!(
        server.metrics().counter("serve.flight_dumps"),
        server.flight_dumps() as f64
    );
    let dump = std::fs::read_dir(&dir)
        .expect("scratch dir readable")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("a dump file exists");
    let doc = std::fs::read_to_string(&dump).expect("read dump");
    let parsed = shmt_trace::json::JsonValue::parse(&doc).expect("dump is valid JSON");
    let anomalies = parsed
        .get("trigger")
        .and_then(|t| t.get("anomalies"))
        .and_then(shmt_trace::json::JsonValue::as_array)
        .expect("trigger carries its anomalies");
    assert!(!anomalies.is_empty(), "dump names the triggering anomaly");
    let recent = parsed
        .get("recent")
        .and_then(shmt_trace::json::JsonValue::as_array)
        .expect("dump carries ring context");
    assert!(
        recent.len() >= 2,
        "the ring context travels with the anomaly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ewma_profiles_converge_to_an_injected_slowdown() {
    let run = |faults: FaultPlan| -> f64 {
        let server = Server::new(ServerConfig {
            executors: 1,
            queue_capacity: 4,
            health: HealthConfig {
                enabled: false,
                ..HealthConfig::default()
            },
            ..ServerConfig::default()
        });
        for i in 0..8 {
            let b = Benchmark::Sobel;
            let vop = Vop::from_benchmark(b, b.generate_inputs(96, 96, 50 + i)).expect("valid VOP");
            let mut config = RuntimeConfig::new(qaws());
            config.partitions = 8;
            let req = Request::new(vop, slow_platform(b), config).with_faults(faults.clone());
            server
                .submit_blocking(req)
                .expect("server running")
                .wait()
                .expect("request succeeds");
        }
        let obs = server.observatory();
        let profile = obs.profile(GPU).expect("GPU profile exists");
        assert_eq!(profile.spans, 8, "every run contributed a GPU span");
        *profile
            .ewma_throughput
            .get("Sobel")
            .expect("GPU Sobel EWMA exists")
    };
    let healthy = run(FaultPlan::none());
    let slowed = run(FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0));
    let ratio = slowed / healthy;
    assert!(
        (0.18..=0.35).contains(&ratio),
        "4x slowdown must converge the EWMA to ~1/4 throughput \
         (healthy {healthy:.0}, slowed {slowed:.0}, ratio {ratio:.3})"
    );
}

#[test]
fn observatory_merge_is_order_insensitive_on_histograms() {
    // Merging two observatories must agree with recording everything into
    // one — the property that makes sharded collection trustworthy.
    let mut a = Observatory::new();
    let mut b = Observatory::new();
    let mut all = Observatory::new();
    for i in 0..500 {
        let v = 1.0e-4 * (1.0 + (i as f64) / 37.0);
        if i % 2 == 0 {
            a.record_latency("serve.service_seconds", v);
        } else {
            b.record_latency("serve.service_seconds", v);
        }
        all.record_latency("serve.service_seconds", v);
    }
    a.merge(&b);
    let merged = a.histogram("serve.service_seconds").expect("merged");
    let oracle = all.histogram("serve.service_seconds").expect("oracle");
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(merged.quantile(q), oracle.quantile(q), "quantile q{q}");
    }
    assert_eq!(merged.sum(), oracle.sum());
}
