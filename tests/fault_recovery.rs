//! Fault injection and recovery: the empty plan must be free (bit-identical
//! runs), seeded plans must be exactly reproducible, and dropout recovery
//! must respect the accuracy-class matrix — a dead TPU degrades to an
//! all-exact run, a dead GPU's work lands on the CPU and never on the TPU.

use shmt::calibration::{bench_profile, Calibration};
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::sched::{CPU, GPU, TPU};
use shmt::trace::EventKind;
use shmt::{
    FaultPlan, Platform, Policy, QawsAssignment, RunReport, RuntimeConfig, ShmtRuntime, Vop,
};
use shmt_kernels::Benchmark;

/// A slowed-down platform (compute-dominant at test sizes) so every
/// device participates; same shape as the trace-consistency tests.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Default::default()
        },
        bench_profile(b),
    )
}

fn qaws() -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    }
}

fn runtime(policy: Policy, b: Benchmark) -> ShmtRuntime {
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = 16;
    cfg.quality.sampling_rate = 0.01;
    ShmtRuntime::new(slow_platform(b), cfg)
}

fn vop(b: Benchmark, n: usize) -> Vop {
    Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap()
}

fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(
        a.output.as_slice(),
        b.output.as_slice(),
        "bit-identical output"
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.scheduling_overhead_s, b.scheduling_overhead_s);
    assert_eq!(a.steals, b.steals);
    assert_eq!(a.bus_bytes, b.bus_bytes);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.records, b.records);
    assert_eq!(a.tpu_fraction, b.tpu_fraction);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn empty_plan_is_bit_identical_to_a_plain_run() {
    let b = Benchmark::Sobel;
    let v = vop(b, 256);
    for policy in [Policy::EvenDistribution, Policy::WorkStealing, qaws()] {
        let rt = runtime(policy, b);
        let plain = rt.execute(&v).unwrap();
        let faulted = rt.execute_with_faults(&v, &FaultPlan::none()).unwrap();
        assert_reports_identical(&plain, &faulted);
        assert_eq!(
            faulted.faults,
            Default::default(),
            "empty plan reports nothing"
        );
        assert!(!faulted.faults.degraded);
    }
}

#[test]
fn every_qaws_variant_ignores_the_empty_plan() {
    let b = Benchmark::MeanFilter;
    let v = vop(b, 128);
    for policy in Policy::qaws_variants() {
        let rt = runtime(policy, b);
        let plain = rt.execute(&v).unwrap();
        let faulted = rt.execute_with_faults(&v, &FaultPlan::none()).unwrap();
        assert_reports_identical(&plain, &faulted);
    }
}

#[test]
fn seeded_fault_plans_reproduce_exactly() {
    let b = Benchmark::Fft;
    let v = vop(b, 128);
    let rt = runtime(Policy::WorkStealing, b);
    let plan = FaultPlan::none()
        .with_seed(1234)
        .with_slowdown(GPU, 0.0, 0.5, 2.0)
        .with_transfer_failures(0.4);
    let first = rt.execute_with_faults(&v, &plan).unwrap();
    let second = rt.execute_with_faults(&v, &plan).unwrap();
    assert_reports_identical(&first, &second);
    assert!(
        first.faults.injected > 0,
        "rate 0.4 over many transfers must fire"
    );
}

#[test]
fn transfer_retries_are_charged_and_traced() {
    let b = Benchmark::Fft;
    let v = vop(b, 128);
    let rt = runtime(Policy::WorkStealing, b);
    let clean = rt.execute(&v).unwrap();
    let plan = FaultPlan::none().with_seed(9).with_transfer_failures(0.3);
    let faulted = rt.execute_with_faults_traced(&v, &plan).unwrap();
    assert!(
        faulted.faults.retried > 0,
        "TPU-heavy FFT must hit transfer faults"
    );
    assert!(faulted.faults.injected >= faulted.faults.retried);
    assert!(
        !faulted.faults.degraded,
        "transient faults do not degrade the platform"
    );
    assert!(
        faulted.makespan_s >= clean.makespan_s,
        "retries cost virtual time: {} vs {}",
        faulted.makespan_s,
        clean.makespan_s
    );
    let trace = faulted.trace.as_ref().unwrap();
    assert_eq!(trace.count("Retry"), faulted.faults.retried);
    assert_eq!(
        trace.metrics.counter("faults.retries"),
        faulted.faults.retried as f64
    );
    assert_eq!(trace.count("FaultInjected"), faulted.faults.injected);
}

#[test]
fn slowdown_window_stretches_the_makespan() {
    let b = Benchmark::Sobel;
    let v = vop(b, 256);
    let rt = runtime(Policy::WorkStealing, b);
    let clean = rt.execute(&v).unwrap();
    let plan = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 8.0);
    let slowed = rt.execute_with_faults(&v, &plan).unwrap();
    assert!(
        slowed.makespan_s > clean.makespan_s,
        "an 8x GPU slowdown must cost time: {} vs {}",
        slowed.makespan_s,
        clean.makespan_s
    );
    assert!(slowed.faults.injected > 0);
    assert!(!slowed.faults.degraded);
    assert_eq!(
        slowed.records.len(),
        clean.records.len(),
        "all HLOPs still execute"
    );
}

#[test]
fn tpu_dropout_degrades_gracefully_to_exact_output() {
    let b = Benchmark::Sobel;
    let v = vop(b, 256);
    let rt = runtime(qaws(), b);
    let healthy = rt.execute(&v).unwrap();
    assert!(
        healthy.tpu_fraction > 0.0,
        "the TPU participates when alive"
    );

    let plan = FaultPlan::none().with_unavailable(TPU);
    let r = rt.execute_with_faults(&v, &plan).unwrap();
    assert!(r.faults.degraded);
    assert_eq!(r.faults.devices_lost, 1);
    assert_eq!(r.tpu_fraction, 0.0, "no element touches the dead TPU");
    assert_eq!(r.records.len(), 16, "every HLOP still executes");
    let reference = shmt::baseline::exact_reference(&v);
    assert_eq!(
        mape(&reference, &r.output),
        0.0,
        "all-exact run matches the reference"
    );
}

#[test]
fn gpu_dropout_redispatches_to_the_cpu_never_the_tpu() {
    let b = Benchmark::Sobel;
    let v = vop(b, 256);
    let rt = runtime(qaws(), b);
    let healthy = rt.execute(&v).unwrap();

    // Kill the GPU a quarter of the way through a healthy run, while its
    // queue still holds the plan's exact (most critical) partitions.
    let plan = FaultPlan::none().with_dropout(GPU, healthy.makespan_s * 0.25);
    let r = rt.execute_with_faults_traced(&v, &plan).unwrap();
    assert!(r.faults.degraded);
    assert_eq!(r.faults.devices_lost, 1);
    assert!(
        r.faults.redispatched > 0,
        "the GPU queue must not have been empty yet"
    );
    assert_eq!(r.records.len(), 16, "every HLOP still executes");

    let trace = r.trace.as_ref().unwrap();
    assert_eq!(trace.count("DeviceDown"), 1);
    assert_eq!(trace.count("Redispatch"), r.faults.redispatched);
    let mut seen = 0;
    for rec in &trace.records {
        if let EventKind::Redispatch { from, to, .. } = rec.kind {
            seen += 1;
            assert_eq!(from, GPU);
            assert_eq!(to, CPU, "exact work may never fall back to the int8 TPU");
        }
    }
    assert_eq!(seen, r.faults.redispatched);
}

#[test]
fn dropping_every_device_with_pending_work_is_an_error() {
    let b = Benchmark::Sobel;
    let v = vop(b, 128);
    let rt = runtime(Policy::WorkStealing, b);
    let plan = FaultPlan::none()
        .with_unavailable(GPU)
        .with_unavailable(CPU)
        .with_unavailable(TPU);
    let err = rt.execute_with_faults(&v, &plan).unwrap_err();
    assert!(matches!(err, shmt::ShmtError::NoCapableDevice(_)), "{err}");
}

#[test]
fn double_dropout_during_redispatch_recovers_idempotently() {
    let b = Benchmark::Sobel;
    let v = vop(b, 256);
    let rt = runtime(qaws(), b);
    let healthy = rt.execute(&v).unwrap();

    // The TPU dies first; while its orphans are being re-dispatched and
    // worked off, the GPU dies too — the second recovery must fold the
    // first one's re-dispatched work onto the CPU without losing or
    // duplicating any HLOP.
    let plan = FaultPlan::none()
        .with_dropout(TPU, healthy.makespan_s * 0.2)
        .with_dropout(GPU, healthy.makespan_s * 0.45);
    let r = rt.execute_with_faults_traced(&v, &plan).unwrap();
    assert!(r.faults.degraded);
    assert_eq!(r.faults.devices_lost, 2);
    assert_eq!(r.faults.lost, [true, false, true], "GPU and TPU attributed");
    assert_eq!(r.records.len(), 16, "every HLOP executes exactly once");
    let mut ids: Vec<usize> = r.records.iter().map(|rec| rec.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 16, "no HLOP ran twice");

    let trace = r.trace.as_ref().unwrap();
    assert_eq!(trace.count("DeviceDown"), 2);
    assert_eq!(trace.count("Redispatch"), r.faults.redispatched);
    // After both deaths every record past the second dropout is on the CPU.
    for rec in &r.records {
        if rec.start_s >= healthy.makespan_s * 0.45 {
            assert_eq!(
                rec.device,
                hetsim::DeviceKind::Cpu,
                "only the CPU survives the second dropout"
            );
        }
    }

    // Seeded double-fault recovery reproduces exactly.
    let again = rt.execute_with_faults(&v, &plan).unwrap();
    assert_reports_identical(&r, &again);
}
