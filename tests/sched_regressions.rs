//! Regression tests for three scheduler/pipeline correctness fixes:
//!
//! 1. **Stranded HLOP** — the endgame-withdrawal heuristic and the peer
//!    steal filter used inconsistent criteria, and a fault dropout of the
//!    expected thief could leave a withdrawn victim's HLOP pending
//!    forever. Every HLOP must now execute (or the run must fail with the
//!    typed `StrandedHlop` error — never a silent zero-filled tile).
//! 2. **Device-mask quality** — masking a device off redistributed its
//!    HLOPs round-robin, pushing QAWS-critical partitions onto the int8
//!    TPU. Orphans now follow the same accuracy-class rule as dropout
//!    re-dispatch.
//! 3. **Pipeline clone** — `Program::run_shmt` cloned every stage's full
//!    output tensor; the flowing tensor now moves between stages.

use hetsim::FaultPlan;
use shmt::calibration::{bench_profile, Calibration};
use shmt::pipeline::{Program, Stage};
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

fn platform(b: Benchmark, gpu_throughput: f64, cpu_ratio: f64, tpu_ratio: f64) -> Platform {
    let mut profile = bench_profile(b);
    profile.cpu_ratio = cpu_ratio;
    profile.tpu_ratio = tpu_ratio;
    Platform::with_profiles(
        Calibration {
            gpu_throughput,
            ..Default::default()
        },
        profile,
    )
}

fn exact_reference(b: Benchmark, n: usize, seed: u64) -> Tensor {
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).unwrap();
    let kernel = vop.kernel();
    let inputs: Vec<&Tensor> = vop.inputs().iter().collect();
    let mut out = kernel.shape().allocate_output(n, n);
    let tile = Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows: n,
        cols: n,
    };
    kernel.run_exact(&inputs, tile, &mut out);
    out
}

/// A deterministic configuration that stranded an HLOP before the fix:
/// the GPU drops out in the endgame right after a slower device withdrew
/// its last item expecting the GPU to come steal it. Pre-fix this tripped
/// the `records.len() == hlops.len()` debug assert (silent zero tile in
/// release); now every HLOP executes.
#[test]
fn endgame_dropout_no_longer_strands_hlops() {
    let b = Benchmark::Sobel;
    let n = 128;
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 4;
    cfg.quality.sampling_rate = 0.01;
    cfg.compute_threads = 1;
    let rt = ShmtRuntime::new(platform(b, 1.0e6, 0.05, 0.31), cfg);

    let base = rt.execute(&vop).expect("fault-free run succeeds");
    let plan = FaultPlan::none().with_dropout(0, 1.63915e-3);
    let report = rt
        .execute_with_faults(&vop, &plan)
        .expect("dropout run completes instead of stranding");
    assert_eq!(
        report.records.len(),
        base.records.len(),
        "every HLOP executes even when the expected thief drops out"
    );
    assert!(report.faults.degraded, "the dropout really fired");
}

/// Sweeps dropout times across devices and adversarial platform shapes:
/// no configuration may strand an HLOP (panic or typed error) and every
/// completed run must carry a record per HLOP.
#[test]
fn dropout_sweep_never_strands() {
    let b = Benchmark::Sobel;
    let n = 128;
    let policies = [
        Policy::WorkStealing,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        },
    ];
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
    for policy in policies {
        for parts in [4usize, 8] {
            for (cpu_r, tpu_r) in [(0.05, 0.31), (0.5, 0.1)] {
                let mut cfg = RuntimeConfig::new(policy);
                cfg.partitions = parts;
                cfg.quality.sampling_rate = 0.01;
                cfg.compute_threads = 1;
                let rt = ShmtRuntime::new(platform(b, 1.0e6, cpu_r, tpu_r), cfg);
                let base = rt.execute(&vop).expect("fault-free run succeeds");
                for dev in 0..3usize {
                    for step in 0..24 {
                        let at = base.makespan_s * f64::from(step) / 24.0;
                        let plan = FaultPlan::none().with_dropout(dev, at);
                        match rt.execute_with_faults(&vop, &plan) {
                            Ok(r) => assert_eq!(
                                r.records.len(),
                                base.records.len(),
                                "{policy:?} parts={parts} cpu={cpu_r} tpu={tpu_r} \
                                 dev={dev} at={at:e} lost HLOPs"
                            ),
                            Err(e) => panic!(
                                "{policy:?} parts={parts} cpu={cpu_r} tpu={tpu_r} \
                                 dev={dev} at={at:e} failed: {e}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Disabling the GPU under QAWS must not dump its (critical) partitions
/// onto the int8 TPU.
///
/// The precise property the orphan router guarantees: every tile the TPU
/// executes in the masked run was *planned* for the TPU — QAWS also
/// forbids the TPU stealing, so the TPU can only lose tiles to exact
/// devices, never gain critical ones. (The old round-robin redistribution
/// violated this: roughly half the GPU's critical partitions landed on
/// the TPU queue.) MAPE is compared too, with a small allowance for the
/// legitimate load-shift effect — with the GPU off, the busier CPU steals
/// fewer of the TPU's *own* planned tiles back, which is not a quality
/// violation.
#[test]
fn masked_gpu_keeps_qaws_critical_partitions_off_the_tpu() {
    let b = Benchmark::Sobel;
    let n = 256;
    let reference = exact_reference(b, n, 7);
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let gpu_throughput = 1.0e6;
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = 32;
    cfg.quality.sampling_rate = 0.02;

    // The planner's device queues, before any masking.
    let hlops = shmt::partition::partition_vop(&vop, cfg.partitions).unwrap();
    let the_plan = shmt::sched::plan(
        policy,
        &vop,
        &hlops,
        &cfg.quality,
        shmt::sched::PlanContext::new(gpu_throughput),
    );
    let planned_tpu: std::collections::BTreeSet<usize> =
        the_plan.queues[2].iter().map(|h| h.id).collect();

    let mk = |mask: [bool; 3]| {
        let mut cfg = cfg;
        cfg.device_mask = mask;
        ShmtRuntime::new(platform(b, gpu_throughput, 1.0, 3.0), cfg)
            .execute(&vop)
            .unwrap()
    };
    let full = mk([true, true, true]);
    let masked = mk([false, true, true]);
    assert!(
        masked.tpu_fraction > 0.0,
        "the TPU still participates in the masked run"
    );
    assert!(
        masked.device(hetsim::DeviceKind::Gpu).unwrap().hlops == 0,
        "the GPU is really off"
    );
    for record in &masked.records {
        if record.device == hetsim::DeviceKind::EdgeTpu {
            assert!(
                planned_tpu.contains(&record.id),
                "HLOP {} ran on the TPU but was planned for an exact device \
                 — the orphan router leaked it",
                record.id
            );
        }
    }
    let e_full = mape(&reference, &full.output);
    let e_masked = mape(&reference, &masked.output);
    assert!(
        e_masked <= e_full * 1.10,
        "masked-GPU quality degraded beyond the load-shift allowance: \
         masked MAPE {e_masked} vs full {e_full}"
    );
}

/// The TPU-only mask still routes everything to the TPU even though no
/// accuracy-class-eligible target exists (exact devices are disabled) —
/// the fallback path of the orphan router.
#[test]
fn tpu_only_mask_still_runs_on_the_tpu() {
    let b = Benchmark::Histogram;
    let vop = Vop::from_benchmark(b, b.generate_inputs(128, 128, 7)).unwrap();
    let cfg = RuntimeConfig::new(Policy::WorkStealing).tpu_only();
    let r = ShmtRuntime::new(Platform::jetson(b), cfg)
        .execute(&vop)
        .unwrap();
    assert!((r.tpu_fraction - 1.0).abs() < 1e-9);
}

/// Stage outputs move through the pipeline instead of being cloned: the
/// per-stage reports carry a 1x1 placeholder, and the program output is
/// still the deterministic chained result.
#[test]
fn pipeline_moves_stage_outputs_without_cloning() {
    let program = Program::new(vec![
        Stage {
            benchmark: Benchmark::MeanFilter,
            aux_seed: 1,
        },
        Stage {
            benchmark: Benchmark::Sobel,
            aux_seed: 2,
        },
    ])
    .unwrap();
    let n = 128;
    let input = Tensor::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 251) as f32);
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 8;
    let report = program.run_shmt(input.clone(), cfg).unwrap();
    assert_eq!(report.output.shape(), (n, n), "final output is full-sized");
    for stage in &report.stages {
        assert_eq!(
            stage.output.shape(),
            (1, 1),
            "stage outputs are placeholders, not clones"
        );
    }
    // Moving instead of cloning must not change the result.
    let again = program.run_shmt(input, cfg).unwrap();
    assert_eq!(report.output.as_slice(), again.output.as_slice());
}
