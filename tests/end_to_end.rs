//! Cross-crate integration tests: every benchmark through every policy on
//! the full stack (generators -> kernels -> partitioner -> scheduler ->
//! virtual platform -> quality metrics).

use shmt::baseline::{exact_reference, gpu_baseline, software_pipelining};
use shmt::calibration::{bench_profile, Calibration};
use shmt::experiments::fig6_policies;
use shmt::quality::{mape, ssim};
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::{Benchmark, ALL_BENCHMARKS};

const N: usize = 128;
const PARTS: usize = 8;

/// A slowed platform (compute-bound at test sizes; see Fig 12 — the real
/// prototype is launch-overhead-bound below ~1M elements).
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 2.0e6,
            ..Default::default()
        },
        bench_profile(b),
    )
}

fn vop_for(b: Benchmark) -> Vop {
    Vop::from_benchmark(b, b.generate_inputs(N, N, 0xAB)).unwrap()
}

fn run(b: Benchmark, policy: Policy) -> shmt::RunReport {
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = PARTS;
    cfg.quality.sampling_rate = 0.02;
    ShmtRuntime::new(slow_platform(b), cfg)
        .execute(&vop_for(b))
        .unwrap()
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    for b in ALL_BENCHMARKS {
        for (name, policy) in fig6_policies() {
            let shmt::experiments::Fig6Policy::Runtime(policy) = policy else {
                continue;
            };
            let report = run(b, policy);
            assert!(report.makespan_s > 0.0, "{b}/{name}");
            assert!(
                report.records.len() >= PARTS / 2,
                "{b}/{name}: only {} HLOPs",
                report.records.len()
            );
            assert!(report.energy.total_j() > 0.0, "{b}/{name}");
        }
    }
}

#[test]
fn outputs_are_faithful_when_tpu_is_disabled() {
    // With only exact devices, SHMT must reproduce the reference bitwise.
    for b in ALL_BENCHMARKS {
        let vop = vop_for(b);
        let reference = exact_reference(&vop);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = PARTS;
        cfg.device_mask = [true, true, false];
        let report = ShmtRuntime::new(slow_platform(b), cfg)
            .execute(&vop)
            .unwrap();
        assert_eq!(report.tpu_fraction, 0.0, "{b}");
        assert_eq!(report.output.as_slice(), reference.as_slice(), "{b}");
    }
}

#[test]
fn multi_device_runs_beat_single_device_runs() {
    for b in [
        Benchmark::Fft,
        Benchmark::Dct8x8,
        Benchmark::Sobel,
        Benchmark::Srad,
    ] {
        let vop = vop_for(b);
        let platform = slow_platform(b);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = PARTS;
        let all = ShmtRuntime::new(platform.clone(), cfg)
            .execute(&vop)
            .unwrap();
        let mut gpu_only = cfg;
        gpu_only.device_mask = [true, false, false];
        let solo = ShmtRuntime::new(platform, gpu_only).execute(&vop).unwrap();
        assert!(
            all.makespan_s < solo.makespan_s,
            "{b}: {} vs {}",
            all.makespan_s,
            solo.makespan_s
        );
    }
}

#[test]
fn quality_ordering_tpu_worst_oracle_best() {
    for b in [
        Benchmark::Sobel,
        Benchmark::Laplacian,
        Benchmark::Blackscholes,
    ] {
        let vop = vop_for(b);
        let reference = exact_reference(&vop);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing).tpu_only();
        cfg.partitions = PARTS;
        let tpu = ShmtRuntime::new(slow_platform(b), cfg)
            .execute(&vop)
            .unwrap();
        let oracle = run(b, Policy::Oracle);
        let e_tpu = mape(&reference, &tpu.output);
        let e_oracle = mape(&reference, &oracle.output);
        assert!(
            e_oracle < e_tpu,
            "{b}: oracle {e_oracle} must beat TPU-only {e_tpu}"
        );
    }
}

#[test]
fn image_benchmarks_maintain_ssim_under_qaws() {
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    for b in ALL_BENCHMARKS.iter().filter(|b| b.is_image()) {
        let vop = vop_for(*b);
        let reference = exact_reference(&vop);
        let report = run(*b, policy);
        let s = ssim(&reference, &report.output);
        assert!(s > 0.9, "{b}: SSIM {s}");
    }
}

#[test]
fn baselines_are_exact_and_ordered() {
    for b in [Benchmark::MeanFilter, Benchmark::Fft] {
        let vop = vop_for(b);
        let platform = slow_platform(b);
        let base = gpu_baseline(&platform, &vop, PARTS).unwrap();
        let pipe = software_pipelining(&platform, &vop, PARTS).unwrap();
        let reference = exact_reference(&vop);
        assert_eq!(base.output.as_slice(), reference.as_slice(), "{b}");
        assert!(pipe.makespan_s <= base.makespan_s, "{b}");
    }
}

#[test]
fn stealing_restrictions_hold_in_records() {
    // Under QAWS, partitions above the per-window criticality cut must
    // never execute on the Edge TPU.
    let b = Benchmark::Sobel;
    let report = run(
        b,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Reduction,
        },
    );
    let vop = vop_for(b);
    let reference = exact_reference(&vop);
    // Gather TPU-executed partition criticalities vs exact-executed.
    let tpu_count = report
        .records
        .iter()
        .filter(|r| r.device == hetsim::DeviceKind::EdgeTpu)
        .count();
    assert!(
        tpu_count < report.records.len(),
        "exact devices must hold critical work"
    );
    // And the overall result must still be close to the reference.
    assert!(mape(&reference, &report.output) < 0.5);
}

#[test]
fn deterministic_across_repeat_runs() {
    let b = Benchmark::Histogram;
    let a = run(b, Policy::WorkStealing);
    let b2 = run(b, Policy::WorkStealing);
    assert_eq!(a.makespan_s, b2.makespan_s);
    assert_eq!(a.output.as_slice(), b2.output.as_slice());
    assert_eq!(a.steals, b2.steals);
}

#[test]
fn reduction_vops_run_end_to_end() {
    use shmt::Opcode;
    let data = shmt_tensor::gen::uniform(256, 256, -5.0, 10.0, 3);
    let exact_sum: f64 = data.as_slice().iter().map(|&v| v as f64).sum();
    let (exact_min, exact_max) = data.min_max();

    let run_reduce = |opcode| {
        let vop = Vop::reduce(opcode, data.clone()).unwrap();
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = PARTS;
        ShmtRuntime::new(Platform::generic(), cfg)
            .execute(&vop)
            .unwrap()
    };

    let sum = run_reduce(Opcode::ReduceSum);
    assert!(
        (sum.output[(0, 0)] as f64 - exact_sum).abs() < 0.02 * exact_sum.abs().max(1.0),
        "sum {} vs {}",
        sum.output[(0, 0)],
        exact_sum
    );
    let avg = run_reduce(Opcode::ReduceAverage);
    assert!(
        (avg.output[(0, 0)] as f64 - exact_sum / data.len() as f64).abs() < 0.1,
        "avg {}",
        avg.output[(0, 0)]
    );
    assert_eq!(avg.output[(0, 1)], data.len() as f32);
    // Max/min are exact on fp32 devices and within a quantization step on
    // the TPU; extremes can only be under/over-estimated by the snap.
    let max = run_reduce(Opcode::ReduceMax);
    assert!(
        (max.output[(0, 0)] - exact_max).abs() < 0.2,
        "max {}",
        max.output[(0, 0)]
    );
    let min = run_reduce(Opcode::ReduceMin);
    assert!(
        (min.output[(0, 0)] - exact_min).abs() < 0.2,
        "min {}",
        min.output[(0, 0)]
    );

    // Non-reduction opcodes are rejected.
    assert!(Vop::reduce(Opcode::Add, data.clone()).is_err());
}

#[test]
fn gemm_vop_runs_end_to_end() {
    let n = 128;
    let a = shmt_tensor::gen::uniform(n, n, -1.0, 1.0, 1);
    let b = shmt_tensor::gen::uniform(n, n, -1.0, 1.0, 2);
    let vop = Vop::gemm(a.clone(), b.clone()).unwrap();
    let reference = exact_reference(&vop);
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 8;
    let report = ShmtRuntime::new(Platform::generic(), cfg)
        .execute(&vop)
        .unwrap();
    let e = mape(&reference, &report.output);
    assert!(e < 0.2, "GEMM through SHMT should be close: {e}");
    // And the exact reference matches the primitive.
    let expect = shmt_kernels::primitives::gemm(&a, &b);
    for (x, y) in reference.as_slice().iter().zip(expect.as_slice()) {
        assert!((x - y).abs() < 1e-3);
    }
}

#[test]
fn elementwise_vops_run_end_to_end() {
    use shmt_kernels::primitives::{BinaryOp, UnaryOp};
    let data = shmt_tensor::gen::uniform(128, 128, 0.1, 4.0, 11);

    let vop = Vop::unary(UnaryOp::Sqrt, data.clone()).unwrap();
    let reference = exact_reference(&vop);
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 8;
    let report = ShmtRuntime::new(Platform::generic(), cfg)
        .execute(&vop)
        .unwrap();
    assert!(
        mape(&reference, &report.output) < 0.05,
        "sqrt VOP degraded too much"
    );

    let b = shmt_tensor::gen::uniform(128, 128, -1.0, 1.0, 12);
    let vop2 = Vop::binary(BinaryOp::Add, data, b).unwrap();
    let ref2 = exact_reference(&vop2);
    let report2 = ShmtRuntime::new(Platform::generic(), cfg)
        .execute(&vop2)
        .unwrap();
    assert!(
        mape(&ref2, &report2.output) < 0.1,
        "add VOP degraded too much"
    );
    assert_eq!(
        report2.records.len(),
        report2.devices.iter().map(|d| d.hlops).sum::<usize>()
    );
}

#[test]
fn queue_stats_reflect_stealing() {
    // A fast-TPU benchmark under work stealing: somebody's queue must have
    // been stolen from, and depth stats must be populated.
    let r = run(Benchmark::Fft, Policy::WorkStealing);
    let total_stolen: usize = r.devices.iter().map(|d| d.stolen_away).sum();
    assert_eq!(total_stolen, r.steals);
    assert!(r.devices.iter().any(|d| d.max_queue_depth > 0));
}
