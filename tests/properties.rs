//! Randomized property tests over the core data structures and
//! invariants: partition coverage, quantization bounds, sampling bounds,
//! metric properties, and runtime conservation laws.
//!
//! Cases are drawn from a seeded [`Pcg32`] stream, so every run explores
//! the same inputs and failures reproduce exactly.

use shmt::partition::partition_tiles;
use shmt::quality::{mape, ssim};
use shmt::sampling::{sample_partition, SamplingMethod};
use shmt_kernels::{Benchmark, KernelShape, ALL_BENCHMARKS};
use shmt_tensor::quant::QuantParams;
use shmt_tensor::rng::Pcg32;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

/// Partitions cover the space exactly once for any shape/kernel.
#[test]
fn partitions_cover_exactly() {
    let mut rng = Pcg32::seed_from_u64(0x5151);
    for _ in 0..64 {
        let rows = rng.gen_range(1usize..300);
        let cols = rng.gen_range(1usize..300);
        let want = rng.gen_range(1usize..40);
        let bench = ALL_BENCHMARKS[rng.gen_range(0usize..ALL_BENCHMARKS.len())];
        let shape = bench.kernel().shape();
        let tiles = partition_tiles(rows, cols, want, &shape);
        let total: usize = tiles.iter().map(Tile::len).sum();
        assert_eq!(total, rows * cols, "{bench} {rows}x{cols}/{want}");
        // Disjointness via coverage counting.
        let mut covered = vec![0u8; rows * cols];
        for t in &tiles {
            for r in t.row0..t.row0 + t.rows {
                for c in t.col0..t.col0 + t.cols {
                    covered[r * cols + c] += 1;
                }
            }
        }
        assert!(
            covered.iter().all(|&v| v == 1),
            "{bench} {rows}x{cols}/{want}"
        );
        // Alignment rule.
        for t in &tiles {
            assert_eq!(t.row0 % shape.block_align, 0);
            assert_eq!(t.col0 % shape.block_align, 0);
            if shape.full_rows {
                assert_eq!(t.cols, cols);
            }
        }
    }
}

/// Quantization round-trip error is bounded by half a step (plus float
/// slack) for in-range values.
#[test]
fn quant_round_trip_bounded() {
    let mut rng = Pcg32::seed_from_u64(0x5152);
    for _ in 0..2000 {
        let lo = rng.gen_range(-1e4f32..1e4);
        let width = rng.gen_range(1e-3f32..1e4);
        let x01 = rng.next_f32();
        let hi = lo + width;
        let params = QuantParams::from_range(lo, hi);
        let x = lo + width * x01;
        let err = (params.snap(x) - x).abs();
        assert!(
            err <= params.scale() * 0.5 + width * 1e-4,
            "err {} scale {}",
            err,
            params.scale()
        );
    }
}

/// Quantize always lands in the int8 code space and dequantize inverts
/// onto the grid.
#[test]
fn quant_codes_are_stable() {
    let mut rng = Pcg32::seed_from_u64(0x5153);
    for _ in 0..2000 {
        let lo = rng.gen_range(-1e3f32..1e3);
        let width = rng.gen_range(1e-3f32..1e3);
        let x = rng.gen_range(-2e3f32..2e3);
        let params = QuantParams::from_range(lo, lo + width);
        let code = params.quantize(x);
        let snapped = params.dequantize(code);
        assert_eq!(
            params.quantize(snapped),
            code,
            "lo {lo} width {width} x {x}"
        );
    }
}

/// Sampling never exceeds the partition and honors the minimum.
#[test]
fn sampling_is_bounded() {
    const METHODS: [SamplingMethod; 3] = [
        SamplingMethod::Striding,
        SamplingMethod::UniformRandom,
        SamplingMethod::Reduction,
    ];
    let mut rng = Pcg32::seed_from_u64(0x5154);
    for _ in 0..48 {
        let rows = rng.gen_range(2usize..128);
        let cols = rng.gen_range(2usize..128);
        let rate = rng.gen_range(1e-6f64..1.0);
        let method = METHODS[rng.gen_range(0usize..METHODS.len())];
        let t = Tensor::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows,
            cols,
        };
        let s = sample_partition(&t, tile, method, rate, 42);
        assert!(!s.values.is_empty());
        assert!(s.values.len() <= rows * cols);
        assert!(s.cost_s > 0.0);
        // Every sample is a real element value.
        for v in &s.values {
            assert!(
                *v >= 0.0 && *v < (rows * cols) as f32,
                "{method:?} {rows}x{cols}"
            );
        }
    }
}

/// MAPE is zero iff outputs match; positive otherwise; scale-invariant
/// under joint positive scaling.
#[test]
fn mape_properties() {
    let mut rng = Pcg32::seed_from_u64(0x5155);
    for _ in 0..200 {
        let scale = rng.gen_range(0.1f32..10.0);
        let noise = rng.gen_range(0.001f32..0.5);
        let reference = Tensor::from_fn(16, 16, |r, c| 1.0 + ((r * 31 + c * 17) % 13) as f32);
        assert_eq!(mape(&reference, &reference.clone()), 0.0);
        let noisy = reference.map(|v| v * (1.0 + noise));
        let e1 = mape(&reference, &noisy);
        assert!(e1 > 0.0);
        // Joint scaling leaves relative error unchanged.
        let sref = reference.map(|v| v * scale);
        let snoisy = noisy.map(|v| v * scale);
        let e2 = mape(&sref, &snoisy);
        assert!((e1 - e2).abs() < 1e-4, "{} vs {}", e1, e2);
    }
}

/// SSIM stays in [-1, 1], identical tensors score 1.
#[test]
fn ssim_bounds() {
    let reference = Tensor::from_fn(24, 24, |r, c| ((r * 7 + c * 5) % 97) as f32);
    assert!((ssim(&reference, &reference.clone()) - 1.0).abs() < 1e-9);
    let mut rng = Pcg32::seed_from_u64(0x5156);
    for _ in 0..100 {
        let noise = rng.gen_range(0.0f32..50.0) + 1e-3;
        let perturbed = Tensor::from_fn(24, 24, |r, c| {
            reference[(r, c)] + noise * (((r * 13 + c * 11) % 7) as f32 - 3.0)
        });
        let s = ssim(&reference, &perturbed);
        assert!(s <= 1.0 + 1e-9, "noise {noise}: {s}");
        assert!(s >= -1.0 - 1e-9, "noise {noise}: {s}");
    }
}

/// Conservation: whatever the policy and seed, every HLOP executes
/// exactly once and histogram mass is preserved within the int8 count
/// regression tolerance.
#[test]
fn runtime_conserves_hlops_and_mass() {
    let mut rng = Pcg32::seed_from_u64(0x5157);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..1000);
        let parts = rng.gen_range(2usize..12);
        let b = Benchmark::Histogram;
        let vop = shmt::Vop::from_benchmark(b, b.generate_inputs(96, 96, seed)).unwrap();
        let mut cfg = shmt::RuntimeConfig::new(shmt::Policy::WorkStealing);
        cfg.partitions = parts;
        let report = shmt::ShmtRuntime::new(shmt::Platform::jetson(b), cfg)
            .execute(&vop)
            .unwrap();
        // Each record id unique.
        let mut ids: Vec<usize> = report.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.records.len());
        let total: f32 = report.output.as_slice().iter().sum();
        let expect = 96.0 * 96.0;
        assert!(
            (total - expect).abs() < 0.08 * expect,
            "seed {seed} parts {parts}: mass {total}"
        );
    }
}

/// The page rule: partitions of page-sized-or-larger datasets hold at
/// least one page of f32 elements.
#[test]
fn page_rule_holds() {
    let mut rng = Pcg32::seed_from_u64(0x5158);
    for _ in 0..64 {
        let rows = rng.gen_range(64usize..512);
        let cols = rng.gen_range(64usize..512);
        let want = rng.gen_range(1usize..64);
        let shape = KernelShape::elementwise();
        let tiles = partition_tiles(rows, cols, want, &shape);
        if rows * cols >= shmt_tensor::tile::MIN_VECTOR_ELEMS {
            for t in &tiles {
                assert!(
                    t.len() >= shmt_tensor::tile::MIN_VECTOR_ELEMS,
                    "tile {} elems of {}x{} / {}",
                    t.len(),
                    rows,
                    cols,
                    want
                );
            }
        }
    }
}
