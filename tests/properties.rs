//! Property-based tests (proptest) over the core data structures and
//! invariants: partition coverage, quantization bounds, sampling bounds,
//! metric properties, and runtime conservation laws.

use proptest::prelude::*;
use shmt::partition::partition_tiles;
use shmt::quality::{mape, ssim};
use shmt::sampling::{sample_partition, SamplingMethod};
use shmt_kernels::{Benchmark, KernelShape};
use shmt_tensor::quant::QuantParams;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

proptest! {
    /// Partitions cover the space exactly once for any shape/kernel.
    #[test]
    fn partitions_cover_exactly(
        rows in 1usize..300,
        cols in 1usize..300,
        want in 1usize..40,
        bench in prop::sample::select(shmt_kernels::ALL_BENCHMARKS.to_vec()),
    ) {
        let shape = bench.kernel().shape();
        let tiles = partition_tiles(rows, cols, want, &shape);
        let total: usize = tiles.iter().map(Tile::len).sum();
        prop_assert_eq!(total, rows * cols);
        // Disjointness via coverage counting.
        let mut covered = vec![0u8; rows * cols];
        for t in &tiles {
            for r in t.row0..t.row0 + t.rows {
                for c in t.col0..t.col0 + t.cols {
                    covered[r * cols + c] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&v| v == 1));
        // Alignment rule.
        for t in &tiles {
            prop_assert_eq!(t.row0 % shape.block_align, 0);
            prop_assert_eq!(t.col0 % shape.block_align, 0);
            if shape.full_rows {
                prop_assert_eq!(t.cols, cols);
            }
        }
    }

    /// Quantization round-trip error is bounded by half a step (plus float
    /// slack) for in-range values.
    #[test]
    fn quant_round_trip_bounded(lo in -1e4f32..1e4, width in 1e-3f32..1e4, x01 in 0.0f32..1.0) {
        let hi = lo + width;
        let params = QuantParams::from_range(lo, hi);
        let x = lo + width * x01;
        let err = (params.snap(x) - x).abs();
        prop_assert!(err <= params.scale() * 0.5 + width * 1e-4, "err {} scale {}", err, params.scale());
    }

    /// Quantize always lands in the int8 code space and dequantize inverts
    /// onto the grid.
    #[test]
    fn quant_codes_are_stable(lo in -1e3f32..1e3, width in 1e-3f32..1e3, x in -2e3f32..2e3) {
        let params = QuantParams::from_range(lo, lo + width);
        let code = params.quantize(x);
        let snapped = params.dequantize(code);
        prop_assert_eq!(params.quantize(snapped), code);
    }

    /// Sampling never exceeds the partition and honors the minimum.
    #[test]
    fn sampling_is_bounded(
        rows in 2usize..128,
        cols in 2usize..128,
        rate in 1e-6f64..1.0,
        method in prop::sample::select(vec![
            SamplingMethod::Striding,
            SamplingMethod::UniformRandom,
            SamplingMethod::Reduction,
        ]),
    ) {
        let t = Tensor::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
        let tile = Tile { index: 0, row0: 0, col0: 0, rows, cols };
        let s = sample_partition(&t, tile, method, rate, 42);
        prop_assert!(!s.values.is_empty());
        prop_assert!(s.values.len() <= rows * cols);
        prop_assert!(s.cost_s > 0.0);
        // Every sample is a real element value.
        for v in &s.values {
            prop_assert!(*v >= 0.0 && *v < (rows * cols) as f32);
        }
    }

    /// MAPE is zero iff outputs match; positive otherwise; scale-invariant
    /// under joint positive scaling.
    #[test]
    fn mape_properties(scale in 0.1f32..10.0, noise in 0.001f32..0.5) {
        let reference = Tensor::from_fn(16, 16, |r, c| 1.0 + ((r * 31 + c * 17) % 13) as f32);
        prop_assert_eq!(mape(&reference, &reference.clone()), 0.0);
        let noisy = reference.map(|v| v * (1.0 + noise));
        let e1 = mape(&reference, &noisy);
        prop_assert!(e1 > 0.0);
        // Joint scaling leaves relative error unchanged.
        let sref = reference.map(|v| v * scale);
        let snoisy = noisy.map(|v| v * scale);
        let e2 = mape(&sref, &snoisy);
        prop_assert!((e1 - e2).abs() < 1e-4, "{} vs {}", e1, e2);
    }

    /// SSIM is symmetric-ish in its structural sense: identical tensors
    /// score 1, and adding noise can only lower it.
    #[test]
    fn ssim_bounds(noise in 0.0f32..50.0) {
        let reference = Tensor::from_fn(24, 24, |r, c| ((r * 7 + c * 5) % 97) as f32);
        let perturbed = Tensor::from_fn(24, 24, |r, c| {
            reference[(r, c)] + noise * (((r * 13 + c * 11) % 7) as f32 - 3.0)
        });
        let s = ssim(&reference, &perturbed);
        prop_assert!(s <= 1.0 + 1e-9);
        prop_assert!(s >= -1.0 - 1e-9);
        if noise == 0.0 {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation: whatever the policy and seed, every HLOP executes
    /// exactly once and histogram mass is preserved within the int8 count
    /// regression tolerance.
    #[test]
    fn runtime_conserves_hlops_and_mass(seed in 0u64..1000, parts in 2usize..12) {
        let b = Benchmark::Histogram;
        let vop = shmt::Vop::from_benchmark(b, b.generate_inputs(96, 96, seed)).unwrap();
        let mut cfg = shmt::RuntimeConfig::new(shmt::Policy::WorkStealing);
        cfg.partitions = parts;
        let report = shmt::ShmtRuntime::new(shmt::Platform::jetson(b), cfg)
            .execute(&vop)
            .unwrap();
        // Each record id unique.
        let mut ids: Vec<usize> = report.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), report.records.len());
        let total: f32 = report.output.as_slice().iter().sum();
        let expect = 96.0 * 96.0;
        prop_assert!((total - expect).abs() < 0.08 * expect, "mass {}", total);
    }

    /// The page rule: partitions of page-sized-or-larger datasets hold at
    /// least one page of f32 elements.
    #[test]
    fn page_rule_holds(rows in 64usize..512, cols in 64usize..512, want in 1usize..64) {
        let shape = KernelShape::elementwise();
        let tiles = partition_tiles(rows, cols, want, &shape);
        if rows * cols >= shmt_tensor::tile::MIN_VECTOR_ELEMS {
            for t in &tiles {
                prop_assert!(
                    t.len() >= shmt_tensor::tile::MIN_VECTOR_ELEMS,
                    "tile {} elems of {}x{} / {}",
                    t.len(), rows, cols, want
                );
            }
        }
    }
}
