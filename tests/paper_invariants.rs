//! Shape invariants from the paper's evaluation (§5), asserted at test
//! scale on a compute-bound virtual platform: orderings and directions the
//! reproduction must preserve, independent of absolute magnitudes.

use shmt::baseline::{exact_reference, gpu_baseline};
use shmt::calibration::{bench_profile, Calibration};
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;

const N: usize = 256;
const PARTS: usize = 16;

fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 8.0e6,
            ..Default::default()
        },
        bench_profile(b),
    )
}

struct Ctx {
    vop: Vop,
    reference: shmt_tensor::Tensor,
    baseline_s: f64,
    baseline_j: f64,
    platform: Platform,
}

fn ctx(b: Benchmark) -> Ctx {
    let vop = Vop::from_benchmark(b, b.generate_inputs(N, N, 0x5EED)).unwrap();
    let platform = slow_platform(b);
    let reference = exact_reference(&vop);
    let base = gpu_baseline(&platform, &vop, PARTS).unwrap();
    Ctx {
        vop,
        reference,
        baseline_s: base.makespan_s,
        baseline_j: base.energy.total_j(),
        platform,
    }
}

fn run(c: &Ctx, policy: Policy) -> shmt::RunReport {
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = PARTS;
    cfg.quality.sampling_rate = 0.01;
    ShmtRuntime::new(c.platform.clone(), cfg)
        .execute(&c.vop)
        .unwrap()
}

fn qaws(s: SamplingMethod) -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: s,
    }
}

/// §5.2: work stealing speeds up every benchmark whose devices have spare
/// throughput; even distribution is bounded by the slower device.
#[test]
fn fig6_work_stealing_beats_even_distribution() {
    for b in [
        Benchmark::MeanFilter,
        Benchmark::Dwt,
        Benchmark::Laplacian,
        Benchmark::Hotspot,
    ] {
        let c = ctx(b);
        let ws = run(&c, Policy::WorkStealing);
        let even = run(&c, Policy::EvenDistribution);
        assert!(
            ws.makespan_s < even.makespan_s,
            "{b}: WS {} vs even {}",
            ws.makespan_s,
            even.makespan_s
        );
        assert!(
            c.baseline_s / ws.makespan_s > 1.2,
            "{b}: WS must actually speed up"
        );
    }
}

/// §5.2: the full IRA technique's canary executions make it slower than
/// the GPU baseline.
#[test]
fn fig6_ira_is_slower_than_baseline() {
    for b in [Benchmark::Fft, Benchmark::Sobel] {
        let c = ctx(b);
        let ira = run(&c, Policy::IraSampling);
        assert!(
            c.baseline_s / ira.makespan_s < 1.0,
            "{b}: IRA speedup {}",
            c.baseline_s / ira.makespan_s
        );
    }
}

/// §5.2: QAWS pays a bounded performance cost relative to unrestricted
/// work stealing.
#[test]
fn fig6_qaws_close_to_but_not_above_work_stealing() {
    for b in [Benchmark::Fft, Benchmark::Dct8x8, Benchmark::MeanFilter] {
        let c = ctx(b);
        let ws = run(&c, Policy::WorkStealing);
        let ts = run(&c, qaws(SamplingMethod::Striding));
        let ratio = ts.makespan_s / ws.makespan_s;
        // Scheduling noise allows small inversions; QAWS must never be
        // meaningfully faster (it only adds restrictions) nor much slower.
        assert!(
            ratio >= 0.95,
            "{b}: QAWS should not meaningfully beat WS ({ratio})"
        );
        assert!(ratio < 1.5, "{b}: QAWS cost should be bounded ({ratio})");
    }
}

/// §5.3: quality ordering — TPU-only is the worst, plain work stealing
/// sits in the middle, quality-aware policies approach the oracle.
#[test]
fn fig7_quality_ordering() {
    for b in [Benchmark::Sobel, Benchmark::Blackscholes] {
        let c = ctx(b);
        let mut tpu_cfg = RuntimeConfig::new(Policy::WorkStealing).tpu_only();
        tpu_cfg.partitions = PARTS;
        let tpu = ShmtRuntime::new(c.platform.clone(), tpu_cfg)
            .execute(&c.vop)
            .unwrap();
        let ws = run(&c, Policy::WorkStealing);
        let ts = run(&c, qaws(SamplingMethod::Reduction));
        let oracle = run(&c, Policy::Oracle);

        let e = |r: &shmt::RunReport| mape(&c.reference, &r.output);
        let (e_tpu, e_ws, e_ts, e_oracle) = (e(&tpu), e(&ws), e(&ts), e(&oracle));
        assert!(
            e_tpu > e_ws,
            "{b}: TPU-only {e_tpu} must be worst (WS {e_ws})"
        );
        assert!(
            e_ts <= e_ws * 1.05,
            "{b}: QAWS {e_ts} must not lose to WS {e_ws}"
        );
        assert!(
            e_oracle <= e_ts * 1.2,
            "{b}: oracle {e_oracle} near-best vs QAWS {e_ts}"
        );
    }
}

/// §5.4 (Fig 9): raising the sampling rate must not worsen quality, and
/// speedup stays roughly flat.
#[test]
fn fig9_more_samples_do_not_hurt() {
    let b = Benchmark::Sobel;
    let c = ctx(b);
    let rates = [2.0f64.powi(-12), 2.0f64.powi(-8), 2.0f64.powi(-5)];
    let mut errors = Vec::new();
    let mut times = Vec::new();
    for rate in rates {
        let mut cfg = RuntimeConfig::new(qaws(SamplingMethod::Striding));
        cfg.partitions = PARTS;
        cfg.quality.sampling_rate = rate;
        let r = ShmtRuntime::new(c.platform.clone(), cfg)
            .execute(&c.vop)
            .unwrap();
        errors.push(mape(&c.reference, &r.output));
        times.push(r.makespan_s);
    }
    assert!(
        errors[2] <= errors[0] * 1.1,
        "denser sampling should not hurt quality: {errors:?}"
    );
    assert!(
        times[2] < times[0] * 1.3,
        "sampling cost stays modest: {times:?}"
    );
}

/// §5.5 (Fig 10): SHMT reduces energy and EDP against the GPU baseline.
#[test]
fn fig10_energy_and_edp_reduction() {
    for b in [Benchmark::Fft, Benchmark::Dct8x8, Benchmark::Srad] {
        let c = ctx(b);
        let r = run(&c, qaws(SamplingMethod::Striding));
        assert!(
            r.energy.total_j() < c.baseline_j,
            "{b}: energy {} vs baseline {}",
            r.energy.total_j(),
            c.baseline_j
        );
        let edp_ratio = r.edp() / (c.baseline_j * c.baseline_s);
        assert!(edp_ratio < 0.8, "{b}: EDP ratio {edp_ratio}");
    }
}

/// §5.6 (Table 3): communication overhead stays small under pipelining.
#[test]
fn table3_comm_overhead_small() {
    for b in [Benchmark::Fft, Benchmark::Histogram, Benchmark::Srad] {
        let c = ctx(b);
        let r = run(&c, qaws(SamplingMethod::Striding));
        assert!(
            r.comm_overhead() < 0.08,
            "{b}: comm overhead {}",
            r.comm_overhead()
        );
    }
}

/// §5.6 (Fig 11): footprint ratios straddle 1 — small overhead for most
/// benchmarks, reductions where the TPU replaces large GPU intermediates.
/// (Measured at 1024x1024: the resident Edge TPU model is a fixed few MB,
/// so tiny datasets would overstate the ratio.)
#[test]
fn fig11_memory_ratios() {
    let base = |b: Benchmark| {
        let vop = Vop::from_benchmark(b, b.generate_inputs(1024, 1024, 5)).unwrap();
        let platform = slow_platform(b);
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = PARTS;
        let r = ShmtRuntime::new(platform.clone(), cfg)
            .execute(&vop)
            .unwrap();
        let bl = gpu_baseline(&platform, &vop, PARTS).unwrap();
        r.peak_memory_bytes as f64 / bl.peak_memory_bytes as f64
    };
    let sobel = base(Benchmark::Sobel); // big GPU intermediates
    let bs = base(Benchmark::Blackscholes); // none
    assert!(sobel < 1.0, "Sobel ratio {sobel}");
    assert!(
        sobel < bs,
        "Sobel {sobel} must save more than Blackscholes {bs}"
    );
    assert!(bs > 0.95 && bs < 2.2, "Blackscholes ratio {bs}");
}

/// §5.7 (Fig 12): speedup grows with problem size on the *real* overhead
/// calibration (launch overheads dominate small problems).
#[test]
fn fig12_speedup_grows_with_problem_size() {
    let b = Benchmark::Fft;
    let speedup_at = |n: usize| {
        let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 1)).unwrap();
        let platform = Platform::jetson(b);
        let base = gpu_baseline(&platform, &vop, PARTS).unwrap();
        let mut cfg = RuntimeConfig::new(qaws(SamplingMethod::Striding));
        cfg.partitions = PARTS;
        let r = ShmtRuntime::new(platform, cfg).execute(&vop).unwrap();
        base.makespan_s / r.makespan_s
    };
    let small = speedup_at(64);
    let large = speedup_at(512);
    assert!(
        large > small,
        "speedup must grow with size: {small} -> {large}"
    );
}
