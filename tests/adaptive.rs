//! Adaptive-scheduling contract tests: the neutral calibration is the
//! exact identity (adaptation off == static planner, bit for bit),
//! recalibrated plans are deterministic given the same observation
//! stream, observed speed factors cut the makespan under an injected
//! slowdown, and measured-MAPE feedback squeezes a miscalibrated TPU
//! out of planning without breaching the quality SLO.

use shmt::calibration::{bench_profile, AdaptiveConfig, Calibration};
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::sched::{CPU, GPU, TPU};
use shmt::{
    AdaptiveCalibration, FaultPlan, GuardConfig, Platform, Policy, QawsAssignment, RuntimeConfig,
    ShmtRuntime, Vop,
};
use shmt_kernels::Benchmark;
use shmt_trace::Observatory;

/// A compute-dominant platform (slow GPU) so decision-side estimates
/// and injected slowdowns are not drowned by fixed launch overheads.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Calibration::default()
        },
        bench_profile(b),
    )
}

fn vop(b: Benchmark, n: usize, seed: u64) -> Vop {
    Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).expect("valid VOP")
}

fn config(policy: Policy, adapt: AdaptiveCalibration) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(policy);
    config.partitions = 16;
    config.adapt = adapt;
    config
}

/// What the static model says each device sustains on this kernel, in
/// elements per second — the denominator `calibrate` compares observed
/// EWMA throughput against.
fn modeled_elems_per_s(platform: &Platform, v: &Vop) -> [f64; 3] {
    let work = v.kernel().work_per_element();
    let profiles = platform.device_profiles();
    [
        profiles[GPU].throughput / work,
        profiles[CPU].throughput / work,
        profiles[TPU].throughput / work,
    ]
}

/// Feeds one finished report into an observatory the way the serving
/// layer does: per-device spans for busy devices, measured MAPE when
/// the guard checked anything.
fn feed(obs: &mut Observatory, report: &shmt::RunReport, opcode: &str) {
    for (d, (_, elems)) in report.device_elements().into_iter().enumerate() {
        let busy = report.devices[d].busy_s;
        if busy > 0.0 && elems > 0 {
            obs.observe_span(d, opcode, elems, busy);
        }
    }
    if report.quality.enabled && report.quality.checked_hlops > 0 {
        obs.observe_mape(TPU, report.quality.true_mape);
    }
}

#[test]
fn insufficient_evidence_calibrates_to_the_exact_identity() {
    // Two spans sit below the confidence gate: the resolved calibration
    // must be the *exact* neutral value, and a run carrying it must be
    // bit-identical to the static configuration — output and makespan.
    let b = Benchmark::Sobel;
    let platform = slow_platform(b);
    let v = vop(b, 96, 7);
    let mut obs = Observatory::new();
    for _ in 0..2 {
        obs.observe_span(GPU, "Sobel", 9216, 0.036); // 4x off-model
    }
    let cal = AdaptiveConfig::enabled().calibrate(
        obs.profiles(),
        modeled_elems_per_s(&platform, &v),
        "Sobel",
        None,
    );
    assert!(cal.is_neutral(), "below-gate evidence must stay neutral");

    let faults = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0);
    let static_run = ShmtRuntime::new(
        platform.clone(),
        config(Policy::WorkStealing, AdaptiveCalibration::neutral()),
    )
    .execute_with_faults(&v, &faults)
    .expect("static run succeeds");
    let adaptive_run = ShmtRuntime::new(platform, config(Policy::WorkStealing, cal))
        .execute_with_faults(&v, &faults)
        .expect("neutral-calibrated run succeeds");
    assert_eq!(
        static_run.output.as_slice(),
        adaptive_run.output.as_slice(),
        "neutral calibration must be bit-identical"
    );
    assert_eq!(static_run.makespan_s, adaptive_run.makespan_s);
    assert_eq!(static_run.tpu_fraction, adaptive_run.tpu_fraction);
}

#[test]
fn recalibrated_runs_are_deterministic_for_the_same_stream() {
    // Same observation stream -> same calibration -> bit-identical runs.
    let b = Benchmark::Sobel;
    let platform = slow_platform(b);
    let v = vop(b, 96, 11);
    let faults = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0);
    let run_once = || {
        let mut obs = Observatory::new();
        for i in 0..4 {
            let warm = ShmtRuntime::new(
                platform.clone(),
                config(Policy::WorkStealing, AdaptiveCalibration::neutral()),
            )
            .execute_with_faults(&vop(b, 96, 20 + i), &faults)
            .expect("warmup run succeeds");
            feed(&mut obs, &warm, "Sobel");
        }
        let cal = AdaptiveConfig::enabled().calibrate(
            obs.profiles(),
            modeled_elems_per_s(&platform, &v),
            "Sobel",
            None,
        );
        assert!(!cal.is_neutral(), "a sustained 4x slowdown must register");
        let report = ShmtRuntime::new(platform.clone(), config(Policy::WorkStealing, cal))
            .execute_with_faults(&v, &faults)
            .expect("recalibrated run succeeds");
        (cal, report)
    };
    let (cal_a, run_a) = run_once();
    let (cal_b, run_b) = run_once();
    assert_eq!(cal_a, cal_b, "calibration is a pure function of the stream");
    assert_eq!(run_a.output.as_slice(), run_b.output.as_slice());
    assert_eq!(run_a.makespan_s, run_b.makespan_s);
}

#[test]
fn observed_speed_factors_cut_the_slowdown_makespan() {
    // Under a 4x GPU slowdown the static planner keeps trusting the
    // model and leaves work stranded on the slow device; decision-side
    // speed factors shift steals and withdrawal toward the healthy
    // devices and must strictly improve the virtual makespan.
    let b = Benchmark::Sobel;
    let platform = slow_platform(b);
    let faults = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0);
    let mut obs = Observatory::new();
    let mut static_makespan = 0.0;
    for i in 0..4 {
        let report = ShmtRuntime::new(
            platform.clone(),
            config(Policy::WorkStealing, AdaptiveCalibration::neutral()),
        )
        .execute_with_faults(&vop(b, 128, 30 + i), &faults)
        .expect("static run succeeds");
        feed(&mut obs, &report, "Sobel");
        static_makespan = report.makespan_s;
    }
    let probe = vop(b, 128, 34);
    let cal = AdaptiveConfig::enabled().calibrate(
        obs.profiles(),
        modeled_elems_per_s(&platform, &probe),
        "Sobel",
        None,
    );
    assert!(
        cal.speed_factors[GPU] < 0.5,
        "the GPU factor must reflect the slowdown, got {:?}",
        cal.speed_factors
    );
    let static_report = ShmtRuntime::new(
        platform.clone(),
        config(Policy::WorkStealing, AdaptiveCalibration::neutral()),
    )
    .execute_with_faults(&probe, &faults)
    .expect("static probe succeeds");
    let adaptive_report = ShmtRuntime::new(platform, config(Policy::WorkStealing, cal))
        .execute_with_faults(&probe, &faults)
        .expect("adaptive probe succeeds");
    assert!(
        adaptive_report.makespan_s < static_report.makespan_s,
        "adaptive {:.6}s must beat static {:.6}s (earlier static {static_makespan:.6}s)",
        adaptive_report.makespan_s,
        static_report.makespan_s
    );
}

#[test]
fn tpu_admission_scales_planner_eligibility() {
    let b = Benchmark::Sobel;
    let platform = slow_platform(b);
    let v = vop(b, 128, 40);
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    // Admission 1.0 is the identity on the planner.
    let unit = {
        let mut cal = AdaptiveCalibration::neutral();
        cal.tpu_admission = 1.0;
        cal
    };
    let static_report = ShmtRuntime::new(
        platform.clone(),
        config(policy, AdaptiveCalibration::neutral()),
    )
    .execute(&v)
    .expect("static run succeeds");
    let unit_report = ShmtRuntime::new(platform.clone(), config(policy, unit))
        .execute(&v)
        .expect("unit-admission run succeeds");
    assert_eq!(
        static_report.output.as_slice(),
        unit_report.output.as_slice(),
        "admission 1.0 must leave plans bit-identical"
    );
    // Admission 0.0 evicts the TPU: everything runs exactly.
    let evict = {
        let mut cal = AdaptiveCalibration::neutral();
        cal.tpu_admission = 0.0;
        cal
    };
    let evicted = ShmtRuntime::new(platform, config(policy, evict))
        .execute(&v)
        .expect("evicted run succeeds");
    assert_eq!(evicted.tpu_fraction, 0.0, "admission 0 evicts the TPU");
    assert!(
        static_report.tpu_fraction > 0.0,
        "the static plan must have used the TPU for the eviction to mean anything"
    );
}

#[test]
fn mape_feedback_squeezes_a_miscalibrated_tpu_under_the_slo() {
    // Closed loop under a TPU gain error: monitoring guards measure the
    // delivered error, the observatory accumulates it, and the resolved
    // admission must evict the TPU so the served output honors an SLO
    // the static plan breaches.
    let b = Benchmark::Sobel;
    let platform = slow_platform(b);
    let slo = 0.10;
    let faults = FaultPlan::none().with_tpu_miscalibration(1.5, 0.1);
    let policy = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let run = |seed: u64, cal: AdaptiveCalibration| {
        let mut cfg = config(policy, cal);
        cfg.guard = GuardConfig::monitor(slo);
        ShmtRuntime::new(platform.clone(), cfg)
            .execute_with_faults(&vop(b, 128, seed), &faults)
            .expect("monitored run succeeds")
    };
    let reference = |seed: u64| {
        let mut cfg = config(policy, AdaptiveCalibration::neutral());
        cfg.device_mask = [true, true, false]; // exact devices only
        ShmtRuntime::new(platform.clone(), cfg)
            .execute(&vop(b, 128, seed))
            .expect("exact reference succeeds")
            .output
    };

    let mut obs = Observatory::new();
    let mut static_breached = false;
    for i in 0..4 {
        let seed = 50 + i;
        let report = run(seed, AdaptiveCalibration::neutral());
        static_breached |= mape(&reference(seed), &report.output) > slo;
        feed(&mut obs, &report, "Sobel");
    }
    assert!(
        static_breached,
        "a 1.5x gain error must breach a {slo} MAPE SLO under the static plan"
    );
    let cfg = AdaptiveConfig::enabled();
    let cal = cfg.calibrate(
        obs.profiles(),
        modeled_elems_per_s(&platform, &vop(b, 128, 54)),
        "Sobel",
        Some(slo),
    );
    assert!(
        cal.tpu_admission < 0.1,
        "measured error far over target must squeeze admission, got {}",
        cal.tpu_admission
    );
    let adaptive = run(54, cal);
    let adaptive_mape = mape(&reference(54), &adaptive.output);
    assert!(
        adaptive.tpu_fraction < 0.1,
        "adaptive plan must shed TPU work, got {}",
        adaptive.tpu_fraction
    );
    assert!(
        adaptive_mape <= slo,
        "adaptive output {adaptive_mape} must honor the {slo} SLO"
    );
}
