//! Randomized property tests over [`shmt::VopDag`]: node labels and the
//! implied topological order must never change computed values, and
//! fully-overlapping Edge-TPU placements must make interior edges
//! entirely device-resident (zero staged input elements).
//!
//! Cases are drawn from a seeded [`Pcg32`] stream, so every run explores
//! the same graphs and failures reproduce exactly.

use shmt::dag::{DagConfig, DagNode, VopDag};
use shmt::{Policy, RuntimeConfig};
use shmt_kernels::primitives::{BinaryOp, UnaryOp};
use shmt_kernels::Benchmark;
use shmt_tensor::gen;
use shmt_tensor::rng::Pcg32;

fn cfg() -> DagConfig {
    let mut rt = RuntimeConfig::new(Policy::WorkStealing);
    rt.partitions = 8;
    DagConfig::new(rt)
}

/// Builds a random single-sink DAG: a benchmark root, a layer of unary
/// nodes over random earlier producers, and binary joins folding every
/// dangling output down to one sink.
fn random_dag(rng: &mut Pcg32) -> VopDag {
    const UNARY: [UnaryOp; 3] = [UnaryOp::Relu, UnaryOp::Sqrt, UnaryOp::Tanh];
    const BINARY: [BinaryOp; 3] = [BinaryOp::Add, BinaryOp::Max, BinaryOp::Min];
    const ROOTS: [Benchmark; 3] = [Benchmark::MeanFilter, Benchmark::Sobel, Benchmark::Dwt];

    let root = ROOTS[rng.gen_range(0usize..ROOTS.len())];
    let mut nodes = vec![DagNode::benchmark(root, rng.gen_range(0u64..100), vec![])];
    for _ in 0..rng.gen_range(2usize..7) {
        let op = UNARY[rng.gen_range(0usize..UNARY.len())];
        let dep = rng.gen_range(0usize..nodes.len());
        nodes.push(DagNode::unary(op, dep));
    }
    // Fold all current sinks pairwise until exactly one remains.
    loop {
        let mut consumed = vec![false; nodes.len()];
        for n in &nodes {
            for &d in &n.deps {
                consumed[d] = true;
            }
        }
        let sinks: Vec<usize> = (0..nodes.len()).filter(|&i| !consumed[i]).collect();
        if sinks.len() < 2 {
            break;
        }
        let op = BINARY[rng.gen_range(0usize..BINARY.len())];
        nodes.push(DagNode::binary(op, sinks[0], sinks[1]));
    }
    VopDag::new(nodes).expect("generated DAG validates")
}

/// Relabels a DAG's nodes through a random permutation (dependencies
/// remapped, slot order preserved). Acyclicity is label-independent, so
/// the permuted graph still validates — but its internal topological
/// order, and hence stage execution order, generally differs.
fn relabel(dag: &VopDag, rng: &mut Pcg32) -> VopDag {
    let n = dag.len();
    // Fisher–Yates: perm[old] = new.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0usize..i + 1);
        perm.swap(i, j);
    }
    let mut nodes: Vec<Option<DagNode>> = vec![None; n];
    for (old, node) in dag.nodes().iter().enumerate() {
        let mut moved = node.clone();
        moved.deps = node.deps.iter().map(|&d| perm[d]).collect();
        nodes[perm[old]] = Some(moved);
    }
    let nodes: Vec<DagNode> = nodes.into_iter().map(|n| n.expect("bijection")).collect();
    VopDag::new(nodes).expect("relabeled DAG validates")
}

/// Any relabeling of a DAG — and therefore any admissible topological
/// execution order — produces bit-identical outputs: values are decided
/// per stage by the ordinary runtime, never by graph traversal order.
#[test]
fn relabeled_dags_are_bit_identical() {
    let mut rng = Pcg32::seed_from_u64(0xDA61);
    for case in 0..6 {
        let dag = random_dag(&mut rng);
        let input = gen::image8(48, 48, 7 + case);
        let reference = dag.run(&input, &cfg()).expect("reference run");
        for _ in 0..2 {
            let shuffled = relabel(&dag, &mut rng);
            let got = shuffled.run(&input, &cfg()).expect("relabeled run");
            assert_eq!(
                got.output.as_slice(),
                reference.output.as_slice(),
                "case {case}: relabeling changed computed values"
            );
            assert_eq!(got.stages.len(), reference.stages.len(), "case {case}");
            assert_eq!(got.fused, reference.fused, "case {case}");
        }
    }
}

/// Fusion is an execution-plan change with one sanctioned numeric
/// effect: the fused kernel quantizes *once* around the whole chain on
/// the int8 Edge-TPU path (as a real fused device kernel does) instead
/// of once per stage. So a run that fused nothing must be bit-identical
/// to the unfused plan, and a run that did fuse must stay within a
/// couple of int8 grid steps of it.
#[test]
fn fusion_stays_within_quantization_tolerance() {
    let mut rng = Pcg32::seed_from_u64(0xDA62);
    for case in 0..4 {
        let dag = random_dag(&mut rng);
        let input = gen::image8(48, 48, 11 + case);
        let fused = dag.run(&input, &cfg()).expect("fused run");
        let mut unfused_cfg = cfg();
        unfused_cfg.fuse_elementwise = false;
        let unfused = dag.run(&input, &unfused_cfg).expect("unfused run");
        if fused.fused == 0 {
            assert_eq!(
                fused.output.as_slice(),
                unfused.output.as_slice(),
                "case {case}: nothing fused, yet values changed"
            );
        } else {
            let err = shmt::quality::mape(&unfused.output, &fused.output);
            assert!(
                err < 0.02,
                "case {case}: fused chain drifted {err} MAPE from the unfused plan"
            );
        }
        assert!(fused.stages.len() <= unfused.stages.len(), "case {case}");
    }
}

/// An interior edge between two identically-shaped element-wise stages
/// is fully resident: the consumer's Edge-TPU tiles coincide with the
/// producer's, so no input element is staged over the interconnect and
/// the resident composition strictly beats the naive round-trip.
#[test]
fn identical_stage_chain_is_fully_resident() {
    // Fusion off so the unary chain stays three distinct stages with two
    // interior edges.
    let mut c = cfg();
    c.fuse_elementwise = false;
    let root = DagNode {
        op: shmt::NodeOp::Unary(UnaryOp::Relu),
        deps: vec![],
        max_mape: None,
    };
    let dag = VopDag::new(vec![
        root,
        DagNode::unary(UnaryOp::Sqrt, 0),
        DagNode::unary(UnaryOp::Tanh, 1),
    ])
    .expect("valid chain");
    let input = gen::image8(128, 128, 3);
    let d = dag.run(&input, &c).expect("chain runs");
    assert_eq!(d.stages.len(), 3);
    for (i, stage) in d.stages.iter().enumerate().skip(1) {
        let tpu_elems: usize = stage
            .report
            .device_elements()
            .iter()
            .filter(|(kind, _)| matches!(kind, hetsim::DeviceKind::EdgeTpu))
            .map(|&(_, e)| e as usize)
            .sum();
        assert_eq!(
            stage.staged_in_elements, 0,
            "stage {i}: identical placements must leave the whole edge resident"
        );
        assert_eq!(
            stage.resident_in_elements, tpu_elems,
            "stage {i}: residency must cover every Edge-TPU element"
        );
    }
    assert!(d.resident_bus_bytes < d.naive_bus_bytes);
    assert!(d.makespan_s < d.naive_makespan_s);
}
