//! Quality-guard properties, house-style seeded case loop: across random
//! fault plans and budgets a guarded run either honours its MAPE budget
//! over every verified page or fails with the typed
//! `QualityUnattainable`; a disabled guard is inert down to the bit, no
//! matter how its other knobs are set.

use shmt::quality::mape;
use shmt::sched::{GPU, TPU};
use shmt::{
    FaultPlan, GuardConfig, Platform, Policy, QualityBudget, RunReport, RuntimeConfig, ShmtError,
    ShmtRuntime, Vop,
};
use shmt_kernels::Benchmark;
use shmt_tensor::rng::Pcg32;

/// A slowed-down platform (compute-dominant at test sizes) so every
/// device participates; same shape as the fault-recovery tests.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        shmt::calibration::Calibration {
            gpu_throughput: 1.0e6,
            ..Default::default()
        },
        shmt::calibration::bench_profile(b),
    )
}

fn runtime(b: Benchmark, cfg: RuntimeConfig) -> ShmtRuntime {
    ShmtRuntime::new(slow_platform(b), cfg)
}

fn base_config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = 16;
    cfg
}

fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(
        a.output.as_slice(),
        b.output.as_slice(),
        "bit-identical output"
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.scheduling_overhead_s, b.scheduling_overhead_s);
    assert_eq!(a.steals, b.steals);
    assert_eq!(a.bus_bytes, b.bus_bytes);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.records, b.records);
    assert_eq!(a.tpu_fraction, b.tpu_fraction);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.quality, b.quality);
}

/// A random fault plan drawn from slowdowns, transfer failures, and TPU
/// miscalibration — every combination leaves the run completable, so a
/// guarded execution must either meet its budget or repair its way there.
fn random_plan(rng: &mut Pcg32, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none().with_seed(seed);
    if rng.next_f64() < 0.3 {
        plan = plan.with_slowdown(GPU, 0.0, rng.gen_range(0.5..2.0), rng.gen_range(2.0..6.0));
    }
    if rng.next_f64() < 0.3 {
        plan = plan.with_transfer_failures(rng.gen_range(0.05..0.3));
    }
    if rng.next_f64() < 0.6 {
        plan = plan.with_tpu_miscalibration(
            1.0 + rng.gen_range(0.05f32..0.8),
            rng.gen_range(0.0f32..0.2),
        );
    }
    if rng.next_f64() < 0.2 {
        plan = plan.with_unavailable(TPU);
    }
    plan
}

#[test]
fn guarded_runs_meet_the_budget_or_repair() {
    let benchmarks = [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft];
    let mut rng = Pcg32::seed_from_u64(0x5EED_9A7D);
    for case in 0..24u64 {
        let b = benchmarks[rng.gen_range(0..benchmarks.len())];
        let budget = rng.gen_range(0.02..0.4);
        let plan = random_plan(&mut rng, 0xFA_0000 + case);
        let vop = Vop::from_benchmark(b, b.generate_inputs(128, 128, case)).unwrap();

        let mut cfg = base_config();
        cfg.guard = GuardConfig::enforcing(budget);
        let report = runtime(b, cfg)
            .execute_with_faults(&vop, &plan)
            .unwrap_or_else(|e| panic!("case {case} ({b}): guarded run failed: {e}"));

        let q = &report.quality;
        assert!(q.enabled, "case {case}: guard must have run");
        assert_eq!(q.budget_mape, budget);
        assert!(
            q.true_mape <= budget,
            "case {case} ({b}): post-repair verified error {} exceeds budget {budget}",
            q.true_mape
        );
        for r in &q.repairs {
            assert!(
                r.estimated_mape > budget,
                "case {case}: repair of HLOP {} fired below budget ({} <= {budget})",
                r.hlop,
                r.estimated_mape
            );
        }
        if q.page_verifiable && q.approx_hlops > 0 {
            assert_eq!(
                q.checked_hlops, q.approx_hlops,
                "case {case}: full coverage"
            );
            assert!(q.sampled_pages >= q.checked_hlops);
            assert!(q.overhead_s > 0.0, "case {case}: verification is not free");
        }
        if plan.dropouts.iter().any(|d| d.device == TPU) {
            assert_eq!(q.approx_hlops, 0, "case {case}: dead TPU produced output?");
        }

        // Repairs only improve the output: guarded error vs the exact
        // reference never exceeds the unguarded error under the same plan.
        let unguarded = runtime(b, base_config())
            .execute_with_faults(&vop, &plan)
            .unwrap();
        let reference = shmt::baseline::exact_reference(&vop);
        let guarded_err = mape(&reference, &report.output);
        let unguarded_err = mape(&reference, &unguarded.output);
        assert!(
            guarded_err <= unguarded_err + 1e-12,
            "case {case} ({b}): guard worsened output ({guarded_err} > {unguarded_err})"
        );
        if !q.repairs.is_empty() {
            assert!(
                guarded_err < unguarded_err,
                "case {case}: repairs happened but the output did not improve"
            );
            assert!(
                report.makespan_s > unguarded.makespan_s,
                "case {case}: repairs must cost virtual time"
            );
        }
    }
}

#[test]
fn budget_without_an_exact_device_is_a_typed_error() {
    let b = Benchmark::Sobel;
    let vop = Vop::from_benchmark(b, b.generate_inputs(128, 128, 3)).unwrap();
    let mut cfg = base_config();
    cfg.device_mask = [false, false, true];
    cfg.guard = GuardConfig::enforcing(0.05);
    let err = runtime(b, cfg).execute_with_faults(&vop, &FaultPlan::none());
    match err {
        Err(ShmtError::QualityUnattainable {
            estimated_mape,
            budget_mape,
        }) => {
            assert_eq!(budget_mape, 0.05);
            assert!(
                estimated_mape.is_infinite(),
                "never-measured error is unbounded, not a silent pass"
            );
        }
        other => panic!("expected QualityUnattainable, got {other:?}"),
    }
}

#[test]
fn disabled_guard_is_bit_identical_whatever_its_knobs_say() {
    let mut rng = Pcg32::seed_from_u64(0xD15A_B1ED);
    for case in 0..8u64 {
        let b = [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft][rng.gen_range(0..3usize)];
        let vop = Vop::from_benchmark(b, b.generate_inputs(128, 128, case)).unwrap();
        let plan = random_plan(&mut rng, 0xB17_0000 + case);

        let plain = runtime(b, base_config())
            .execute_with_faults(&vop, &plan)
            .unwrap();
        // Same run with every guard knob set to something exotic — but
        // enabled == false. Must be inert down to the bit.
        let mut cfg = base_config();
        cfg.guard = GuardConfig {
            enabled: false,
            budget: QualityBudget { max_mape: 0.0 },
            page_rows: 3,
            pages_per_hlop: 7,
            repair: false,
        };
        let disabled = runtime(b, cfg).execute_with_faults(&vop, &plan).unwrap();
        assert_reports_identical(&plain, &disabled);
        assert!(!disabled.quality.enabled);
        assert_eq!(disabled.quality, shmt::QualityReport::disabled());
    }
}
