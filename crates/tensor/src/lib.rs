//! Dense 2-D tensor substrate for the SHMT reproduction.
//!
//! The SHMT runtime ("Simultaneous and Heterogenous Multithreading",
//! MICRO '23) moves page-granular partitions of flat 2-D floating-point
//! datasets between a shared main memory and per-device memories, casting
//! them to the precision each device supports. This crate provides the
//! data-plane pieces that the runtime, the kernels, and the platform
//! simulator all share:
//!
//! * [`Tensor`] — an owned, row-major 2-D `f32` array with checked views.
//! * [`TensorView`]/[`TensorViewMut`] — borrowed rectangular windows.
//! * [`copy2d`] — a `cudaMemcpy2D`-style strided rectangle copy
//!   (paper §3.3.2 builds its data-distribution memory operations on
//!   exactly this primitive).
//! * [`quant`] — affine int8 quantization used to model the Edge TPU's
//!   INT8-only data path (paper §2.1, §3.3.2).
//! * [`tile`] — partition geometry: how a dataset is divided into
//!   page-granular partitions (paper §3.4).
//! * [`gen`] — seeded synthetic workload generators matching the paper's
//!   randomly generated datasets (§5.1), with spatially varying dispersion
//!   so that partitions genuinely differ in criticality.
//! * [`rng`] — the dependency-free seeded PCG32 behind every random choice
//!   in the workspace (dataset generation, sampling, SGD shuffling).
//!
//! # Examples
//!
//! ```
//! use shmt_tensor::{Tensor, tile::TileSpec};
//!
//! let t = Tensor::from_fn(64, 64, |r, c| (r + c) as f32);
//! let grid = TileSpec::new(32, 32).grid_for(t.rows(), t.cols());
//! assert_eq!(grid.len(), 4);
//! for tile in grid.iter() {
//!     let view = t.view(tile.row0, tile.col0, tile.rows, tile.cols);
//!     assert_eq!(view.rows(), 32);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
mod copy;
mod error;
pub mod gen;
pub mod quant;
pub mod rng;
mod tensor;
pub mod tile;

pub use copy::{copy2d, Rect};
pub use error::TensorError;
pub use tensor::{Tensor, TensorView, TensorViewMut};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
