//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on "randomly generated floating-point numbers"
//! (§5.1). For the QAWS mechanism to be observable, partitions must differ
//! in criticality (sampled value range / standard deviation, §3.5); real
//! random datasets have that property because different regions happen to
//! draw different extremes, and image/physics datasets have it structurally.
//! The generators here produce deterministic, seeded fields whose per-block
//! dispersion varies (heavy-tailed block scales), so criticality-aware
//! scheduling has genuine signal to work with.

use crate::rng::Pcg32;
use crate::Tensor;

/// Configuration for [`heterogeneous`] fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldConfig {
    /// Additive base level of the field.
    pub base: f32,
    /// Typical half-range of a block's values.
    pub amplitude: f32,
    /// Edge length of the square blocks that share one dispersion scale.
    pub block: usize,
    /// Heavy-tail exponent: each block's scale is `amplitude * u^(-tail)`
    /// for `u ~ U(0,1]`; larger values produce rarer, wilder blocks.
    pub tail: f32,
}

impl Default for FieldConfig {
    fn default() -> Self {
        FieldConfig {
            base: 0.0,
            amplitude: 1.0,
            block: 64,
            tail: 0.75,
        }
    }
}

/// Uniform random field in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either dimension is zero.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "uniform range must be non-empty");
    let mut rng = Pcg32::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// A field whose per-block dispersion is heavy-tailed: most blocks are
/// tame, a few have wide value ranges. Wide blocks are exactly the
/// "critical data regions" QAWS keeps on the exact device.
///
/// # Examples
///
/// ```
/// use shmt_tensor::gen::{heterogeneous, FieldConfig};
///
/// let t = heterogeneous(128, 128, 42, FieldConfig::default());
/// let (lo, hi) = t.min_max();
/// assert!(hi > lo);
/// // Deterministic for a fixed seed.
/// let t2 = heterogeneous(128, 128, 42, FieldConfig::default());
/// assert_eq!(t.as_slice(), t2.as_slice());
/// ```
///
/// # Panics
///
/// Panics if either dimension or `cfg.block` is zero.
pub fn heterogeneous(rows: usize, cols: usize, seed: u64, cfg: FieldConfig) -> Tensor {
    assert!(cfg.block > 0, "block size must be positive");
    let brows = rows.div_ceil(cfg.block);
    let bcols = cols.div_ceil(cfg.block);
    let mut scale_rng = Pcg32::seed_from_u64(seed ^ 0x5ca1_ab1e);
    let mut offset_rng = Pcg32::seed_from_u64(seed ^ 0x0ff5_e7e5);
    let scales: Vec<f32> = (0..brows * bcols)
        .map(|_| {
            let u: f32 = scale_rng.gen_range(1e-3_f32..1.0);
            cfg.amplitude * u.powf(-cfg.tail).min(50.0)
        })
        .collect();
    let offsets: Vec<f32> = (0..brows * bcols)
        .map(|_| offset_rng.gen_range(-cfg.amplitude..cfg.amplitude))
        .collect();
    let mut rng = Pcg32::seed_from_u64(seed);
    Tensor::from_fn(rows, cols, |r, c| {
        let b = (r / cfg.block) * bcols + c / cfg.block;
        cfg.base + offsets[b] + scales[b] * rng.gen_range(-1.0_f32..1.0)
    })
}

/// An 8-bit-style image: a smooth low-frequency base (bilinear
/// interpolation of a coarse random grid) plus *rare* textured blocks with
/// heavy-tailed amplitude, clamped to `[0, 255]`.
///
/// Like real photographs, most of the image is locally flat — so edge
/// detectors produce "vast amounts of near-zero values" (paper §5.3) —
/// while the occasional textured block forms the wide-distribution
/// critical region that quality-aware scheduling must catch.
pub fn image8(rows: usize, cols: usize, seed: u64) -> Tensor {
    // Feature granularity scales with the image so partition-level
    // heterogeneity is resolution-independent: at any size, a square tile
    // grid of ~64 partitions sees mostly-flat tiles with a critical
    // minority.
    let g = scaled_block(rows, cols);
    let grows = rows.div_ceil(g) + 1;
    let gcols = cols.div_ceil(g) + 1;
    let mut grid_rng = Pcg32::seed_from_u64(seed ^ 0x1111_2222);
    let grid: Vec<f32> = (0..grows * gcols)
        .map(|_| grid_rng.gen_range(70.0..180.0))
        .collect();

    let brows = rows.div_ceil(g);
    let bcols = cols.div_ceil(g);
    let mut amp_rng = Pcg32::seed_from_u64(seed ^ 0x3333_4444);
    let amps: Vec<f32> = (0..brows * bcols)
        .map(|_| {
            // Heavy tail: ~4% of blocks carry strong texture.
            let u: f32 = amp_rng.gen_range(1e-3_f32..1.0);
            let amp = 0.6 * u.powf(-1.1);
            if amp > 15.0 {
                amp.min(90.0)
            } else {
                amp.min(3.0)
            }
        })
        .collect();

    let mut rng = Pcg32::seed_from_u64(seed);
    let mut img = Tensor::from_fn(rows, cols, |r, c| {
        let (gr, gc) = (r / g, c / g);
        let (fr, fc) = ((r % g) as f32 / g as f32, (c % g) as f32 / g as f32);
        let g00 = grid[gr * gcols + gc];
        let g01 = grid[gr * gcols + gc + 1];
        let g10 = grid[(gr + 1) * gcols + gc];
        let g11 = grid[(gr + 1) * gcols + gc + 1];
        let base = g00 * (1.0 - fr) * (1.0 - fc)
            + g01 * (1.0 - fr) * fc
            + g10 * fr * (1.0 - fc)
            + g11 * fr * fc;
        let amp = amps[gr.min(brows - 1) * bcols + gc.min(bcols - 1)];
        base + amp * rng.gen_range(-1.0_f32..1.0)
    });
    // Real image data is 8-bit integral.
    img.map_inplace(|v| v.clamp(0.0, 255.0).round());
    img
}

/// Spatial feature size proportional to the dataset (1/16 of the longer
/// edge, at least 8 elements).
pub fn scaled_block(rows: usize, cols: usize) -> usize {
    (rows.max(cols) / 16).max(8)
}

/// Positive price-like data for the Blackscholes benchmark: strictly
/// positive, heavy-tailed per-block volatility.
pub fn prices(rows: usize, cols: usize, seed: u64) -> Tensor {
    let field = heterogeneous(
        rows,
        cols,
        seed,
        FieldConfig {
            base: 0.0,
            amplitude: 0.5,
            block: scaled_block(rows, cols),
            tail: 0.8,
        },
    );
    field.map(|v| 30.0 * (1.0 + v.clamp(-0.95, 20.0)).max(0.05))
}

/// Temperature-like data for the Hotspot benchmark: a warm plate with a few
/// intense hot blocks.
pub fn temperature(rows: usize, cols: usize, seed: u64) -> Tensor {
    let field = heterogeneous(
        rows,
        cols,
        seed,
        FieldConfig {
            base: 324.0,
            amplitude: 6.0,
            block: scaled_block(rows, cols),
            tail: 0.9,
        },
    );
    field.map(|v| v.clamp(300.0, 400.0))
}

/// Speckled reflectivity data for the SRAD benchmark: positive with
/// multiplicative speckle noise.
pub fn speckle(rows: usize, cols: usize, seed: u64) -> Tensor {
    let img = image8(rows, cols, seed);
    let mut rng = Pcg32::seed_from_u64(seed ^ 0xdead_beef);
    img.map(|v| (v / 255.0).max(0.02) * rng.gen_range(0.5_f32..1.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileSpec;

    #[test]
    fn uniform_stays_in_range() {
        let t = uniform(32, 32, -2.0, 3.0, 7);
        let (lo, hi) = t.min_max();
        assert!(lo >= -2.0 && hi < 3.0);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(image8(16, 16, 1).as_slice(), image8(16, 16, 1).as_slice());
        assert_eq!(prices(16, 16, 2).as_slice(), prices(16, 16, 2).as_slice());
        assert_eq!(
            temperature(16, 16, 3).as_slice(),
            temperature(16, 16, 3).as_slice()
        );
        assert_eq!(speckle(16, 16, 4).as_slice(), speckle(16, 16, 4).as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            heterogeneous(16, 16, 1, FieldConfig::default()).as_slice(),
            heterogeneous(16, 16, 2, FieldConfig::default()).as_slice()
        );
    }

    #[test]
    fn heterogeneous_blocks_have_varying_dispersion() {
        let t = heterogeneous(256, 256, 11, FieldConfig::default());
        let grid = TileSpec::new(64, 64).grid_for(256, 256);
        let mut ranges: Vec<f32> = grid
            .iter()
            .map(|tile| {
                let v = t.view(tile.row0, tile.col0, tile.rows, tile.cols);
                let (lo, hi) = v.min_max();
                hi - lo
            })
            .collect();
        ranges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The widest block should be several times wider than the narrowest:
        // that spread is what criticality sampling detects.
        assert!(
            ranges[ranges.len() - 1] > 3.0 * ranges[0],
            "widest {} vs narrowest {}",
            ranges[ranges.len() - 1],
            ranges[0]
        );
    }

    #[test]
    fn image8_is_clamped() {
        let t = image8(64, 64, 5);
        let (lo, hi) = t.min_max();
        assert!(lo >= 0.0 && hi <= 255.0);
    }

    #[test]
    fn prices_are_positive() {
        let t = prices(64, 64, 6);
        assert!(t.min_max().0 > 0.0);
    }

    #[test]
    fn temperature_is_physical() {
        let (lo, hi) = temperature(64, 64, 9).min_max();
        assert!(lo >= 300.0 && hi <= 400.0);
    }
}
