//! Buffer arenas: pooled backing storage for the serve path's steady
//! state.
//!
//! Steady-state serving should not touch the system allocator (ROADMAP
//! item 3): every warm request re-uses pages recycled from earlier
//! requests. This module provides the three pooling primitives the
//! workspace builds that on:
//!
//! * A global, size-bucketed pool of `Vec<f32>` pages ([`take_f32`] /
//!   [`put_f32`]). [`crate::Tensor`] is integrated with it — every
//!   tensor takes its backing storage from the pool and returns it on
//!   drop — so *all* tensor traffic (HLOP input/output pages, quantize
//!   scratch, kernel locals) recycles without any call-site changes.
//! * [`VecPool`], a typed pool of `Vec<T>` spines for the runtime's
//!   per-run bookkeeping vectors (HLOP records, compute tasks, …).
//! * [`ObjPool`], a pool of whole reusable objects (queue pairs, slot
//!   arrays) whose internal capacity should survive across runs.
//!
//! # Ownership and lifetime rules
//!
//! Pages are plain `Vec`s: taking one transfers ownership to the caller
//! and putting one back transfers it to the pool. Returned `f32` pages
//! are always *empty* (`len == 0`) with at least the requested capacity;
//! callers fill them. The pool never hands out aliased storage and never
//! holds borrows — everything is by-value, so the usual Rust ownership
//! rules are the whole safety story.
//!
//! Page capacities are rounded up to powers of two so a page recycles
//! into the same bucket it was served from regardless of the exact
//! length requested. The pool's cached bytes are capped (default
//! 256 MiB, `SHMT_ARENA_BYTES` overrides); beyond the cap, returned
//! pages are simply freed. `SHMT_ARENA=0` disables pooling entirely —
//! every take is a fresh allocation and every put a free — which is the
//! bit-identical fallback (pooling never changes values, only where the
//! bytes live).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two capacity classes (`2^0 ..= 2^32` elements).
const BUCKETS: usize = 33;

/// Default cap on bytes cached across all buckets.
const DEFAULT_BYTE_CAP: usize = 256 << 20;

/// Counters describing the global `f32` page pool's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Pages served from the pool (warm hits).
    pub hits: u64,
    /// Pages that had to be freshly allocated (cold misses).
    pub misses: u64,
    /// Pages returned and cached for re-use.
    pub recycled: u64,
    /// Pages returned but freed because the byte cap was reached (or
    /// pooling is disabled).
    pub dropped: u64,
    /// Bytes currently cached in the pool.
    pub cached_bytes: u64,
}

struct PagePool {
    stacks: [Vec<Vec<f32>>; BUCKETS],
    cached_bytes: usize,
}

const EMPTY_STACK: Vec<Vec<f32>> = Vec::new();

static PAGE_POOL: Mutex<PagePool> = Mutex::new(PagePool {
    stacks: [EMPTY_STACK; BUCKETS],
    cached_bytes: 0,
});

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// `SHMT_ARENA=0` turns pooling off (resolved once, at first use).
fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| !matches!(std::env::var("SHMT_ARENA").as_deref(), Ok("0")))
}

/// Byte cap on cached pages (`SHMT_ARENA_BYTES` overrides the 256 MiB
/// default; resolved once, at first use).
fn byte_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SHMT_ARENA_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_BYTE_CAP)
    })
}

/// The bucket a request for `len` elements is served from: the smallest
/// power-of-two capacity holding `len`.
fn take_bucket(len: usize) -> usize {
    (usize::BITS - len.saturating_sub(1).leading_zeros()) as usize
}

/// The bucket a page of `capacity` elements recycles into: the largest
/// power of two not exceeding its capacity (so a re-take from that
/// bucket is always large enough).
fn put_bucket(capacity: usize) -> usize {
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// Takes an empty `f32` page with capacity for at least `len` elements,
/// recycled from the pool when one is available.
pub fn take_f32(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    if enabled() {
        let b = take_bucket(len).min(BUCKETS - 1);
        if let Ok(mut pool) = PAGE_POOL.lock() {
            if let Some(page) = pool.stacks[b].pop() {
                pool.cached_bytes -= page.capacity() * std::mem::size_of::<f32>();
                drop(pool);
                HITS.fetch_add(1, Ordering::Relaxed);
                return page;
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        // Allocate the bucket's full power-of-two capacity so this page
        // recycles into the same class it was requested from.
        return Vec::with_capacity(1usize << b);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    Vec::with_capacity(len)
}

/// Returns a page to the pool (or frees it when the byte cap is reached
/// or pooling is disabled). The page is cleared; its capacity is kept.
pub fn put_f32(mut page: Vec<f32>) {
    let cap = page.capacity();
    if cap == 0 {
        return;
    }
    if enabled() {
        page.clear();
        let bytes = cap * std::mem::size_of::<f32>();
        if let Ok(mut pool) = PAGE_POOL.lock() {
            if pool.cached_bytes + bytes <= byte_cap() {
                let b = put_bucket(cap).min(BUCKETS - 1);
                pool.stacks[b].push(page);
                pool.cached_bytes += bytes;
                drop(pool);
                RECYCLED.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    DROPPED.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the page pool's counters.
pub fn stats() -> ArenaStats {
    let cached_bytes = PAGE_POOL.lock().map(|p| p.cached_bytes as u64).unwrap_or(0);
    ArenaStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        cached_bytes,
    }
}

/// Frees every cached page (used by tests to reset the pool).
pub fn clear() {
    if let Ok(mut pool) = PAGE_POOL.lock() {
        for stack in pool.stacks.iter_mut() {
            stack.clear();
        }
        pool.cached_bytes = 0;
    }
}

/// A pool of `Vec<T>` spines: vectors come back empty with their
/// capacity intact, so per-run bookkeeping (HLOP records, compute
/// tasks, plan queues) stops allocating once warm.
///
/// Const-constructible so it can live in a `static`:
///
/// ```
/// use shmt_tensor::arena::VecPool;
///
/// static POOL: VecPool<u32> = VecPool::new();
/// let mut v = POOL.take();
/// v.extend([1, 2, 3]);
/// POOL.put(v);
/// assert_eq!(POOL.take().capacity() >= 3, true);
/// ```
#[derive(Debug)]
pub struct VecPool<T> {
    stack: Mutex<Vec<Vec<T>>>,
}

impl<T> VecPool<T> {
    /// Upper bound on pooled spines per pool (beyond it, puts free).
    const MAX_POOLED: usize = 64;

    /// Creates an empty pool.
    pub const fn new() -> Self {
        VecPool {
            stack: Mutex::new(Vec::new()),
        }
    }

    /// Takes a pooled vector (empty, capacity preserved) or a fresh one.
    pub fn take(&self) -> Vec<T> {
        self.stack
            .lock()
            .ok()
            .and_then(|mut s| s.pop())
            .unwrap_or_default()
    }

    /// Clears `v` and returns its spine to the pool.
    pub fn put(&self, mut v: Vec<T>) {
        v.clear();
        if v.capacity() == 0 {
            return;
        }
        if let Ok(mut s) = self.stack.lock() {
            if s.len() < Self::MAX_POOLED {
                s.push(v);
            }
        }
    }
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of whole reusable objects whose internal capacity should
/// survive across uses (queue pairs, slot arrays). The caller is
/// responsible for resetting an object's *state* before or after
/// pooling; the pool only stores and hands back values.
#[derive(Debug)]
pub struct ObjPool<T> {
    stack: Mutex<Vec<T>>,
}

impl<T> ObjPool<T> {
    /// Upper bound on pooled objects per pool (beyond it, puts free).
    const MAX_POOLED: usize = 64;

    /// Creates an empty pool.
    pub const fn new() -> Self {
        ObjPool {
            stack: Mutex::new(Vec::new()),
        }
    }

    /// Takes a pooled object, or builds one with `make` on a miss.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> T {
        self.stack
            .lock()
            .ok()
            .and_then(|mut s| s.pop())
            .unwrap_or_else(make)
    }

    /// Returns an object to the pool.
    pub fn put(&self, item: T) {
        if let Ok(mut s) = self.stack.lock() {
            if s.len() < Self::MAX_POOLED {
                s.push(item);
            }
        }
    }
}

impl<T> Default for ObjPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_to_powers_of_two() {
        assert_eq!(take_bucket(1), 0);
        assert_eq!(take_bucket(2), 1);
        assert_eq!(take_bucket(3), 2);
        assert_eq!(take_bucket(1024), 10);
        assert_eq!(take_bucket(1025), 11);
        assert_eq!(put_bucket(1024), 10);
        assert_eq!(put_bucket(1536), 10);
        assert_eq!(put_bucket(2048), 11);
    }

    #[test]
    fn put_then_take_recycles_the_page() {
        let mut page = take_f32(100);
        page.resize(100, 1.0);
        let cap = page.capacity();
        assert!(cap >= 100);
        put_f32(page);
        let again = take_f32(cap);
        // Same bucket: the recycled page satisfies a same-class request.
        assert!(again.capacity() >= 100);
        assert!(again.is_empty());
    }

    #[test]
    fn take_serves_requests_up_to_the_bucket_capacity() {
        let page = take_f32(700);
        let cap = page.capacity();
        assert!(cap >= 1024, "power-of-two rounding, got {cap}");
        put_f32(page);
        // A 1024-element request maps to the same bucket and must be
        // satisfiable by the recycled 700-element-request page.
        let again = take_f32(1024);
        assert!(again.capacity() >= 1024);
    }

    #[test]
    fn zero_len_take_is_free() {
        let v = take_f32(0);
        assert_eq!(v.capacity(), 0);
        put_f32(v); // no-op, must not panic
    }

    #[test]
    fn stats_move() {
        let before = stats();
        let page = take_f32(64);
        put_f32(page);
        let after = stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
        assert!(after.recycled + after.dropped > before.recycled + before.dropped);
    }

    #[test]
    fn vec_pool_preserves_capacity() {
        static POOL: VecPool<usize> = VecPool::new();
        let mut v = POOL.take();
        v.extend(0..100);
        POOL.put(v);
        let v2 = POOL.take();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 100);
    }

    #[test]
    fn obj_pool_round_trips() {
        static POOL: ObjPool<String> = ObjPool::new();
        POOL.put(String::with_capacity(32));
        let s = POOL.take_or(String::new);
        assert!(s.capacity() >= 32);
        let fresh = POOL.take_or(|| String::from("made"));
        assert_eq!(fresh, "made");
    }
}
