//! Partition geometry: dividing a dataset into page-granular partitions.
//!
//! SHMT's runtime partitions each VOP's data "larger than and ... multiples
//! of the main memory page size whenever possible" (paper §3.4): with 4 KB
//! pages and `f32` elements, a vector partition holds at least 1,024
//! consecutive elements and a matrix tile is at least 1,024×1,024 when the
//! dataset allows it. This module provides that geometry for both the
//! element-wise vector model and the tile-wise matrix model (§3.2.1).

/// Main-memory page size assumed by the partitioning rules (bytes).
pub const PAGE_SIZE_BYTES: usize = 4096;

/// Minimum elements per vector partition (one 4 KB page of `f32`).
pub const MIN_VECTOR_ELEMS: usize = PAGE_SIZE_BYTES / std::mem::size_of::<f32>();

/// Preferred minimum matrix tile edge, applied when the dataset is at least
/// that large in the corresponding dimension.
pub const MIN_TILE_EDGE: usize = 1024;

/// One rectangular partition of a 2-D dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Index of this tile within its grid (row-major).
    pub index: usize,
    /// First row covered.
    pub row0: usize,
    /// First column covered.
    pub col0: usize,
    /// Rows covered.
    pub rows: usize,
    /// Columns covered.
    pub cols: usize,
}

impl Tile {
    /// Elements covered by the tile.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the tile covers no elements (never produced by grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes covered assuming `f32` elements.
    pub fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }

    /// Converts the tile to a copy rectangle.
    pub fn to_rect(&self) -> crate::Rect {
        crate::Rect::new(self.row0, self.col0, self.rows, self.cols)
    }
}

/// Desired tile extent used to build a [`TileGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileSpec {
    rows: usize,
    cols: usize,
}

impl TileSpec {
    /// Creates a spec with the given tile extent.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile extent must be positive");
        TileSpec { rows, cols }
    }

    /// The page-rule spec for a `rows x cols` dataset: 1,024×1,024 tiles when
    /// the dataset is that large, otherwise the full dataset as one tile
    /// dimension ("whenever possible", §3.4).
    pub fn page_rule(rows: usize, cols: usize) -> Self {
        TileSpec {
            rows: MIN_TILE_EDGE.min(rows.max(1)),
            cols: MIN_TILE_EDGE.min(cols.max(1)),
        }
    }

    /// Tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Covers a `rows x cols` dataset with tiles of this extent; edge tiles
    /// are clipped to the dataset bounds.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has a zero dimension.
    pub fn grid_for(&self, rows: usize, cols: usize) -> TileGrid {
        assert!(rows > 0 && cols > 0, "dataset must be non-empty");
        let mut tiles = Vec::new();
        let mut index = 0;
        let mut row0 = 0;
        while row0 < rows {
            let trows = self.rows.min(rows - row0);
            let mut col0 = 0;
            while col0 < cols {
                let tcols = self.cols.min(cols - col0);
                tiles.push(Tile {
                    index,
                    row0,
                    col0,
                    rows: trows,
                    cols: tcols,
                });
                index += 1;
                col0 += self.cols;
            }
            row0 += self.rows;
        }
        TileGrid {
            tiles,
            dataset: (rows, cols),
        }
    }
}

/// The set of tiles covering one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    tiles: Vec<Tile>,
    dataset: (usize, usize),
}

impl TileGrid {
    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `true` when the grid has no tiles (never produced by [`TileSpec`]).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Dataset shape this grid covers, as `(rows, cols)`.
    pub fn dataset(&self) -> (usize, usize) {
        self.dataset
    }

    /// Iterates over the tiles in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tile> {
        self.tiles.iter()
    }

    /// Borrows the tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Looks up a tile by grid index.
    pub fn get(&self, index: usize) -> Option<&Tile> {
        self.tiles.get(index)
    }
}

impl<'a> IntoIterator for &'a TileGrid {
    type Item = &'a Tile;
    type IntoIter = std::slice::Iter<'a, Tile>;

    fn into_iter(self) -> Self::IntoIter {
        self.tiles.iter()
    }
}

/// One contiguous 1-D partition for the element-wise vector model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Index of this segment within its partitioning.
    pub index: usize,
    /// First element covered.
    pub start: usize,
    /// Number of elements covered.
    pub len: usize,
}

impl Segment {
    /// One-past-the-end element index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Bytes covered assuming `f32` elements.
    pub fn byte_len(&self) -> usize {
        self.len * std::mem::size_of::<f32>()
    }
}

/// Splits `len` elements into roughly `want` page-granular segments.
///
/// Segment lengths are multiples of [`MIN_VECTOR_ELEMS`] whenever
/// `len >= MIN_VECTOR_ELEMS` (the final segment absorbs the remainder);
/// smaller datasets become a single segment, honoring §3.4's "whenever
/// possible" qualifier.
///
/// # Examples
///
/// ```
/// use shmt_tensor::tile::{segment, MIN_VECTOR_ELEMS};
///
/// let segs = segment(10 * MIN_VECTOR_ELEMS + 7, 4);
/// assert!(segs.len() <= 4);
/// assert!(segs[0].len % MIN_VECTOR_ELEMS == 0);
/// let total: usize = segs.iter().map(|s| s.len).sum();
/// assert_eq!(total, 10 * MIN_VECTOR_ELEMS + 7);
/// ```
///
/// # Panics
///
/// Panics if `len` or `want` is zero.
pub fn segment(len: usize, want: usize) -> Vec<Segment> {
    assert!(len > 0, "cannot segment an empty dataset");
    assert!(want > 0, "must request at least one segment");
    if len < MIN_VECTOR_ELEMS {
        return vec![Segment {
            index: 0,
            start: 0,
            len,
        }];
    }
    // Pages available and pages per segment (at least one page each);
    // rounding the pages-per-segment up guarantees at most `want` segments.
    let pages = len / MIN_VECTOR_ELEMS; // >= 1
    let per = pages.div_ceil(want).max(1);
    let chunk = per * MIN_VECTOR_ELEMS;
    let mut segs = Vec::new();
    let mut start = 0;
    let mut index = 0;
    while start < len {
        let remaining = len - start;
        // The final segment absorbs the sub-page remainder.
        let this = if remaining < chunk + MIN_VECTOR_ELEMS {
            remaining
        } else {
            chunk
        };
        segs.push(Segment {
            index,
            start,
            len: this,
        });
        start += this;
        index += 1;
    }
    debug_assert!(segs.len() <= want);
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_dataset_exactly() {
        let grid = TileSpec::new(3, 4).grid_for(7, 10);
        let total: usize = grid.iter().map(Tile::len).sum();
        assert_eq!(total, 70);
        assert_eq!(grid.dataset(), (7, 10));
        // 3 row bands (3,3,1) x 3 col bands (4,4,2)
        assert_eq!(grid.len(), 9);
    }

    #[test]
    fn grid_indices_are_sequential() {
        let grid = TileSpec::new(2, 2).grid_for(4, 4);
        for (i, tile) in grid.iter().enumerate() {
            assert_eq!(tile.index, i);
        }
    }

    #[test]
    fn page_rule_clamps_to_dataset() {
        let spec = TileSpec::page_rule(256, 4096);
        assert_eq!(spec.rows(), 256);
        assert_eq!(spec.cols(), MIN_TILE_EDGE);
        let big = TileSpec::page_rule(4096, 4096);
        assert_eq!((big.rows(), big.cols()), (MIN_TILE_EDGE, MIN_TILE_EDGE));
    }

    #[test]
    fn tiles_do_not_overlap() {
        let grid = TileSpec::new(3, 3).grid_for(8, 8);
        let mut covered = [false; 64];
        for t in &grid {
            for r in t.row0..t.row0 + t.rows {
                for c in t.col0..t.col0 + t.cols {
                    assert!(!covered[r * 8 + c], "tile overlap at ({r},{c})");
                    covered[r * 8 + c] = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn segment_small_dataset_is_single() {
        let segs = segment(100, 8);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 100);
    }

    #[test]
    fn segment_is_page_aligned_and_complete() {
        let len = 23 * MIN_VECTOR_ELEMS + 11;
        let segs = segment(len, 4);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, len);
        for s in &segs[..segs.len() - 1] {
            assert_eq!(
                s.len % MIN_VECTOR_ELEMS,
                0,
                "non-final segment not page aligned"
            );
        }
        // Contiguity.
        for w in segs.windows(2) {
            assert_eq!(w[0].end(), w[1].start);
        }
    }

    #[test]
    fn segment_respects_requested_count_roughly() {
        let segs = segment(64 * MIN_VECTOR_ELEMS, 8);
        assert_eq!(segs.len(), 8);
        for s in &segs {
            assert_eq!(s.len, 8 * MIN_VECTOR_ELEMS);
        }
    }

    #[test]
    fn segment_more_parts_than_pages_caps_at_pages() {
        let segs = segment(3 * MIN_VECTOR_ELEMS, 10);
        assert!(segs.len() <= 3);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 3 * MIN_VECTOR_ELEMS);
    }
}
