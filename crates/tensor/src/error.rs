use std::fmt;

/// Errors raised by tensor construction, views, and copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A requested shape has a zero dimension or would overflow `usize`.
    InvalidShape {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// The provided backing buffer does not match the requested shape.
    ShapeMismatch {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A view or copy rectangle extends past the bounds of its tensor.
    OutOfBounds {
        /// First out-of-range row touched by the request.
        row: usize,
        /// First out-of-range column touched by the request.
        col: usize,
        /// Bounding shape that was exceeded, as (rows, cols).
        bounds: (usize, usize),
    },
    /// Source and destination rectangles of a copy differ in size.
    RectMismatch {
        /// Source rectangle size as (rows, cols).
        src: (usize, usize),
        /// Destination rectangle size as (rows, cols).
        dst: (usize, usize),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorError::InvalidShape { rows, cols } => {
                write!(f, "invalid tensor shape {rows}x{cols}")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of {actual} elements does not fit shape needing {expected}"
                )
            }
            TensorError::OutOfBounds { row, col, bounds } => write!(
                f,
                "access at ({row}, {col}) is outside tensor of {}x{}",
                bounds.0, bounds.1
            ),
            TensorError::RectMismatch { src, dst } => write!(
                f,
                "source rectangle {}x{} does not match destination {}x{}",
                src.0, src.1, dst.0, dst.1
            ),
        }
    }
}

impl std::error::Error for TensorError {}
