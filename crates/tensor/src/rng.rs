//! A small, seeded, dependency-free PRNG (PCG32, Melissa O'Neill's
//! `pcg32_oneseq`).
//!
//! The reproduction only needs *deterministic, well-mixed* randomness for
//! dataset generation, sampling, and SGD shuffling — not cryptographic
//! strength — so a 16-byte PCG replaces the `rand` crate and keeps the
//! workspace buildable with no registry access. Every user seeds
//! explicitly; two generators with the same seed produce the same stream
//! on every platform.

use std::ops::{Range, RangeInclusive};

/// Multiplier of the PCG LCG step (from the PCG reference implementation).
const PCG_MULT: u64 = 6364136223846793005;
/// Default odd stream-selector increment.
const PCG_INC: u64 = 1442695040888963407;

/// A permuted-congruential generator with 64 bits of state and 32-bit
/// output.
///
/// # Examples
///
/// ```
/// use shmt_tensor::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(7);
/// let mut b = Pcg32::seed_from_u64(7);
/// assert_eq!(a.next_u32(), b.next_u32());
/// let x = a.gen_range(0.0f32..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
}

impl Pcg32 {
    /// Creates a generator from a 64-bit seed (same shape as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        // Standard PCG seeding: advance once from zero state, add the
        // seed, advance again so nearby seeds diverge immediately.
        let mut rng = Pcg32 { state: 0 };
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(PCG_INC);
    }

    /// The next 32 uniformly distributed bits (XSH-RR output permutation).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (half-open float/integer ranges and
    /// inclusive integer ranges, mirroring `rand`'s `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges [`Pcg32::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Pcg32) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut Pcg32) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (self.end - self.start) * rng.next_f32();
        // Float rounding can land exactly on `end`; nudge back inside.
        if v < self.end {
            v
        } else {
            f32::from_bits(self.end.to_bits() - 1).max(self.start)
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Pcg32) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (self.end - self.start) * rng.next_f64();
        if v < self.end {
            v
        } else {
            f64::from_bits(self.end.to_bits() - 1).max(self.start)
        }
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut Pcg32) -> usize {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = (self.end - self.start) as u128;
        // Widening-multiply range reduction (Lemire); bias is < 2^-64.
        self.start + ((u128::from(rng.next_u64()) * span) >> 64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut Pcg32) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {start}..={end}");
        let span = (end - start) as u128 + 1;
        start + ((u128::from(rng.next_u64()) * span) >> 64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut Pcg32) -> u64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = u128::from(self.end - self.start);
        self.start + ((u128::from(rng.next_u64()) * span) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        let mut c = Pcg32::seed_from_u64(43);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f), "{f}");
            let d = rng.next_f64();
            assert!((0.0..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i = rng.gen_range(5usize..8);
            assert!((5..8).contains(&i));
            let j = rng.gen_range(0usize..=2);
            assert!(j <= 2);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| f64::from(rng.next_f32())).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Pcg32::seed_from_u64(0).gen_range(3.0f32..3.0);
    }
}
