use crate::{Result, Tensor, TensorError};

/// A rectangle within a 2-D tensor, addressed by its top-left corner.
///
/// Mirrors the `(dst, dpitch, src, spitch, width, height)` addressing of
/// CUDA's `cudaMemcpy2D`, which the SHMT runtime's data-distribution
/// machinery is modeled on (paper §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// First row of the rectangle.
    pub row0: usize,
    /// First column of the rectangle.
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and extent.
    pub fn new(row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        Rect {
            row0,
            col0,
            rows,
            cols,
        }
    }

    /// A rectangle covering an entire `rows x cols` tensor.
    pub fn full(rows: usize, cols: usize) -> Self {
        Rect {
            row0: 0,
            col0: 0,
            rows,
            cols,
        }
    }

    /// Total number of elements covered.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the rectangle covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of bytes covered assuming `f32` elements.
    pub fn byte_len(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }
}

/// Copies a rectangle from `src` into a same-sized rectangle of `dst`.
///
/// This is the reproduction's equivalent of the `cudaMemcpy2D`-style memory
/// operations the SHMT runtime issues when distributing an HLOP's input
/// partition to a device and gathering its output (paper §3.3.2): the caller
/// supplies the starting address (top-left corner) of the source and the
/// effective addresses are computed from the row pitch.
///
/// # Errors
///
/// * [`TensorError::RectMismatch`] if the two rectangles differ in size.
/// * [`TensorError::OutOfBounds`] if either rectangle exceeds its tensor.
///
/// # Examples
///
/// ```
/// use shmt_tensor::{copy2d, Rect, Tensor};
///
/// # fn main() -> Result<(), shmt_tensor::TensorError> {
/// let src = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
/// let mut dst = Tensor::zeros(2, 2);
/// copy2d(&src, Rect::new(1, 1, 2, 2), &mut dst, Rect::full(2, 2))?;
/// assert_eq!(dst.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
/// # Ok(())
/// # }
/// ```
pub fn copy2d(src: &Tensor, src_rect: Rect, dst: &mut Tensor, dst_rect: Rect) -> Result<()> {
    if (src_rect.rows, src_rect.cols) != (dst_rect.rows, dst_rect.cols) {
        return Err(TensorError::RectMismatch {
            src: (src_rect.rows, src_rect.cols),
            dst: (dst_rect.rows, dst_rect.cols),
        });
    }
    let src_view = src.try_view(src_rect.row0, src_rect.col0, src_rect.rows, src_rect.cols)?;
    let mut dst_view =
        dst.try_view_mut(dst_rect.row0, dst_rect.col0, dst_rect.rows, dst_rect.cols)?;
    dst_view.copy_from(&src_view)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_interior_rectangle() {
        let src = Tensor::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let mut dst = Tensor::zeros(3, 3);
        copy2d(&src, Rect::new(0, 0, 2, 2), &mut dst, Rect::new(1, 1, 2, 2)).unwrap();
        assert_eq!(dst[(1, 1)], 0.0);
        assert_eq!(dst[(1, 2)], 1.0);
        assert_eq!(dst[(2, 1)], 3.0);
        assert_eq!(dst[(2, 2)], 4.0);
        assert_eq!(dst[(0, 0)], 0.0);
    }

    #[test]
    fn rejects_mismatched_rectangles() {
        let src = Tensor::zeros(2, 2);
        let mut dst = Tensor::zeros(2, 2);
        let err = copy2d(&src, Rect::full(2, 2), &mut dst, Rect::new(0, 0, 1, 2)).unwrap_err();
        assert!(matches!(err, TensorError::RectMismatch { .. }));
    }

    #[test]
    fn rejects_out_of_bounds_source() {
        let src = Tensor::zeros(2, 2);
        let mut dst = Tensor::zeros(4, 4);
        let err = copy2d(&src, Rect::new(1, 1, 2, 2), &mut dst, Rect::new(0, 0, 2, 2)).unwrap_err();
        assert!(matches!(err, TensorError::OutOfBounds { .. }));
    }

    #[test]
    fn rect_byte_len_counts_f32() {
        assert_eq!(Rect::new(0, 0, 2, 3).byte_len(), 24);
        assert!(!Rect::full(1, 1).is_empty());
    }
}
