//! Affine int8 quantization modeling the Edge TPU data path.
//!
//! The early Edge TPU supports only INT8 arithmetic (paper §2.1). When the
//! SHMT runtime schedules an HLOP onto the Edge TPU it "perform\[s\] data type
//! casting through the desired quantization method before distributing the
//! input data" and restores the application precision on completion
//! (§3.3.2). [`QuantParams`] captures the affine mapping used for that
//! round-trip, and [`quantize_tensor`]/[`dequantize_tensor`] apply it.
//!
//! The quality loss SHMT's QAWS policy manages comes precisely from this
//! round-trip: partitions with wide value ranges lose more absolute
//! precision per int8 step, which is why criticality is defined over the
//! sampled range and standard deviation (§3.5).

use crate::Tensor;

/// Affine quantization parameters mapping `f32` values onto `i8` codes.
///
/// A real value `x` maps to `round(x / scale) + zero_point`, clamped to
/// `[-128, 127]`.
///
/// # Examples
///
/// ```
/// use shmt_tensor::quant::QuantParams;
///
/// let qp = QuantParams::from_range(-1.0, 1.0);
/// let code = qp.quantize(0.5);
/// let back = qp.dequantize(code);
/// assert!((back - 0.5).abs() <= qp.scale());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    lo: f32,
}

impl QuantParams {
    /// Derives parameters covering the closed interval `[lo, hi]`.
    ///
    /// Degenerate inputs are widened to a tiny symmetric interval so the
    /// mapping is always invertible: if `lo > hi` they are swapped, and if
    /// the interval has zero width it is inflated around its midpoint.
    pub fn from_range(lo: f32, hi: f32) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let (lo, hi) = if (hi - lo).abs() < f32::EPSILON {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        // `lo` maps to code -128 and `hi` to 127. Anchoring the mapping at
        // `lo` (rather than at a zero point) keeps it exact for ranges far
        // from zero, where an integer zero point would overflow or lose
        // float precision.
        let scale = (hi - lo) / 255.0;
        QuantParams { scale, lo }
    }

    /// Derives parameters from the observed range of a tensor.
    pub fn from_tensor(t: &Tensor) -> Self {
        let (lo, hi) = t.min_max();
        Self::from_range(lo, hi)
    }

    /// Derives parameters from the observed range of a slice.
    ///
    /// NaN elements are ignored; an empty or all-NaN slice yields the unit
    /// interval `[0, 1]`.
    pub fn from_slice(values: &[f32]) -> Self {
        let mut it = values.iter().copied().filter(|v| !v.is_nan());
        match it.next() {
            None => Self::from_range(0.0, 1.0),
            Some(first) => {
                let (lo, hi) = it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v)));
                Self::from_range(lo, hi)
            }
        }
    }

    /// The real-value width of one int8 step.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The code that represents real zero. For ranges that do not include
    /// zero this lies outside the `i8` code space.
    pub fn zero_point(&self) -> i32 {
        (-self.lo / self.scale).round() as i32 - 128
    }

    /// Quantizes a single value.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = ((x - self.lo) / self.scale).round().clamp(0.0, 255.0);
        (q - 128.0) as i8
    }

    /// Dequantizes a single code.
    pub fn dequantize(&self, code: i8) -> f32 {
        self.lo + (f32::from(code) + 128.0) * self.scale
    }

    /// Rounds a value to the nearest representable point of this grid
    /// (quantize + dequantize in one step).
    pub fn snap(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Quantizes a contiguous slice into `dst` — the bulk form of the Edge
    /// TPU input cast, with the affine parameters hoisted out of the loop.
    ///
    /// Produces exactly the same codes as calling [`QuantParams::quantize`]
    /// per element.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` have different lengths.
    pub fn quantize_slice(&self, src: &[f32], dst: &mut [i8]) {
        assert_eq!(src.len(), dst.len(), "quantize_slice length mismatch");
        let (lo, scale) = (self.lo, self.scale);
        for (d, &x) in dst.iter_mut().zip(src) {
            let q = ((x - lo) / scale).round().clamp(0.0, 255.0);
            *d = (q - 128.0) as i8;
        }
    }

    /// Dequantizes a contiguous slice of codes into `dst` — the bulk form
    /// of restoring application precision after an Edge TPU HLOP.
    ///
    /// Produces exactly the same values as calling
    /// [`QuantParams::dequantize`] per element.
    ///
    /// # Panics
    ///
    /// Panics if `codes` and `dst` have different lengths.
    pub fn dequantize_slice(&self, codes: &[i8], dst: &mut [f32]) {
        assert_eq!(codes.len(), dst.len(), "dequantize_slice length mismatch");
        let (lo, scale) = (self.lo, self.scale);
        for (d, &code) in dst.iter_mut().zip(codes) {
            *d = lo + (f32::from(code) + 128.0) * scale;
        }
    }

    /// Snaps every element of a slice to this grid in place — the bulk form
    /// of [`QuantParams::snap`], bit-identical to the per-element calls.
    pub fn snap_slice(&self, values: &mut [f32]) {
        let (lo, scale) = (self.lo, self.scale);
        for v in values.iter_mut() {
            let q = ((*v - lo) / scale).round().clamp(0.0, 255.0);
            *v = lo + q * scale;
        }
    }
}

/// An owned 2-D array of int8 codes plus the parameters that produced it —
/// what an Edge TPU HLOP receives as its input buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    params: QuantParams,
}

impl QuantTensor {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization parameters in effect.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Borrows the raw codes in row-major order.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Byte size of the device buffer (1 byte per element).
    pub fn byte_len(&self) -> usize {
        self.codes.len()
    }
}

/// Quantizes a whole tensor with parameters derived from its own range.
///
/// # Examples
///
/// ```
/// use shmt_tensor::{quant, Tensor};
///
/// let t = Tensor::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// let q = quant::quantize_tensor(&t);
/// let back = quant::dequantize_tensor(&q);
/// for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
///     assert!((a - b).abs() <= q.params().scale());
/// }
/// ```
pub fn quantize_tensor(t: &Tensor) -> QuantTensor {
    quantize_tensor_with(t, QuantParams::from_tensor(t))
}

/// Quantizes a whole tensor with caller-chosen parameters.
pub fn quantize_tensor_with(t: &Tensor, params: QuantParams) -> QuantTensor {
    let mut codes = vec![0i8; t.len()];
    params.quantize_slice(t.as_slice(), &mut codes);
    QuantTensor {
        rows: t.rows(),
        cols: t.cols(),
        codes,
        params,
    }
}

/// Restores a quantized tensor to `f32` ("restoring the result to the data
/// precision that the application desires", §3.3.2).
pub fn dequantize_tensor(q: &QuantTensor) -> Tensor {
    let mut data = vec![0f32; q.codes.len()];
    q.params.dequantize_slice(&q.codes, &mut data);
    Tensor::from_vec(q.rows, q.cols, data).expect("quantized tensor has valid shape")
}

/// Snaps every element of a slice to the int8 grid derived from the slice's
/// own range — the one-line model of "send through the TPU input path".
pub fn snap_slice(values: &mut [f32]) {
    QuantParams::from_slice(values).snap_slice(values);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_scale() {
        let qp = QuantParams::from_range(-10.0, 30.0);
        for i in 0..=100 {
            let x = -10.0 + 40.0 * (i as f32) / 100.0;
            let err = (qp.snap(x) - x).abs();
            assert!(err <= qp.scale() * 0.5 + 1e-5, "x={x} err={err}");
        }
    }

    #[test]
    fn endpoints_map_to_extreme_codes() {
        let qp = QuantParams::from_range(0.0, 255.0);
        assert_eq!(qp.quantize(0.0), -128);
        assert_eq!(qp.quantize(255.0), 127);
    }

    #[test]
    fn narrow_range_far_from_zero_round_trips() {
        // Regression: an integer zero point would overflow for this range.
        let qp = QuantParams::from_range(100.2, 100.7);
        let x = 100.45f32;
        assert!((qp.snap(x) - x).abs() <= qp.scale(), "snap={}", qp.snap(x));
        assert!(qp.zero_point() < -30_000);
    }

    #[test]
    fn degenerate_range_is_widened() {
        let qp = QuantParams::from_range(5.0, 5.0);
        assert!(qp.scale() > 0.0);
        assert!((qp.snap(5.0) - 5.0).abs() <= qp.scale());
    }

    #[test]
    fn swapped_range_is_normalized() {
        let a = QuantParams::from_range(1.0, -1.0);
        let b = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_range_means_coarser_grid() {
        let narrow = QuantParams::from_range(0.0, 1.0);
        let wide = QuantParams::from_range(0.0, 1000.0);
        assert!(wide.scale() > narrow.scale() * 500.0);
    }

    #[test]
    fn tensor_round_trip_preserves_shape() {
        let t = Tensor::from_fn(3, 5, |r, c| (r as f32) - (c as f32) * 0.25);
        let q = quantize_tensor(&t);
        assert_eq!(q.byte_len(), 15);
        let back = dequantize_tensor(&q);
        assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn from_slice_ignores_nan_and_handles_empty() {
        let qp = QuantParams::from_slice(&[f32::NAN, 1.0, 3.0]);
        assert!((qp.snap(2.0) - 2.0).abs() <= qp.scale());
        let empty = QuantParams::from_slice(&[]);
        assert!(empty.scale() > 0.0);
    }

    #[test]
    fn round_trip_far_from_zero() {
        // A one-unit range six orders of magnitude from the origin: the
        // lo-anchored mapping must keep the per-step error at `scale()`,
        // where a zero-point formulation would lose all precision.
        let qp = QuantParams::from_range(1e6, 1e6 + 1.0);
        for i in 0..=64 {
            let x = 1e6 + i as f32 / 64.0;
            let err = (qp.dequantize(qp.quantize(x)) - x).abs();
            assert!(err <= qp.scale(), "x={x} err={err} scale={}", qp.scale());
        }
    }

    #[test]
    fn round_trip_negative_only_range() {
        let qp = QuantParams::from_range(-40.0, -8.0);
        for i in 0..=100 {
            let x = -40.0 + 32.0 * (i as f32) / 100.0;
            let err = (qp.dequantize(qp.quantize(x)) - x).abs();
            assert!(err <= qp.scale(), "x={x} err={err}");
        }
    }

    #[test]
    fn from_slice_with_leading_nans_round_trips() {
        let values = [f32::NAN, f32::NAN, -2.5, 7.0, 0.25];
        let qp = QuantParams::from_slice(&values);
        for &x in values.iter().filter(|v| !v.is_nan()) {
            let err = (qp.dequantize(qp.quantize(x)) - x).abs();
            assert!(err <= qp.scale(), "x={x} err={err}");
        }
        // NaN itself saturates to code 0 (Rust float-to-int cast), not a
        // poisoned buffer.
        assert_eq!(qp.quantize(f32::NAN), 0);
    }

    #[test]
    fn bulk_slice_paths_match_per_element_calls() {
        let src: Vec<f32> = (0..257).map(|i| (i as f32) * 0.37 - 11.0).collect();
        let qp = QuantParams::from_slice(&src);

        let mut codes = vec![0i8; src.len()];
        qp.quantize_slice(&src, &mut codes);
        let per_elem: Vec<i8> = src.iter().map(|&v| qp.quantize(v)).collect();
        assert_eq!(codes, per_elem);

        let mut back = vec![0f32; codes.len()];
        qp.dequantize_slice(&codes, &mut back);
        let back_per_elem: Vec<f32> = codes.iter().map(|&c| qp.dequantize(c)).collect();
        assert_eq!(back, back_per_elem);

        let mut snapped = src.clone();
        qp.snap_slice(&mut snapped);
        let snap_per_elem: Vec<f32> = src.iter().map(|&v| qp.snap(v)).collect();
        assert_eq!(snapped, snap_per_elem);
    }

    #[test]
    fn snap_slice_is_idempotent() {
        let mut v = vec![0.1, 0.5, 0.9, -0.3];
        snap_slice(&mut v);
        let first = v.clone();
        snap_slice(&mut v);
        for (a, b) in first.iter().zip(&v) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
