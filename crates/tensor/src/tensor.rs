use crate::{Result, TensorError};

/// An owned, row-major, dense 2-D array of `f32`.
///
/// All SHMT datasets in the paper are flat 2-D floating-point arrays held in
/// the system's shared main memory (§4.1); `Tensor` plays that role here.
///
/// Backing storage is pooled: tensors take their buffer from the global
/// page arena ([`crate::arena`]) and return it on drop, so steady-state
/// tensor traffic performs no heap allocation once the arena is warm.
///
/// # Examples
///
/// ```
/// use shmt_tensor::Tensor;
///
/// let mut t = Tensor::zeros(2, 3);
/// t[(1, 2)] = 4.0;
/// assert_eq!(t.get(1, 2), Some(4.0));
/// assert_eq!(t.as_slice().len(), 6);
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = crate::arena::take_f32(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::arena::put_f32(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a `rows x cols` tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the element count overflows.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` tensor with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the element count overflows.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self::try_filled(rows, cols, value).expect("valid tensor shape")
    }

    /// Fallible variant of [`Tensor::filled`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if either dimension is zero or
    /// `rows * cols` overflows `usize`.
    pub fn try_filled(rows: usize, cols: usize, value: f32) -> Result<Self> {
        let len = Self::checked_len(rows, cols)?;
        let mut data = crate::arena::take_f32(len);
        data.resize(len, value);
        Ok(Tensor { rows, cols, data })
    }

    /// Creates a tensor by evaluating `f(row, col)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the element count overflows.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let len = Self::checked_len(rows, cols).expect("valid tensor shape");
        let mut data = crate::arena::take_f32(len);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for a degenerate shape and
    /// [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        let len = Self::checked_len(rows, cols)?;
        if data.len() != len {
            return Err(TensorError::ShapeMismatch {
                expected: len,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    fn checked_len(rows: usize, cols: usize) -> Result<usize> {
        if rows == 0 || cols == 0 {
            return Err(TensorError::InvalidShape { rows, cols });
        }
        rows.checked_mul(cols)
            .ok_or(TensorError::InvalidShape { rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements. Tensors always hold
    /// at least one element, so this is always `false`; provided for
    /// API completeness alongside [`Tensor::len`].
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the backing storage in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the backing storage in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage. The buffer
    /// leaves the arena's custody: it is freed normally unless the
    /// caller hands it back (e.g. via [`Tensor::from_vec`]).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Checked element access.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Borrows one full row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(
            row < self.rows,
            "row {row} out of bounds for {} rows",
            self.rows
        );
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows one full row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(
            row < self.rows,
            "row {row} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows a rectangular window.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the tensor bounds; use
    /// [`Tensor::try_view`] for a checked variant.
    pub fn view(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> TensorView<'_> {
        self.try_view(row0, col0, rows, cols)
            .expect("view within bounds")
    }

    /// Checked variant of [`Tensor::view`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the window exceeds the tensor.
    pub fn try_view(
        &self,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<TensorView<'_>> {
        self.check_window(row0, col0, rows, cols)?;
        Ok(TensorView {
            data: &self.data,
            stride: self.cols,
            row0,
            col0,
            rows,
            cols,
        })
    }

    /// Mutably borrows a rectangular window.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] if the window exceeds the tensor.
    pub fn try_view_mut(
        &mut self,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<TensorViewMut<'_>> {
        self.check_window(row0, col0, rows, cols)?;
        Ok(TensorViewMut {
            stride: self.cols,
            data: &mut self.data,
            row0,
            col0,
            rows,
            cols,
        })
    }

    fn check_window(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Result<()> {
        let row_end = row0.checked_add(rows);
        let col_end = col0.checked_add(cols);
        match (row_end, col_end) {
            (Some(re), Some(ce)) if re <= self.rows && ce <= self.cols && rows > 0 && cols > 0 => {
                Ok(())
            }
            _ => Err(TensorError::OutOfBounds {
                row: row0.saturating_add(rows.saturating_sub(1)),
                col: col0.saturating_add(cols.saturating_sub(1)),
                bounds: (self.rows, self.cols),
            }),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        let mut data = crate::arena::take_f32(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Minimum and maximum element values.
    ///
    /// NaN elements are ignored; if every element is NaN the result is
    /// `(0.0, 0.0)`.
    pub fn min_max(&self) -> (f32, f32) {
        let mut it = self.data.iter().copied().filter(|v| !v.is_nan());
        match it.next() {
            None => (0.0, 0.0),
            Some(first) => it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Tensor {
    type Output = f32;

    fn index(&self, (row, col): (usize, usize)) -> &f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

/// A borrowed rectangular window over a [`Tensor`].
///
/// # Examples
///
/// ```
/// use shmt_tensor::Tensor;
///
/// let t = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
/// let v = t.view(1, 1, 2, 2);
/// assert_eq!(v.at(0, 0), 5.0);
/// assert_eq!(v.to_tensor().as_slice(), &[5.0, 6.0, 9.0, 10.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a> {
    data: &'a [f32],
    stride: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
}

impl<'a> TensorView<'a> {
    /// Number of rows in the window.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements in the window.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always `false`; windows are non-degenerate by construction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at window-relative coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the window.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of window"
        );
        self.data[(self.row0 + row) * self.stride + self.col0 + col]
    }

    /// Borrows one window row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &'a [f32] {
        assert!(row < self.rows, "row {row} out of window");
        let start = (self.row0 + row) * self.stride + self.col0;
        &self.data[start..start + self.cols]
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).iter().copied())
    }

    /// Copies the window into a new owned [`Tensor`].
    pub fn to_tensor(&self) -> Tensor {
        let mut data = crate::arena::take_f32(self.len());
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
        }
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copies the window into an owned [`Tensor`] while scanning its
    /// NaN-filtered minimum and maximum in the same pass — the fused
    /// form of [`TensorView::to_tensor`] + [`TensorView::min_max`] used
    /// by the Edge TPU transfer step, so each transferred page is
    /// touched once instead of twice.
    ///
    /// Returns `None` for the range when every element is NaN, matching
    /// the `(0.0, 0.0)` convention of [`TensorView::min_max`] at the
    /// call site's discretion. The range is bit-identical to a separate
    /// [`TensorView::min_max`] scan: the same elements are folded with
    /// the same `min`/`max` calls in the same row-major order.
    pub fn to_tensor_with_min_max(&self) -> (Tensor, Option<(f32, f32)>) {
        let mut data = crate::arena::take_f32(self.len());
        let mut range: Option<(f32, f32)> = None;
        for r in 0..self.rows {
            let row = self.row(r);
            data.extend_from_slice(row);
            for v in row.iter().copied().filter(|v| !v.is_nan()) {
                range = Some(match range {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        (
            Tensor {
                rows: self.rows,
                cols: self.cols,
                data,
            },
            range,
        )
    }

    /// Minimum and maximum element values within the window.
    ///
    /// NaN elements are ignored; all-NaN windows yield `(0.0, 0.0)`.
    pub fn min_max(&self) -> (f32, f32) {
        let mut it = self.iter().filter(|v| !v.is_nan());
        match it.next() {
            None => (0.0, 0.0),
            Some(first) => it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))),
        }
    }
}

/// A mutably borrowed rectangular window over a [`Tensor`].
#[derive(Debug)]
pub struct TensorViewMut<'a> {
    data: &'a mut [f32],
    stride: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
}

impl<'a> TensorViewMut<'a> {
    /// Number of rows in the window.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the window.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mutably borrows one window row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of window");
        let start = (self.row0 + row) * self.stride + self.col0;
        &mut self.data[start..start + self.cols]
    }

    /// Overwrites the window with the contents of `src`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RectMismatch`] when shapes differ.
    pub fn copy_from(&mut self, src: &TensorView<'_>) -> Result<()> {
        if (self.rows, self.cols) != (src.rows(), src.cols()) {
            return Err(TensorError::RectMismatch {
                src: (src.rows(), src.cols()),
                dst: (self.rows, self.cols),
            });
        }
        for r in 0..self.rows {
            self.row_mut(r).copy_from_slice(src.row(r));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_values() {
        let t = Tensor::zeros(3, 5);
        assert_eq!(t.shape(), (3, 5));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        assert!(matches!(
            Tensor::try_filled(0, 4, 1.0),
            Err(TensorError::InvalidShape { rows: 0, cols: 4 })
        ));
        assert!(Tensor::try_filled(usize::MAX, 2, 1.0).is_err());
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(4, 4);
        t[(2, 3)] = 7.5;
        assert_eq!(t[(2, 3)], 7.5);
        assert_eq!(t.get(2, 3), Some(7.5));
        assert_eq!(t.get(4, 0), None);
    }

    #[test]
    fn view_reads_correct_window() {
        let t = Tensor::from_fn(4, 4, |r, c| (r * 10 + c) as f32);
        let v = t.view(1, 2, 2, 2);
        assert_eq!(v.at(0, 0), 12.0);
        assert_eq!(v.at(1, 1), 23.0);
        assert_eq!(v.row(1), &[22.0, 23.0]);
    }

    #[test]
    fn view_out_of_bounds_errors() {
        let t = Tensor::zeros(4, 4);
        assert!(t.try_view(3, 3, 2, 2).is_err());
        assert!(t.try_view(0, 0, 0, 1).is_err());
        assert!(t.try_view(usize::MAX, 0, 2, 1).is_err());
    }

    #[test]
    fn view_mut_copy_from_writes_window() {
        let src_t = Tensor::filled(2, 2, 9.0);
        let src = src_t.view(0, 0, 2, 2);
        let mut dst = Tensor::zeros(4, 4);
        dst.try_view_mut(1, 1, 2, 2)
            .unwrap()
            .copy_from(&src)
            .unwrap();
        assert_eq!(dst[(1, 1)], 9.0);
        assert_eq!(dst[(2, 2)], 9.0);
        assert_eq!(dst[(0, 0)], 0.0);
        assert_eq!(dst[(3, 3)], 0.0);
    }

    #[test]
    fn copy_from_shape_mismatch_errors() {
        let src_t = Tensor::filled(2, 3, 1.0);
        let src = src_t.view(0, 0, 2, 3);
        let mut dst = Tensor::zeros(4, 4);
        let err = dst
            .try_view_mut(0, 0, 2, 2)
            .unwrap()
            .copy_from(&src)
            .unwrap_err();
        assert_eq!(
            err,
            TensorError::RectMismatch {
                src: (2, 3),
                dst: (2, 2)
            }
        );
    }

    #[test]
    fn min_max_ignores_nan() {
        let t = Tensor::from_vec(1, 4, vec![3.0, f32::NAN, -1.0, 2.0]).unwrap();
        assert_eq!(t.min_max(), (-1.0, 3.0));
    }

    #[test]
    fn to_tensor_with_min_max_matches_separate_passes() {
        let t = Tensor::from_fn(5, 7, |r, c| (r as f32) - (c as f32) * 0.5);
        let v = t.view(1, 2, 3, 4);
        let (copy, range) = v.to_tensor_with_min_max();
        assert_eq!(copy, v.to_tensor());
        assert_eq!(range, Some(v.min_max()));
    }

    #[test]
    fn to_tensor_with_min_max_all_nan_is_none() {
        let nan = Tensor::from_vec(1, 2, vec![f32::NAN, f32::NAN]).unwrap();
        let (copy, range) = nan.view(0, 0, 1, 2).to_tensor_with_min_max();
        assert_eq!(range, None);
        assert!(copy.as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn dropped_tensor_buffer_is_recycled() {
        let t = Tensor::filled(32, 32, 1.5);
        let before = crate::arena::stats();
        drop(t);
        let after = crate::arena::stats();
        assert!(after.recycled + after.dropped > before.recycled + before.dropped);
    }

    #[test]
    fn map_preserves_shape() {
        let t = Tensor::from_fn(2, 2, |r, c| (r + c) as f32);
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.as_slice(), &[0.0, 2.0, 2.0, 4.0]);
        assert_eq!(doubled.shape(), t.shape());
    }
}
