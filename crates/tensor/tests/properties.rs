//! Randomized property tests for the tensor substrate: views, strided
//! copies, tiling geometry, and quantization.
//!
//! Cases are drawn from a seeded [`Pcg32`] stream, so every run explores
//! the same inputs and failures reproduce exactly.

use shmt_tensor::quant::{dequantize_tensor, quantize_tensor, QuantParams};
use shmt_tensor::rng::Pcg32;
use shmt_tensor::tile::{segment, TileSpec, MIN_VECTOR_ELEMS};
use shmt_tensor::{copy2d, Rect, Tensor};

/// copy2d round-trips any interior rectangle.
#[test]
fn copy2d_round_trips() {
    let mut rng = Pcg32::seed_from_u64(0x7e50);
    for _ in 0..64 {
        let rows = rng.gen_range(1usize..40);
        let cols = rng.gen_range(1usize..40);
        let r0 = rng.gen_range(0usize..20);
        let c0 = rng.gen_range(0usize..20);
        let src = Tensor::from_fn(rows + 20, cols + 20, |r, c| (r * 101 + c) as f32);
        let mut dst = Tensor::zeros(rows, cols);
        copy2d(
            &src,
            Rect::new(r0, c0, rows, cols),
            &mut dst,
            Rect::full(rows, cols),
        )
        .unwrap();
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[(r, c)], src[(r0 + r, c0 + c)]);
            }
        }
        // And back into a bigger tensor.
        let mut back = Tensor::zeros(rows + 20, cols + 20);
        copy2d(
            &dst,
            Rect::full(rows, cols),
            &mut back,
            Rect::new(r0, c0, rows, cols),
        )
        .unwrap();
        assert_eq!(back[(r0, c0)], src[(r0, c0)]);
    }
}

/// Views agree with direct indexing for arbitrary windows.
#[test]
fn views_agree_with_indexing() {
    let mut rng = Pcg32::seed_from_u64(0x7e51);
    for _ in 0..64 {
        let rows = rng.gen_range(1usize..30);
        let cols = rng.gen_range(1usize..30);
        let r0 = rng.gen_range(0usize..10);
        let c0 = rng.gen_range(0usize..10);
        let t = Tensor::from_fn(rows + 10, cols + 10, |r, c| (r * 31 + c * 7) as f32);
        let v = t.view(r0, c0, rows, cols);
        assert_eq!(v.len(), rows * cols);
        for r in 0..rows {
            assert_eq!(v.at(r, cols - 1), t[(r0 + r, c0 + cols - 1)]);
        }
        let copied = v.to_tensor();
        assert_eq!(copied.shape(), (rows, cols));
        assert_eq!(copied[(rows - 1, cols - 1)], v.at(rows - 1, cols - 1));
    }
}

/// Tile grids cover without overlap for arbitrary specs.
#[test]
fn tile_grids_partition() {
    let mut rng = Pcg32::seed_from_u64(0x7e52);
    for _ in 0..64 {
        let rows = rng.gen_range(1usize..80);
        let cols = rng.gen_range(1usize..80);
        let tr = rng.gen_range(1usize..20);
        let tc = rng.gen_range(1usize..20);
        let grid = TileSpec::new(tr, tc).grid_for(rows, cols);
        let total: usize = grid.iter().map(|t| t.len()).sum();
        assert_eq!(total, rows * cols, "{rows}x{cols} @ {tr}x{tc}");
        let mut seen = vec![false; rows * cols];
        for t in &grid {
            for r in t.row0..t.row0 + t.rows {
                for c in t.col0..t.col0 + t.cols {
                    assert!(!seen[r * cols + c], "overlap at ({r},{c})");
                    seen[r * cols + c] = true;
                }
            }
        }
    }
}

/// Vector segmentation is contiguous, complete, and page-aligned.
#[test]
fn segments_partition() {
    let mut rng = Pcg32::seed_from_u64(0x7e53);
    for _ in 0..200 {
        let len = rng.gen_range(1usize..200_000);
        let want = rng.gen_range(1usize..32);
        let segs = segment(len, want);
        assert!(segs.len() <= want);
        assert_eq!(segs[0].start, 0);
        let mut end = 0;
        for s in &segs {
            assert_eq!(s.start, end);
            end = s.end();
        }
        assert_eq!(end, len);
        if len >= MIN_VECTOR_ELEMS {
            for s in &segs[..segs.len() - 1] {
                assert_eq!(s.len % MIN_VECTOR_ELEMS, 0, "len {len} want {want}");
            }
        }
    }
}

/// Whole-tensor quantization round trips within one step everywhere.
#[test]
fn tensor_quantization_bounded() {
    let mut rng = Pcg32::seed_from_u64(0x7e54);
    for _ in 0..200 {
        let seed = rng.gen_range(0u64..500);
        let lo = rng.gen_range(-100.0f32..100.0);
        let width = rng.gen_range(0.1f32..500.0);
        let t = shmt_tensor::gen::uniform(8, 8, lo, lo + width, seed);
        let q = quantize_tensor(&t);
        let back = dequantize_tensor(&q);
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!(
                (a - b).abs() <= q.params().scale() * 0.5 + width * 1e-4,
                "lo {lo} width {width}: {a} vs {b}"
            );
        }
    }
}

/// snap is idempotent for any range.
#[test]
fn snap_idempotent() {
    let mut rng = Pcg32::seed_from_u64(0x7e55);
    for _ in 0..2000 {
        let lo = rng.gen_range(-1e3f32..1e3);
        let width = rng.gen_range(1e-2f32..1e3);
        let x = rng.gen_range(-2e3f32..2e3);
        let p = QuantParams::from_range(lo, lo + width);
        let once = p.snap(x);
        assert_eq!(p.snap(once), once, "lo {lo} width {width} x {x}");
    }
}
