//! The typed event vocabulary of a traced SHMT run.

/// Index of a device on the modeled platform (queue-index convention:
/// 0 = GPU, 1 = CPU, 2 = Edge TPU).
pub type DeviceId = usize;

/// Display names for the canonical queue-index device order.
pub const DEFAULT_DEVICE_NAMES: [&str; 3] = ["GPU", "CPU", "EdgeTPU"];

/// One kind of trace event. Paired `*Start`/`*End` kinds form spans; the
/// rest are instants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The VOP partitioner started with this requested partition count.
    PartitionStart {
        /// Requested HLOP count.
        partitions: usize,
    },
    /// Partitioning finished, producing this many HLOPs.
    PartitionEnd {
        /// HLOPs actually produced (may be fewer than requested).
        hlops: usize,
    },
    /// Serial scheduler-side overhead attributed to one partition
    /// (criticality sampling or an IRA canary), recorded at the instant
    /// the partition's share of the overhead window ends.
    SampleOverhead {
        /// The partition sampled.
        hlop: usize,
        /// This partition's share of the serial overhead, in seconds.
        cost_s: f64,
    },
    /// An HLOP was placed on a device's incoming queue by the initial
    /// plan.
    Dispatch {
        /// The HLOP dispatched.
        hlop: usize,
        /// Queue index it landed on.
        device: DeviceId,
    },
    /// An int8 cast began on the way to/from an approximate device.
    CastStart {
        /// The HLOP whose data is cast.
        hlop: usize,
        /// Device the cast serves.
        device: DeviceId,
    },
    /// The cast finished.
    CastEnd {
        /// The HLOP whose data was cast.
        hlop: usize,
        /// Device the cast served.
        device: DeviceId,
    },
    /// A bus transfer started occupying the interconnect.
    TransferStart {
        /// The HLOP whose data is moving.
        hlop: usize,
        /// Device the transfer serves.
        device: DeviceId,
        /// Bytes moved.
        bytes: usize,
    },
    /// The bus transfer's last byte arrived.
    TransferEnd {
        /// The HLOP whose data moved.
        hlop: usize,
        /// Device the transfer served.
        device: DeviceId,
        /// Bytes moved.
        bytes: usize,
    },
    /// A device began executing an HLOP (the start of its busy interval).
    ComputeStart {
        /// The HLOP executing.
        hlop: usize,
        /// Device executing it.
        device: DeviceId,
    },
    /// The device finished the HLOP's compute (end of the busy interval;
    /// excludes any post-compute stall on result restoration).
    ComputeEnd {
        /// The HLOP that finished.
        hlop: usize,
        /// Device that ran it.
        device: DeviceId,
    },
    /// A work steal: `to` withdrew a pending HLOP from `from`'s queue.
    Steal {
        /// The HLOP that changed queues.
        hlop: usize,
        /// Victim queue index.
        from: DeviceId,
        /// Thief queue index.
        to: DeviceId,
    },
    /// A finished HLOP moved to the completion queue for aggregation.
    Aggregate {
        /// The HLOP aggregated.
        hlop: usize,
        /// Device that produced it.
        device: DeviceId,
    },
    /// A scheduled fault fired: a transfer failed or a slowdown window hit
    /// while this HLOP was being served.
    FaultInjected {
        /// The HLOP affected.
        hlop: usize,
        /// Device being served when the fault fired.
        device: DeviceId,
    },
    /// A failed transfer was re-issued after backoff.
    Retry {
        /// The HLOP whose transfer is retried.
        hlop: usize,
        /// Device the transfer serves.
        device: DeviceId,
        /// Retry number, 1-based.
        attempt: usize,
    },
    /// A pending HLOP moved off a dead device's queue to a survivor.
    Redispatch {
        /// The HLOP that changed queues.
        hlop: usize,
        /// The dead device's queue index.
        from: DeviceId,
        /// The surviving queue index it landed on.
        to: DeviceId,
    },
    /// A device dropped out of the platform at this instant.
    DeviceDown {
        /// The device that died.
        device: DeviceId,
    },
    /// The quality guard began recomputing sampled pages of an
    /// approximate HLOP exactly on `device`.
    GuardVerifyStart {
        /// The HLOP being verified.
        hlop: usize,
        /// Exact device charged for the recomputation.
        device: DeviceId,
    },
    /// The guard finished verifying the HLOP's sampled pages.
    GuardVerifyEnd {
        /// The HLOP verified.
        hlop: usize,
        /// Exact device charged for the recomputation.
        device: DeviceId,
    },
    /// The guard began re-executing an over-budget HLOP exactly.
    GuardRepairStart {
        /// The HLOP being repaired.
        hlop: usize,
        /// Exact device charged for the re-execution.
        device: DeviceId,
    },
    /// The guard finished the exact re-execution.
    GuardRepairEnd {
        /// The HLOP repaired.
        hlop: usize,
        /// Exact device charged for the re-execution.
        device: DeviceId,
    },
}

impl EventKind {
    /// Stable name of the kind (used by exporters and for counting).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PartitionStart { .. } => "PartitionStart",
            EventKind::PartitionEnd { .. } => "PartitionEnd",
            EventKind::SampleOverhead { .. } => "SampleOverhead",
            EventKind::Dispatch { .. } => "Dispatch",
            EventKind::CastStart { .. } => "CastStart",
            EventKind::CastEnd { .. } => "CastEnd",
            EventKind::TransferStart { .. } => "TransferStart",
            EventKind::TransferEnd { .. } => "TransferEnd",
            EventKind::ComputeStart { .. } => "ComputeStart",
            EventKind::ComputeEnd { .. } => "ComputeEnd",
            EventKind::Steal { .. } => "Steal",
            EventKind::Aggregate { .. } => "Aggregate",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::Retry { .. } => "Retry",
            EventKind::Redispatch { .. } => "Redispatch",
            EventKind::DeviceDown { .. } => "DeviceDown",
            EventKind::GuardVerifyStart { .. } => "GuardVerifyStart",
            EventKind::GuardVerifyEnd { .. } => "GuardVerifyEnd",
            EventKind::GuardRepairStart { .. } => "GuardRepairStart",
            EventKind::GuardRepairEnd { .. } => "GuardRepairEnd",
        }
    }

    /// The device the event belongs to, when it has one. Steals and
    /// redispatches report the receiving device.
    pub fn device(&self) -> Option<DeviceId> {
        match *self {
            EventKind::Dispatch { device, .. }
            | EventKind::CastStart { device, .. }
            | EventKind::CastEnd { device, .. }
            | EventKind::TransferStart { device, .. }
            | EventKind::TransferEnd { device, .. }
            | EventKind::ComputeStart { device, .. }
            | EventKind::ComputeEnd { device, .. }
            | EventKind::Aggregate { device, .. }
            | EventKind::FaultInjected { device, .. }
            | EventKind::Retry { device, .. }
            | EventKind::GuardVerifyStart { device, .. }
            | EventKind::GuardVerifyEnd { device, .. }
            | EventKind::GuardRepairStart { device, .. }
            | EventKind::GuardRepairEnd { device, .. }
            | EventKind::DeviceDown { device } => Some(device),
            EventKind::Steal { to, .. } | EventKind::Redispatch { to, .. } => Some(to),
            EventKind::PartitionStart { .. }
            | EventKind::PartitionEnd { .. }
            | EventKind::SampleOverhead { .. } => None,
        }
    }

    /// The HLOP the event concerns, when it has one.
    pub fn hlop(&self) -> Option<usize> {
        match *self {
            EventKind::SampleOverhead { hlop, .. }
            | EventKind::Dispatch { hlop, .. }
            | EventKind::CastStart { hlop, .. }
            | EventKind::CastEnd { hlop, .. }
            | EventKind::TransferStart { hlop, .. }
            | EventKind::TransferEnd { hlop, .. }
            | EventKind::ComputeStart { hlop, .. }
            | EventKind::ComputeEnd { hlop, .. }
            | EventKind::Steal { hlop, .. }
            | EventKind::Aggregate { hlop, .. }
            | EventKind::FaultInjected { hlop, .. }
            | EventKind::Retry { hlop, .. }
            | EventKind::Redispatch { hlop, .. }
            | EventKind::GuardVerifyStart { hlop, .. }
            | EventKind::GuardVerifyEnd { hlop, .. }
            | EventKind::GuardRepairStart { hlop, .. }
            | EventKind::GuardRepairEnd { hlop, .. } => Some(hlop),
            EventKind::PartitionStart { .. }
            | EventKind::PartitionEnd { .. }
            | EventKind::DeviceDown { .. } => None,
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event, in seconds since the run's epoch.
    pub time_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// A paired `*Start`/`*End` interval reconstructed from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Device the span ran on.
    pub device: DeviceId,
    /// HLOP the span belongs to.
    pub hlop: usize,
    /// Span start, virtual seconds.
    pub start_s: f64,
    /// Span end, virtual seconds.
    pub end_s: f64,
    /// Bytes moved, for transfer spans.
    pub bytes: Option<usize>,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let kinds = [
            EventKind::PartitionStart { partitions: 1 },
            EventKind::PartitionEnd { hlops: 1 },
            EventKind::SampleOverhead {
                hlop: 0,
                cost_s: 0.0,
            },
            EventKind::Dispatch { hlop: 0, device: 0 },
            EventKind::CastStart { hlop: 0, device: 2 },
            EventKind::CastEnd { hlop: 0, device: 2 },
            EventKind::TransferStart {
                hlop: 0,
                device: 2,
                bytes: 1,
            },
            EventKind::TransferEnd {
                hlop: 0,
                device: 2,
                bytes: 1,
            },
            EventKind::ComputeStart { hlop: 0, device: 1 },
            EventKind::ComputeEnd { hlop: 0, device: 1 },
            EventKind::Steal {
                hlop: 0,
                from: 2,
                to: 0,
            },
            EventKind::Aggregate { hlop: 0, device: 0 },
            EventKind::FaultInjected { hlop: 0, device: 2 },
            EventKind::Retry {
                hlop: 0,
                device: 2,
                attempt: 1,
            },
            EventKind::Redispatch {
                hlop: 0,
                from: 0,
                to: 1,
            },
            EventKind::DeviceDown { device: 0 },
            EventKind::GuardVerifyStart { hlop: 0, device: 1 },
            EventKind::GuardVerifyEnd { hlop: 0, device: 1 },
            EventKind::GuardRepairStart { hlop: 0, device: 1 },
            EventKind::GuardRepairEnd { hlop: 0, device: 1 },
        ];
        let mut names: Vec<&str> = kinds.iter().map(EventKind::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn device_and_hlop_extraction() {
        let k = EventKind::Steal {
            hlop: 7,
            from: 2,
            to: 0,
        };
        assert_eq!(k.device(), Some(0), "steal reports the thief");
        assert_eq!(k.hlop(), Some(7));
        assert_eq!(EventKind::PartitionStart { partitions: 4 }.device(), None);
        assert_eq!(EventKind::PartitionEnd { hlops: 4 }.hlop(), None);
    }

    #[test]
    fn span_duration() {
        let s = Span {
            device: 0,
            hlop: 1,
            start_s: 0.25,
            end_s: 1.0,
            bytes: None,
        };
        assert!((s.duration_s() - 0.75).abs() < 1e-12);
    }
}
