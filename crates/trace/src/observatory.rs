//! Live, mergeable telemetry: streaming latency histograms plus
//! per-device *online profiles*.
//!
//! The [`Observatory`] is the observation half of an adaptive scheduling
//! loop: it is fed span completions (in virtual time), quality
//! observations, and queue depths as requests finish, and answers
//! "how fast is each device right now?" without ever storing raw
//! samples. Latencies go into log-bucketed [`Histogram`]s (p50/p95/p99/
//! p999 at bucket resolution); device behavior goes into EWMA profiles
//! keyed by HLOP kind. Everything is mergeable, so per-worker
//! observatories can fold into one, and everything renders through the
//! [`crate::openmetrics`] exporter.

use std::collections::BTreeMap;

use crate::event::{DeviceId, DEFAULT_DEVICE_NAMES};
use crate::metrics::{Histogram, MetricsRegistry};

/// Default EWMA smoothing factor: each new observation carries 25% of
/// the updated estimate, so profiles converge within ~a dozen requests
/// while still damping single-request noise.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.25;

/// What the observatory currently believes about one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Display name ("GPU", "CPU", "EdgeTPU").
    pub name: String,
    /// Span completions observed.
    pub spans: u64,
    /// Total busy time observed, virtual seconds.
    pub busy_s: f64,
    /// Total elements computed across observed spans.
    pub elements: u64,
    /// EWMA throughput per HLOP kind, elements per virtual second.
    pub ewma_throughput: BTreeMap<String, f64>,
    /// EWMA of observed approximation error (MAPE), if any was reported.
    pub ewma_mape: Option<f64>,
    /// Most recent queue depth reported for this device.
    pub queue_depth: f64,
    /// Whether the health breaker currently holds this device out.
    pub quarantined: bool,
}

impl DeviceProfile {
    fn new(name: &str) -> Self {
        DeviceProfile {
            name: name.to_owned(),
            spans: 0,
            busy_s: 0.0,
            elements: 0,
            ewma_throughput: BTreeMap::new(),
            ewma_mape: None,
            queue_depth: 0.0,
            quarantined: false,
        }
    }

    /// Lifetime-average throughput (elements per busy second) across
    /// all kinds, if anything was observed.
    pub fn mean_throughput(&self) -> Option<f64> {
        (self.busy_s > 0.0).then(|| self.elements as f64 / self.busy_s)
    }
}

fn ewma(prev: Option<f64>, value: f64, alpha: f64) -> f64 {
    match prev {
        None => value,
        Some(p) => alpha * value + (1.0 - alpha) * p,
    }
}

/// Streaming telemetry store: latency histograms, per-device online
/// profiles, and a metrics registry, all updatable live and mergeable.
#[derive(Debug, Clone, PartialEq)]
pub struct Observatory {
    alpha: f64,
    profiles: Vec<DeviceProfile>,
    histograms: BTreeMap<String, Histogram>,
    metrics: MetricsRegistry,
}

impl Default for Observatory {
    fn default() -> Self {
        Self::new()
    }
}

impl Observatory {
    /// An observatory over the default device roster with the default
    /// smoothing factor.
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_EWMA_ALPHA)
    }

    /// An observatory with a custom EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Observatory {
            alpha,
            profiles: DEFAULT_DEVICE_NAMES
                .iter()
                .map(|n| DeviceProfile::new(n))
                .collect(),
            histograms: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Number of devices profiled.
    pub fn device_count(&self) -> usize {
        self.profiles.len()
    }

    /// Feeds one span completion: `device` spent `busy_s` virtual
    /// seconds computing `elements` elements of an HLOP of `kind`.
    /// Updates the device's EWMA throughput for that kind.
    pub fn observe_span(&mut self, device: DeviceId, kind: &str, elements: u64, busy_s: f64) {
        let alpha = self.alpha;
        let p = &mut self.profiles[device];
        p.spans += 1;
        p.busy_s += busy_s;
        p.elements += elements;
        if busy_s > 0.0 && elements > 0 {
            let inst = elements as f64 / busy_s;
            let prev = p.ewma_throughput.get(kind).copied();
            p.ewma_throughput
                .insert(kind.to_owned(), ewma(prev, inst, alpha));
        }
    }

    /// Feeds one quality observation (a MAPE estimate attributed to
    /// `device`, typically the approximating NPU).
    pub fn observe_mape(&mut self, device: DeviceId, mape: f64) {
        let alpha = self.alpha;
        let p = &mut self.profiles[device];
        p.ewma_mape = Some(ewma(p.ewma_mape, mape, alpha));
    }

    /// Records the latest queue depth for a device.
    pub fn set_queue_depth(&mut self, device: DeviceId, depth: f64) {
        self.profiles[device].queue_depth = depth;
    }

    /// Records the health breaker's current verdict for a device.
    pub fn set_quarantined(&mut self, device: DeviceId, quarantined: bool) {
        self.profiles[device].quarantined = quarantined;
    }

    /// Records one latency sample into the named log-bucketed histogram
    /// (created on first use with [`Histogram::latency_log`] bounds).
    pub fn record_latency(&mut self, name: &str, seconds: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::latency_log)
            .record(seconds);
    }

    /// The named latency histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All device profiles, in device-id order.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// One device's profile.
    pub fn profile(&self, device: DeviceId) -> &DeviceProfile {
        &self.profiles[device]
    }

    /// The embedded metrics registry (counters and gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the embedded metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Folds an external registry's counters and gauges into this
    /// observatory's metrics.
    pub fn merge_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics.merge(registry);
    }

    /// Folds another observatory into this one: histograms with the
    /// same name merge bucket-wise, metrics merge, and device profiles
    /// combine (totals add; EWMAs average weighted by span count;
    /// queue depth takes the max; quarantine ORs).
    ///
    /// # Panics
    ///
    /// Panics if the device rosters differ or same-named histograms
    /// have different bounds.
    pub fn merge(&mut self, other: &Observatory) {
        assert_eq!(
            self.profiles.len(),
            other.profiles.len(),
            "cannot merge observatories over different device rosters"
        );
        for (name, hist) in other.histograms() {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.to_owned(), hist.clone());
                }
            }
        }
        self.metrics.merge(&other.metrics);
        for (mine, theirs) in self.profiles.iter_mut().zip(&other.profiles) {
            let (ws, wo) = (mine.spans as f64, theirs.spans as f64);
            let blend = |a: Option<f64>, b: Option<f64>| match (a, b) {
                (Some(a), Some(b)) if ws + wo > 0.0 => Some((a * ws + b * wo) / (ws + wo)),
                (Some(a), Some(b)) => Some((a + b) / 2.0),
                (a, b) => a.or(b),
            };
            for (kind, &v) in &theirs.ewma_throughput {
                let merged = blend(mine.ewma_throughput.get(kind).copied(), Some(v))
                    .expect("blend of Some is Some");
                mine.ewma_throughput.insert(kind.clone(), merged);
            }
            mine.ewma_mape = blend(mine.ewma_mape, theirs.ewma_mape);
            mine.spans += theirs.spans;
            mine.busy_s += theirs.busy_s;
            mine.elements += theirs.elements;
            mine.queue_depth = mine.queue_depth.max(theirs.queue_depth);
            mine.quarantined |= theirs.quarantined;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_update_totals_and_ewma() {
        let mut obs = Observatory::new();
        obs.observe_span(0, "Sobel", 1000, 0.001); // 1e6 elem/s
        let p = obs.profile(0);
        assert_eq!(p.spans, 1);
        assert_eq!(p.elements, 1000);
        assert_eq!(p.ewma_throughput["Sobel"], 1.0e6, "first sets directly");
        obs.observe_span(0, "Sobel", 1000, 0.002); // 5e5 elem/s
        let t = obs.profile(0).ewma_throughput["Sobel"];
        assert!((t - (0.25 * 5.0e5 + 0.75 * 1.0e6)).abs() < 1e-6);
        assert_eq!(obs.profile(0).mean_throughput(), Some(2000.0 / 0.003));
    }

    #[test]
    fn ewma_converges_to_a_sustained_slowdown() {
        let mut obs = Observatory::new();
        obs.observe_span(0, "Fft", 1000, 0.001); // healthy: 1e6
        for _ in 0..24 {
            obs.observe_span(0, "Fft", 1000, 0.004); // 4x slower: 2.5e5
        }
        let t = obs.profile(0).ewma_throughput["Fft"];
        let ratio = t / 1.0e6;
        assert!(
            (ratio - 0.25).abs() < 0.01,
            "EWMA should converge to the slowdown ratio, got {ratio}"
        );
    }

    #[test]
    fn mape_queue_and_quarantine_are_tracked() {
        let mut obs = Observatory::new();
        assert_eq!(obs.profile(2).ewma_mape, None);
        obs.observe_mape(2, 0.10);
        obs.observe_mape(2, 0.20);
        let m = obs.profile(2).ewma_mape.unwrap();
        assert!((m - (0.25 * 0.20 + 0.75 * 0.10)).abs() < 1e-12);
        obs.set_queue_depth(1, 7.0);
        obs.set_quarantined(2, true);
        assert_eq!(obs.profile(1).queue_depth, 7.0);
        assert!(obs.profile(2).quarantined);
    }

    #[test]
    fn latency_histograms_stream_quantiles() {
        let mut obs = Observatory::new();
        for i in 1..=100 {
            obs.record_latency("serve.service_seconds", i as f64 * 1.0e-3);
        }
        let h = obs.histogram("serve.service_seconds").unwrap();
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.050..=0.050 * 1.25).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999).unwrap();
        assert!((0.100..=0.100 * 1.25).contains(&p999), "p999 {p999}");
    }

    #[test]
    fn merge_folds_histograms_profiles_and_metrics() {
        let mut a = Observatory::new();
        let mut b = Observatory::new();
        a.record_latency("serve.service_seconds", 0.010);
        b.record_latency("serve.service_seconds", 0.020);
        b.record_latency("serve.queue_wait_seconds", 0.001);
        a.observe_span(0, "Sobel", 100, 0.001);
        b.observe_span(0, "Sobel", 300, 0.001);
        b.set_quarantined(2, true);
        a.metrics_mut().add_counter("serve.completed", 1.0);
        b.metrics_mut().add_counter("serve.completed", 2.0);

        a.merge(&b);
        assert_eq!(a.histogram("serve.service_seconds").unwrap().total(), 2);
        assert_eq!(a.histogram("serve.queue_wait_seconds").unwrap().total(), 1);
        let p = a.profile(0);
        assert_eq!(p.spans, 2);
        assert_eq!(p.elements, 400);
        // Equal span weights: blend of 1e5 and 3e5.
        assert!((p.ewma_throughput["Sobel"] - 2.0e5).abs() < 1e-6);
        assert!(a.profile(2).quarantined);
        assert_eq!(a.metrics().counter("serve.completed"), 3.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        Observatory::with_alpha(0.0);
    }
}
