//! Live, mergeable telemetry: streaming latency histograms plus
//! per-device *online profiles*.
//!
//! The [`Observatory`] is the observation half of an adaptive scheduling
//! loop: it is fed span completions (in virtual time), quality
//! observations, and queue depths as requests finish, and answers
//! "how fast is each device right now?" without ever storing raw
//! samples. Latencies go into log-bucketed [`Histogram`]s (p50/p95/p99/
//! p999 at bucket resolution); device behavior goes into EWMA profiles
//! keyed by HLOP kind. Everything is mergeable, so per-worker
//! observatories can fold into one, and everything renders through the
//! [`crate::openmetrics`] exporter.

use std::collections::BTreeMap;

use crate::event::{DeviceId, DEFAULT_DEVICE_NAMES};
use crate::metrics::{Histogram, MetricsRegistry};

/// Default EWMA smoothing factor: each new observation carries 25% of
/// the updated estimate, so profiles converge within ~a dozen requests
/// while still damping single-request noise.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.25;

/// What the observatory currently believes about one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Display name ("GPU", "CPU", "EdgeTPU").
    pub name: String,
    /// Span completions observed (including spans that carried no
    /// throughput information).
    pub spans: u64,
    /// Total busy time across *throughput-bearing* spans (positive busy
    /// time and a nonzero element count), virtual seconds.
    pub busy_s: f64,
    /// Total elements across throughput-bearing spans — the same
    /// inclusion rule as `busy_s` and the EWMAs, so the lifetime mean
    /// and the EWMA agree on which spans count.
    pub elements: u64,
    /// EWMA throughput per HLOP kind, elements per virtual second.
    pub ewma_throughput: BTreeMap<String, f64>,
    /// Throughput-bearing spans folded into each kind's EWMA — the
    /// confidence weight behind `ewma_throughput`.
    pub kind_spans: BTreeMap<String, u64>,
    /// EWMA of observed approximation error (MAPE), if any was reported.
    pub ewma_mape: Option<f64>,
    /// Observations folded into `ewma_mape` — its confidence weight.
    pub mape_observations: u64,
    /// Most recent queue depth reported for this device.
    pub queue_depth: f64,
    /// Whether the health breaker currently holds this device out.
    pub quarantined: bool,
}

impl DeviceProfile {
    fn new(name: &str) -> Self {
        DeviceProfile {
            name: name.to_owned(),
            spans: 0,
            busy_s: 0.0,
            elements: 0,
            ewma_throughput: BTreeMap::new(),
            kind_spans: BTreeMap::new(),
            ewma_mape: None,
            mape_observations: 0,
            queue_depth: 0.0,
            quarantined: false,
        }
    }

    /// Lifetime-average throughput (elements per busy second) across
    /// all kinds, if anything was observed. Covers exactly the spans
    /// that fed the EWMAs.
    pub fn mean_throughput(&self) -> Option<f64> {
        (self.busy_s > 0.0).then(|| self.elements as f64 / self.busy_s)
    }

    /// Confidence weight behind one kind's EWMA throughput.
    pub fn kind_span_count(&self, kind: &str) -> u64 {
        self.kind_spans.get(kind).copied().unwrap_or(0)
    }
}

fn ewma(prev: Option<f64>, value: f64, alpha: f64) -> f64 {
    match prev {
        None => value,
        Some(p) => alpha * value + (1.0 - alpha) * p,
    }
}

/// Streaming telemetry store: latency histograms, per-device online
/// profiles, and a metrics registry, all updatable live and mergeable.
#[derive(Debug, Clone, PartialEq)]
pub struct Observatory {
    alpha: f64,
    profiles: Vec<DeviceProfile>,
    histograms: BTreeMap<String, Histogram>,
    metrics: MetricsRegistry,
}

impl Default for Observatory {
    fn default() -> Self {
        Self::new()
    }
}

impl Observatory {
    /// An observatory over the default device roster with the default
    /// smoothing factor.
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_EWMA_ALPHA)
    }

    /// An observatory with a custom EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Observatory {
            alpha,
            profiles: DEFAULT_DEVICE_NAMES
                .iter()
                .map(|n| DeviceProfile::new(n))
                .collect(),
            histograms: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Number of devices profiled.
    pub fn device_count(&self) -> usize {
        self.profiles.len()
    }

    /// Grows the roster so `device` is a valid index, synthesizing
    /// names for devices beyond the default roster (e.g. ids that only
    /// exist on a merged shard), and returns the profile.
    fn profile_mut(&mut self, device: DeviceId) -> &mut DeviceProfile {
        while self.profiles.len() <= device {
            let id = self.profiles.len();
            let name = DEFAULT_DEVICE_NAMES
                .get(id)
                .map_or_else(|| format!("device{id}"), |n| (*n).to_owned());
            self.profiles.push(DeviceProfile::new(&name));
        }
        &mut self.profiles[device]
    }

    /// Feeds one span completion: `device` spent `busy_s` virtual
    /// seconds computing `elements` elements of an HLOP of `kind`.
    /// Updates the device's EWMA throughput for that kind. Unknown
    /// device ids grow the roster instead of panicking.
    ///
    /// Spans with no positive busy time or no elements carry no
    /// throughput information; they bump the raw span count but are
    /// excluded from the totals and the EWMA alike.
    pub fn observe_span(&mut self, device: DeviceId, kind: &str, elements: u64, busy_s: f64) {
        let alpha = self.alpha;
        let p = self.profile_mut(device);
        p.spans += 1;
        if busy_s > 0.0 && elements > 0 {
            p.busy_s += busy_s;
            p.elements += elements;
            let inst = elements as f64 / busy_s;
            let prev = p.ewma_throughput.get(kind).copied();
            p.ewma_throughput
                .insert(kind.to_owned(), ewma(prev, inst, alpha));
            *p.kind_spans.entry(kind.to_owned()).or_insert(0) += 1;
        }
    }

    /// Feeds one quality observation (a MAPE estimate attributed to
    /// `device`, typically the approximating NPU). Unknown device ids
    /// grow the roster instead of panicking.
    pub fn observe_mape(&mut self, device: DeviceId, mape: f64) {
        let alpha = self.alpha;
        let p = self.profile_mut(device);
        p.ewma_mape = Some(ewma(p.ewma_mape, mape, alpha));
        p.mape_observations += 1;
    }

    /// Records the latest queue depth for a device. Unknown device ids
    /// grow the roster instead of panicking.
    pub fn set_queue_depth(&mut self, device: DeviceId, depth: f64) {
        self.profile_mut(device).queue_depth = depth;
    }

    /// Records the health breaker's current verdict for a device.
    /// Unknown device ids grow the roster instead of panicking.
    pub fn set_quarantined(&mut self, device: DeviceId, quarantined: bool) {
        self.profile_mut(device).quarantined = quarantined;
    }

    /// Records one latency sample into the named log-bucketed histogram
    /// (created on first use with [`Histogram::latency_log`] bounds).
    pub fn record_latency(&mut self, name: &str, seconds: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::latency_log)
            .record(seconds);
    }

    /// The named latency histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All device profiles, in device-id order.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// One device's profile, or `None` for a device id the observatory
    /// has never been told about (reads never grow the roster).
    pub fn profile(&self, device: DeviceId) -> Option<&DeviceProfile> {
        self.profiles.get(device)
    }

    /// The embedded metrics registry (counters and gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the embedded metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Folds an external registry's counters and gauges into this
    /// observatory's metrics.
    pub fn merge_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics.merge(registry);
    }

    /// Folds another observatory into this one: histograms with the
    /// same name merge bucket-wise, metrics merge, and device profiles
    /// combine (totals add; each EWMA averages weighted by *its own*
    /// observation count, so a side that never observed a kind or a
    /// MAPE neither dilutes nor discards the side that did; queue depth
    /// takes the max; quarantine ORs). A shard with more devices grows
    /// this roster.
    ///
    /// # Panics
    ///
    /// Panics if same-named histograms have different bounds.
    pub fn merge(&mut self, other: &Observatory) {
        for (name, hist) in other.histograms() {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.to_owned(), hist.clone());
                }
            }
        }
        self.metrics.merge(&other.metrics);
        if other.profiles.len() > self.profiles.len() {
            self.profile_mut(other.profiles.len() - 1);
        }
        for (mine, theirs) in self.profiles.iter_mut().zip(&other.profiles) {
            // Weighted blend of two estimates by their evidence counts.
            // Both weights zero only for pre-count legacy data: fall
            // back to a plain average rather than dividing by zero.
            let blend = |a: f64, wa: f64, b: f64, wb: f64| {
                if wa + wb > 0.0 {
                    (a * wa + b * wb) / (wa + wb)
                } else {
                    (a + b) / 2.0
                }
            };
            for (kind, &v) in &theirs.ewma_throughput {
                let wo = theirs.kind_span_count(kind) as f64;
                let merged = match mine.ewma_throughput.get(kind).copied() {
                    Some(a) => blend(a, mine.kind_span_count(kind) as f64, v, wo),
                    None => v,
                };
                mine.ewma_throughput.insert(kind.clone(), merged);
            }
            for (kind, &n) in &theirs.kind_spans {
                *mine.kind_spans.entry(kind.clone()).or_insert(0) += n;
            }
            mine.ewma_mape = match (mine.ewma_mape, theirs.ewma_mape) {
                (Some(a), Some(b)) => Some(blend(
                    a,
                    mine.mape_observations as f64,
                    b,
                    theirs.mape_observations as f64,
                )),
                (a, b) => a.or(b),
            };
            mine.mape_observations += theirs.mape_observations;
            mine.spans += theirs.spans;
            mine.busy_s += theirs.busy_s;
            mine.elements += theirs.elements;
            mine.queue_depth = mine.queue_depth.max(theirs.queue_depth);
            mine.quarantined |= theirs.quarantined;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_update_totals_and_ewma() {
        let mut obs = Observatory::new();
        obs.observe_span(0, "Sobel", 1000, 0.001); // 1e6 elem/s
        let p = obs.profile(0).unwrap();
        assert_eq!(p.spans, 1);
        assert_eq!(p.elements, 1000);
        assert_eq!(p.kind_span_count("Sobel"), 1);
        assert_eq!(p.ewma_throughput["Sobel"], 1.0e6, "first sets directly");
        obs.observe_span(0, "Sobel", 1000, 0.002); // 5e5 elem/s
        let t = obs.profile(0).unwrap().ewma_throughput["Sobel"];
        assert!((t - (0.25 * 5.0e5 + 0.75 * 1.0e6)).abs() < 1e-6);
        assert_eq!(
            obs.profile(0).unwrap().mean_throughput(),
            Some(2000.0 / 0.003)
        );
    }

    #[test]
    fn mean_throughput_and_ewma_share_one_inclusion_rule() {
        let mut obs = Observatory::new();
        obs.observe_span(0, "Sobel", 1000, 0.001); // 1e6 elem/s
                                                   // Zero-busy and zero-element spans carry no throughput signal:
                                                   // neither the EWMA nor the lifetime totals may count them.
        obs.observe_span(0, "Sobel", 5000, 0.0);
        obs.observe_span(0, "Sobel", 0, 0.5);
        let p = obs.profile(0).unwrap();
        assert_eq!(p.spans, 3, "raw span count still sees every call");
        assert_eq!(p.elements, 1000);
        assert_eq!(p.busy_s, 0.001);
        assert_eq!(p.kind_span_count("Sobel"), 1);
        assert_eq!(
            p.mean_throughput(),
            Some(1.0e6),
            "lifetime mean must agree with the EWMA on which spans count"
        );
        assert_eq!(p.ewma_throughput["Sobel"], 1.0e6);
    }

    #[test]
    fn unknown_device_ids_grow_the_roster_instead_of_panicking() {
        let mut obs = Observatory::new();
        assert_eq!(obs.device_count(), 3);
        obs.observe_span(5, "Sobel", 100, 0.001);
        obs.observe_mape(4, 0.1);
        obs.set_queue_depth(3, 2.0);
        obs.set_quarantined(5, true);
        assert_eq!(obs.device_count(), 6);
        assert_eq!(obs.profile(5).unwrap().name, "device5");
        assert_eq!(obs.profile(0).unwrap().name, "GPU");
        assert!(obs.profile(5).unwrap().quarantined);
        assert_eq!(obs.profile(4).unwrap().mape_observations, 1);
        assert!(obs.profile(9).is_none(), "reads never grow the roster");
    }

    #[test]
    fn ewma_converges_to_a_sustained_slowdown() {
        let mut obs = Observatory::new();
        obs.observe_span(0, "Fft", 1000, 0.001); // healthy: 1e6
        for _ in 0..24 {
            obs.observe_span(0, "Fft", 1000, 0.004); // 4x slower: 2.5e5
        }
        let t = obs.profile(0).unwrap().ewma_throughput["Fft"];
        let ratio = t / 1.0e6;
        assert!(
            (ratio - 0.25).abs() < 0.01,
            "EWMA should converge to the slowdown ratio, got {ratio}"
        );
    }

    #[test]
    fn mape_queue_and_quarantine_are_tracked() {
        let mut obs = Observatory::new();
        assert_eq!(obs.profile(2).unwrap().ewma_mape, None);
        obs.observe_mape(2, 0.10);
        obs.observe_mape(2, 0.20);
        let p = obs.profile(2).unwrap();
        let m = p.ewma_mape.unwrap();
        assert!((m - (0.25 * 0.20 + 0.75 * 0.10)).abs() < 1e-12);
        assert_eq!(p.mape_observations, 2);
        obs.set_queue_depth(1, 7.0);
        obs.set_quarantined(2, true);
        assert_eq!(obs.profile(1).unwrap().queue_depth, 7.0);
        assert!(obs.profile(2).unwrap().quarantined);
    }

    #[test]
    fn latency_histograms_stream_quantiles() {
        let mut obs = Observatory::new();
        for i in 1..=100 {
            obs.record_latency("serve.service_seconds", i as f64 * 1.0e-3);
        }
        let h = obs.histogram("serve.service_seconds").unwrap();
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.050..=0.050 * 1.25).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999).unwrap();
        assert!((0.100..=0.100 * 1.25).contains(&p999), "p999 {p999}");
    }

    #[test]
    fn merge_folds_histograms_profiles_and_metrics() {
        let mut a = Observatory::new();
        let mut b = Observatory::new();
        a.record_latency("serve.service_seconds", 0.010);
        b.record_latency("serve.service_seconds", 0.020);
        b.record_latency("serve.queue_wait_seconds", 0.001);
        a.observe_span(0, "Sobel", 100, 0.001);
        b.observe_span(0, "Sobel", 300, 0.001);
        b.set_quarantined(2, true);
        a.metrics_mut().add_counter("serve.completed", 1.0);
        b.metrics_mut().add_counter("serve.completed", 2.0);

        a.merge(&b);
        assert_eq!(a.histogram("serve.service_seconds").unwrap().total(), 2);
        assert_eq!(a.histogram("serve.queue_wait_seconds").unwrap().total(), 1);
        let p = a.profile(0).unwrap();
        assert_eq!(p.spans, 2);
        assert_eq!(p.elements, 400);
        assert_eq!(p.kind_span_count("Sobel"), 2);
        // Equal span weights: blend of 1e5 and 3e5.
        assert!((p.ewma_throughput["Sobel"] - 2.0e5).abs() < 1e-6);
        assert!(a.profile(2).unwrap().quarantined);
        assert_eq!(a.metrics().counter("serve.completed"), 3.0);
    }

    #[test]
    fn merge_preserves_one_sided_ewmas() {
        // `a` has throughput spans but no MAPE; `b` has MAPE but no
        // spans. The merge must keep both estimates intact instead of
        // discarding the populated side or averaging it toward zero.
        let mut a = Observatory::new();
        let mut b = Observatory::new();
        a.observe_span(2, "Sobel", 1000, 0.001);
        b.observe_mape(2, 0.30);
        a.merge(&b);
        let p = a.profile(2).unwrap();
        assert_eq!(p.ewma_throughput["Sobel"], 1.0e6);
        assert_eq!(p.ewma_mape, Some(0.30), "mape-only side must survive");
        assert_eq!(p.mape_observations, 1);

        // One side observed a kind the other never saw: its EWMA passes
        // through unweighted by the other side's unrelated spans.
        let mut c = Observatory::new();
        c.observe_span(2, "Fft", 4000, 0.001); // 4e6 elem/s, Fft only
        a.merge(&c);
        let p = a.profile(2).unwrap();
        assert_eq!(p.ewma_throughput["Fft"], 4.0e6);
        assert_eq!(p.ewma_throughput["Sobel"], 1.0e6, "unseen kind untouched");
    }

    #[test]
    fn merge_mape_weights_use_mape_observations_not_spans() {
        // `a`: many spans, one MAPE observation. `b`: no spans, three
        // MAPE observations. Span counts must not skew the MAPE blend.
        let mut a = Observatory::new();
        let mut b = Observatory::new();
        for _ in 0..9 {
            a.observe_span(2, "Sobel", 1000, 0.001);
        }
        a.observe_mape(2, 0.10);
        for _ in 0..3 {
            b.observe_mape(2, 0.40);
        }
        a.merge(&b);
        let m = a.profile(2).unwrap().ewma_mape.unwrap();
        let expected = (0.10 * 1.0 + 0.40 * 3.0) / 4.0;
        assert!(
            (m - expected).abs() < 1e-12,
            "got {m}, expected {expected} (1:3 by mape observations)"
        );
        assert_eq!(a.profile(2).unwrap().mape_observations, 4);
    }

    #[test]
    fn merge_grows_to_the_larger_roster() {
        let mut a = Observatory::new();
        let mut b = Observatory::new();
        b.observe_span(4, "Sobel", 100, 0.001);
        a.merge(&b);
        assert_eq!(a.device_count(), 5);
        assert_eq!(a.profile(4).unwrap().elements, 100);
        assert_eq!(a.profile(4).unwrap().name, "device4");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        Observatory::with_alpha(0.0);
    }
}
