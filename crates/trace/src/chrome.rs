//! Chrome trace-event JSON export, loadable in Perfetto or
//! `chrome://tracing`, plus a reader for round-trip validation.
//!
//! The file is the standard "JSON object format": a top-level object with
//! a `traceEvents` array. We emit:
//!
//! * `"M"` metadata events naming each device row (`thread_name`),
//! * `"X"` complete events for paired spans (compute, cast, transfer,
//!   partitioning, per-partition sampling overhead) with `ts`/`dur` in
//!   microseconds,
//! * `"i"` instant events for dispatches, steals, aggregations, and the
//!   fault vocabulary (fault, retry, redispatch, device down),
//! * `"C"` counter events for every gauge series.
//!
//! Device rows use `tid = DeviceId`; scheduler-side events (partitioning,
//! sampling) sit on an extra row after the devices.

use crate::event::{EventKind, Span};
use crate::json::{JsonError, JsonValue, ObjectBuilder};
use crate::sink::TraceData;

/// Process id used for every event (one traced process).
const PID: f64 = 1.0;

fn secs_to_us(t: f64) -> f64 {
    t * 1.0e6
}

fn event(ph: &str, name: &str, ts_us: f64, tid: usize) -> ObjectBuilder {
    ObjectBuilder::new()
        .field("ph", JsonValue::String(ph.into()))
        .field("name", JsonValue::String(name.into()))
        .field("ts", JsonValue::Number(ts_us))
        .field("pid", JsonValue::Number(PID))
        .field("tid", JsonValue::Number(tid as f64))
}

fn span_event(name: &str, cat: &str, span: &Span) -> JsonValue {
    let mut b = event("X", name, secs_to_us(span.start_s), span.device)
        .field("dur", JsonValue::Number(secs_to_us(span.duration_s())))
        .field("cat", JsonValue::String(cat.into()));
    if let Some(bytes) = span.bytes {
        b = b.field(
            "args",
            ObjectBuilder::new()
                .field("bytes", JsonValue::Number(bytes as f64))
                .build(),
        );
    }
    b.build()
}

/// Renders a finalized trace as a Chrome trace-event JSON document.
pub fn to_chrome_json(data: &TraceData) -> String {
    let scheduler_tid = data.device_names.len().max(3);
    let mut events: Vec<JsonValue> = Vec::new();

    // Row names.
    for (tid, name) in data.device_names.iter().enumerate() {
        events.push(
            event("M", "thread_name", 0.0, tid)
                .field(
                    "args",
                    ObjectBuilder::new()
                        .field("name", JsonValue::String(name.clone()))
                        .build(),
                )
                .build(),
        );
    }
    events.push(
        event("M", "thread_name", 0.0, scheduler_tid)
            .field(
                "args",
                ObjectBuilder::new()
                    .field("name", JsonValue::String("scheduler".into()))
                    .build(),
            )
            .build(),
    );

    // Paired spans.
    for span in data.compute_spans() {
        events.push(span_event(
            &format!("compute h{}", span.hlop),
            "compute",
            &span,
        ));
    }
    for span in data.cast_spans() {
        events.push(span_event(&format!("cast h{}", span.hlop), "cast", &span));
    }
    for span in data.transfer_spans() {
        events.push(span_event(
            &format!("transfer h{}", span.hlop),
            "transfer",
            &span,
        ));
    }
    for span in data.guard_verify_spans() {
        events.push(span_event(
            &format!("guard verify h{}", span.hlop),
            "guard",
            &span,
        ));
    }
    for span in data.guard_repair_spans() {
        events.push(span_event(
            &format!("guard repair h{}", span.hlop),
            "guard",
            &span,
        ));
    }

    // Scheduler-row spans and instants from the raw records.
    let mut partition_start: Option<f64> = None;
    for r in &data.records {
        match r.kind {
            EventKind::PartitionStart { .. } => partition_start = Some(r.time_s),
            EventKind::PartitionEnd { hlops } => {
                let start = partition_start.take().unwrap_or(r.time_s);
                events.push(
                    event("X", "partition", secs_to_us(start), scheduler_tid)
                        .field("dur", JsonValue::Number(secs_to_us(r.time_s - start)))
                        .field("cat", JsonValue::String("scheduler".into()))
                        .field(
                            "args",
                            ObjectBuilder::new()
                                .field("hlops", JsonValue::Number(hlops as f64))
                                .build(),
                        )
                        .build(),
                );
            }
            EventKind::SampleOverhead { hlop, cost_s } => {
                // The record is stamped at the *end* of the partition's
                // share of the serial overhead window.
                events.push(
                    event(
                        "X",
                        &format!("sample h{hlop}"),
                        secs_to_us(r.time_s - cost_s),
                        scheduler_tid,
                    )
                    .field("dur", JsonValue::Number(secs_to_us(cost_s)))
                    .field("cat", JsonValue::String("scheduler".into()))
                    .build(),
                );
            }
            EventKind::Dispatch { hlop, device } => {
                events.push(instant("dispatch", hlop, device, r.time_s));
            }
            EventKind::Steal { hlop, from, to } => {
                events.push(
                    event("i", &format!("steal h{hlop}"), secs_to_us(r.time_s), to)
                        .field("s", JsonValue::String("t".into()))
                        .field(
                            "args",
                            ObjectBuilder::new()
                                .field("from", JsonValue::Number(from as f64))
                                .field("to", JsonValue::Number(to as f64))
                                .build(),
                        )
                        .build(),
                );
            }
            EventKind::Aggregate { hlop, device } => {
                events.push(instant("aggregate", hlop, device, r.time_s));
            }
            EventKind::FaultInjected { hlop, device } => {
                events.push(instant("fault", hlop, device, r.time_s));
            }
            EventKind::Retry {
                hlop,
                device,
                attempt,
            } => {
                events.push(
                    event("i", &format!("retry h{hlop}"), secs_to_us(r.time_s), device)
                        .field("s", JsonValue::String("t".into()))
                        .field(
                            "args",
                            ObjectBuilder::new()
                                .field("attempt", JsonValue::Number(attempt as f64))
                                .build(),
                        )
                        .build(),
                );
            }
            EventKind::Redispatch { hlop, from, to } => {
                events.push(
                    event(
                        "i",
                        &format!("redispatch h{hlop}"),
                        secs_to_us(r.time_s),
                        to,
                    )
                    .field("s", JsonValue::String("t".into()))
                    .field(
                        "args",
                        ObjectBuilder::new()
                            .field("from", JsonValue::Number(from as f64))
                            .field("to", JsonValue::Number(to as f64))
                            .build(),
                    )
                    .build(),
                );
            }
            EventKind::DeviceDown { device } => {
                events.push(
                    event("i", "device down", secs_to_us(r.time_s), device)
                        .field("s", JsonValue::String("p".into()))
                        .build(),
                );
            }
            _ => {}
        }
    }

    // Gauge series as counter tracks.
    for (name, series) in data.metrics.gauges() {
        for &(t, v) in series {
            events.push(
                ObjectBuilder::new()
                    .field("ph", JsonValue::String("C".into()))
                    .field("name", JsonValue::String(name.into()))
                    .field("ts", JsonValue::Number(secs_to_us(t)))
                    .field("pid", JsonValue::Number(PID))
                    .field(
                        "args",
                        ObjectBuilder::new()
                            .field("value", JsonValue::Number(v))
                            .build(),
                    )
                    .build(),
            );
        }
    }

    let mut counters = ObjectBuilder::new();
    for (name, value) in data.metrics.counters() {
        counters = counters.field(name, JsonValue::Number(value));
    }

    ObjectBuilder::new()
        .field("displayTimeUnit", JsonValue::String("ms".into()))
        .field("traceEvents", JsonValue::Array(events))
        .field(
            "otherData",
            ObjectBuilder::new()
                .field("generator", JsonValue::String("shmt-trace".into()))
                .field("counters", counters.build())
                .build(),
        )
        .build()
        .to_string()
}

fn instant(verb: &str, hlop: usize, device: usize, time_s: f64) -> JsonValue {
    event("i", &format!("{verb} h{hlop}"), secs_to_us(time_s), device)
        .field("s", JsonValue::String("t".into()))
        .build()
}

/// One event read back from a Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase: `"X"`, `"i"`, `"C"`, `"M"`, …
    pub ph: String,
    /// Event name.
    pub name: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (complete events only).
    pub dur: Option<f64>,
    /// Thread (row) id.
    pub tid: usize,
    /// The raw `args` object, if present.
    pub args: Option<JsonValue>,
}

/// A parsed Chrome trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// All events in file order.
    pub events: Vec<ChromeEvent>,
    /// The document's `displayTimeUnit`, if present.
    pub display_time_unit: Option<String>,
}

impl ChromeTrace {
    /// Complete (`"X"`) events.
    pub fn complete_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.events.iter().filter(|e| e.ph == "X")
    }

    /// Instant (`"i"`) events.
    pub fn instant_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.events.iter().filter(|e| e.ph == "i")
    }

    /// Counter (`"C"`) events.
    pub fn counter_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.events.iter().filter(|e| e.ph == "C")
    }

    /// The row name declared for `tid`, if any.
    pub fn thread_name(&self, tid: usize) -> Option<&str> {
        self.events
            .iter()
            .find(|e| e.ph == "M" && e.name == "thread_name" && e.tid == tid)
            .and_then(|e| e.args.as_ref())
            .and_then(|a| a.get("name"))
            .and_then(JsonValue::as_str)
    }

    /// Sum of complete-event durations on `tid` whose name starts with
    /// `prefix`, in *seconds*.
    pub fn span_seconds(&self, tid: usize, prefix: &str) -> f64 {
        self.complete_events()
            .filter(|e| e.tid == tid && e.name.starts_with(prefix))
            .filter_map(|e| e.dur)
            .sum::<f64>()
            / 1.0e6
    }
}

/// Parses a Chrome trace-event JSON document produced by
/// [`to_chrome_json`] (or any compatible object-format file).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed JSON or a missing `traceEvents`
/// array.
pub fn from_chrome_json(text: &str) -> Result<ChromeTrace, JsonError> {
    let doc = JsonValue::parse(text)?;
    let events_json = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or(JsonError {
            message: "missing traceEvents array".into(),
            offset: 0,
        })?;
    let mut events = Vec::with_capacity(events_json.len());
    for e in events_json {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_owned();
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_owned();
        let ts = e.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let dur = e.get("dur").and_then(JsonValue::as_f64);
        let tid = e.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as usize;
        let args = e.get("args").cloned();
        events.push(ChromeEvent {
            ph,
            name,
            ts,
            dur,
            tid,
            args,
        });
    }
    Ok(ChromeTrace {
        events,
        display_time_unit: doc
            .get("displayTimeUnit")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{TraceRecorder, TraceSink};

    fn sample_trace() -> TraceData {
        let mut rec = TraceRecorder::new();
        rec.record(0.0, EventKind::PartitionStart { partitions: 4 });
        rec.record(0.0, EventKind::PartitionEnd { hlops: 4 });
        rec.record(
            0.001,
            EventKind::SampleOverhead {
                hlop: 0,
                cost_s: 0.001,
            },
        );
        rec.record(0.001, EventKind::Dispatch { hlop: 0, device: 0 });
        rec.record(0.001, EventKind::Dispatch { hlop: 1, device: 2 });
        rec.record(0.001, EventKind::CastStart { hlop: 1, device: 2 });
        rec.record(0.002, EventKind::CastEnd { hlop: 1, device: 2 });
        rec.record(
            0.002,
            EventKind::TransferStart {
                hlop: 1,
                device: 2,
                bytes: 4096,
            },
        );
        rec.record(
            0.003,
            EventKind::TransferEnd {
                hlop: 1,
                device: 2,
                bytes: 4096,
            },
        );
        rec.record(0.001, EventKind::ComputeStart { hlop: 0, device: 0 });
        rec.record(0.004, EventKind::ComputeEnd { hlop: 0, device: 0 });
        rec.record(0.003, EventKind::ComputeStart { hlop: 1, device: 2 });
        rec.record(0.005, EventKind::ComputeEnd { hlop: 1, device: 2 });
        rec.record(
            0.004,
            EventKind::Steal {
                hlop: 2,
                from: 2,
                to: 0,
            },
        );
        rec.record(0.005, EventKind::Aggregate { hlop: 1, device: 2 });
        rec.gauge("queue.GPU", 0.001, 2.0);
        rec.gauge("queue.GPU", 0.004, 1.0);
        rec.counter("bus.bytes", 4096.0);
        rec.finish()
    }

    #[test]
    fn export_round_trips_through_own_reader() {
        let data = sample_trace();
        let json = to_chrome_json(&data);
        let trace = from_chrome_json(&json).unwrap();
        assert_eq!(trace.display_time_unit.as_deref(), Some("ms"));
        assert_eq!(trace.thread_name(0), Some("GPU"));
        assert_eq!(trace.thread_name(2), Some("EdgeTPU"));
        assert_eq!(trace.thread_name(3), Some("scheduler"));
        // 2 computes + 1 cast + 1 transfer + 1 partition + 1 sample.
        assert_eq!(trace.complete_events().count(), 6);
        // 2 dispatches + 1 steal + 1 aggregate.
        assert_eq!(trace.instant_events().count(), 4);
        assert_eq!(trace.counter_events().count(), 2);
    }

    #[test]
    fn span_durations_survive_export() {
        let data = sample_trace();
        let trace = from_chrome_json(&to_chrome_json(&data)).unwrap();
        let gpu_busy = trace.span_seconds(0, "compute");
        assert!((gpu_busy - 0.003).abs() < 1e-12, "gpu busy {gpu_busy}");
        let tpu_busy = trace.span_seconds(2, "compute");
        assert!((tpu_busy - 0.002).abs() < 1e-12);
    }

    #[test]
    fn transfer_bytes_ride_in_args() {
        let data = sample_trace();
        let trace = from_chrome_json(&to_chrome_json(&data)).unwrap();
        let xfer = trace
            .complete_events()
            .find(|e| e.name.starts_with("transfer"))
            .expect("transfer event");
        let bytes = xfer.args.as_ref().unwrap().get("bytes").unwrap().as_f64();
        assert_eq!(bytes, Some(4096.0));
    }

    #[test]
    fn steal_instant_carries_from_and_to() {
        let data = sample_trace();
        let trace = from_chrome_json(&to_chrome_json(&data)).unwrap();
        let steal = trace
            .instant_events()
            .find(|e| e.name.starts_with("steal"))
            .unwrap();
        let args = steal.args.as_ref().unwrap();
        assert_eq!(args.get("from").unwrap().as_f64(), Some(2.0));
        assert_eq!(args.get("to").unwrap().as_f64(), Some(0.0));
        assert_eq!(steal.tid, 0, "steal instant sits on the thief's row");
    }

    #[test]
    fn fault_events_export_as_instants() {
        let mut rec = TraceRecorder::new();
        rec.record(0.001, EventKind::FaultInjected { hlop: 3, device: 2 });
        rec.record(
            0.002,
            EventKind::Retry {
                hlop: 3,
                device: 2,
                attempt: 2,
            },
        );
        rec.record(0.003, EventKind::DeviceDown { device: 0 });
        rec.record(
            0.003,
            EventKind::Redispatch {
                hlop: 5,
                from: 0,
                to: 1,
            },
        );
        let trace = from_chrome_json(&to_chrome_json(&rec.finish())).unwrap();
        assert_eq!(trace.instant_events().count(), 4);
        let retry = trace
            .instant_events()
            .find(|e| e.name.starts_with("retry"))
            .unwrap();
        assert_eq!(
            retry
                .args
                .as_ref()
                .unwrap()
                .get("attempt")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        let redis = trace
            .instant_events()
            .find(|e| e.name.starts_with("redispatch"))
            .unwrap();
        assert_eq!(
            redis.tid, 1,
            "redispatch sits on the surviving device's row"
        );
        assert_eq!(
            redis.args.as_ref().unwrap().get("from").unwrap().as_f64(),
            Some(0.0)
        );
        let down = trace
            .instant_events()
            .find(|e| e.name == "device down")
            .unwrap();
        assert_eq!(down.tid, 0);
    }

    #[test]
    fn reader_rejects_non_trace_documents() {
        assert!(from_chrome_json("[]").is_err());
        assert!(from_chrome_json("{\"nope\":1}").is_err());
        assert!(from_chrome_json("not json").is_err());
    }
}
