//! Counters, gauge time series, and a fixed-bound histogram.

use std::collections::BTreeMap;

/// A registry of run-level metrics.
///
/// *Counters* are monotonic sums ("bus.bytes", "steals"); *gauges* are
/// timestamped series sampled at event boundaries ("queue.GPU" depth over
/// virtual time, "bus.busy_s" occupancy). `BTreeMap` keeps iteration
/// order deterministic, so exports are stable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, Vec<(f64, f64)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add_counter(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Appends a `(time_s, value)` sample to the named gauge series.
    pub fn push_gauge(&mut self, name: &str, time_s: f64, value: f64) {
        self.gauges
            .entry(name.to_owned())
            .or_default()
            .push((time_s, value));
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// The samples of a gauge series, in recording order.
    pub fn gauge_series(&self, name: &str) -> &[(f64, f64)] {
        self.gauges.get(name).map_or(&[], Vec::as_slice)
    }

    /// The peak value a gauge series reached, if it has any samples.
    pub fn gauge_peak(&self, name: &str) -> Option<f64> {
        self.gauge_series(name)
            .iter()
            .map(|&(_, v)| v)
            .reduce(f64::max)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauge series in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &[(f64, f64)])> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// `true` when no counter or gauge was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Merges another registry into this one (counters add, gauge series
    /// concatenate).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.add_counter(name, value);
        }
        for (name, series) in other.gauges() {
            self.gauges
                .entry(name.to_owned())
                .or_default()
                .extend_from_slice(series);
        }
    }
}

/// A histogram over fixed upper bounds, plus an overflow bucket.
///
/// Used for utilization and span-duration distributions in the text
/// summary; `bucket_counts()[i]` counts samples `<= bounds[i]` (first
/// matching bound wins), and the final entry counts overflows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Ten equal-width buckets over `[0, 1]` — utilization fractions.
    pub fn utilization() -> Self {
        Histogram::new(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("bus.bytes"), 0.0);
        m.add_counter("bus.bytes", 100.0);
        m.add_counter("bus.bytes", 24.0);
        assert_eq!(m.counter("bus.bytes"), 124.0);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_keep_order_and_peak() {
        let mut m = MetricsRegistry::new();
        m.push_gauge("queue.GPU", 0.0, 3.0);
        m.push_gauge("queue.GPU", 0.5, 5.0);
        m.push_gauge("queue.GPU", 1.0, 1.0);
        assert_eq!(m.gauge_series("queue.GPU").len(), 3);
        assert_eq!(m.gauge_series("queue.GPU")[1], (0.5, 5.0));
        assert_eq!(m.gauge_peak("queue.GPU"), Some(5.0));
        assert_eq!(m.gauge_peak("missing"), None);
    }

    #[test]
    fn merge_adds_counters_and_extends_gauges() {
        let mut a = MetricsRegistry::new();
        a.add_counter("steals", 2.0);
        a.push_gauge("queue.CPU", 0.0, 1.0);
        let mut b = MetricsRegistry::new();
        b.add_counter("steals", 3.0);
        b.push_gauge("queue.CPU", 1.0, 2.0);
        a.merge(&b);
        assert_eq!(a.counter("steals"), 5.0);
        assert_eq!(a.gauge_series("queue.CPU").len(), 2);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(1.0); // inclusive upper bound
        h.record(1.5);
        h.record(9.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unordered_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }
}
