//! Counters, gauge time series, and a fixed-bound histogram.

use std::collections::BTreeMap;

/// One gauge's stored samples plus the decimation state that keeps the
/// series bounded: only every `stride`-th observation is stored, and
/// when the store reaches the registry cap every other retained sample
/// is dropped and the stride doubles. The kept samples are always the
/// observations at indices `0, stride, 2*stride, ...` — deterministic
/// regardless of when the cap was hit.
#[derive(Debug, Clone, PartialEq)]
struct GaugeSeries {
    samples: Vec<(f64, f64)>,
    stride: u64,
    seen: u64,
}

impl Default for GaugeSeries {
    fn default() -> Self {
        GaugeSeries {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }
}

impl GaugeSeries {
    fn push(&mut self, time_s: f64, value: f64, cap: Option<usize>) {
        if self.seen % self.stride == 0 {
            self.samples.push((time_s, value));
            if let Some(cap) = cap {
                if self.samples.len() >= cap {
                    let mut keep = 0;
                    let mut i = 0;
                    while i < self.samples.len() {
                        self.samples[keep] = self.samples[i];
                        keep += 1;
                        i += 2;
                    }
                    self.samples.truncate(keep);
                    self.stride *= 2;
                }
            }
        }
        self.seen += 1;
    }
}

/// A registry of run-level metrics.
///
/// *Counters* are monotonic sums ("bus.bytes", "steals"); *gauges* are
/// timestamped series sampled at event boundaries ("queue.GPU" depth over
/// virtual time, "bus.busy_s" occupancy). `BTreeMap` keeps iteration
/// order deterministic, so exports are stable across runs.
///
/// By default gauge series grow without bound (one sample per event).
/// [`MetricsRegistry::with_gauge_cap`] bounds each series: once a series
/// reaches the cap it is stride-decimated (every other sample dropped,
/// sampling stride doubled), so a 10⁵-event run holds at most `cap`
/// samples per gauge while still spanning the whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, GaugeSeries>,
    gauge_cap: Option<usize>,
}

impl MetricsRegistry {
    /// Creates an empty registry with unbounded gauge series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry whose gauge series each hold at most
    /// `cap` samples (stride-decimated once the cap is reached).
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2` — a one-slot series cannot decimate.
    pub fn with_gauge_cap(cap: usize) -> Self {
        assert!(cap >= 2, "gauge cap must be at least 2");
        MetricsRegistry {
            gauge_cap: Some(cap),
            ..Self::default()
        }
    }

    /// The configured per-series gauge cap, if any.
    pub fn gauge_cap(&self) -> Option<usize> {
        self.gauge_cap
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add_counter(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Appends a `(time_s, value)` sample to the named gauge series.
    ///
    /// With a gauge cap configured the sample may be decimated away;
    /// [`MetricsRegistry::gauge_observed_count`] still counts it.
    pub fn push_gauge(&mut self, name: &str, time_s: f64, value: f64) {
        let cap = self.gauge_cap;
        self.gauges
            .entry(name.to_owned())
            .or_default()
            .push(time_s, value, cap);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// The stored samples of a gauge series, in recording order.
    pub fn gauge_series(&self, name: &str) -> &[(f64, f64)] {
        self.gauges.get(name).map_or(&[], |g| g.samples.as_slice())
    }

    /// Number of samples currently *stored* for a gauge (after any
    /// decimation). Never exceeds the configured cap.
    pub fn gauge_sample_count(&self, name: &str) -> usize {
        self.gauges.get(name).map_or(0, |g| g.samples.len())
    }

    /// Number of samples ever *observed* for a gauge, including any the
    /// decimation dropped.
    pub fn gauge_observed_count(&self, name: &str) -> u64 {
        self.gauges.get(name).map_or(0, |g| g.seen)
    }

    /// The peak value a gauge series reached, if it has any samples.
    pub fn gauge_peak(&self, name: &str) -> Option<f64> {
        self.gauge_series(name)
            .iter()
            .map(|&(_, v)| v)
            .reduce(f64::max)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauge series in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &[(f64, f64)])> {
        self.gauges
            .iter()
            .map(|(k, v)| (k.as_str(), v.samples.as_slice()))
    }

    /// `true` when no counter or gauge was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Merges another registry into this one (counters add; the other's
    /// stored gauge samples are re-recorded through this registry's own
    /// cap/decimation).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.add_counter(name, value);
        }
        for (name, series) in other.gauges() {
            for &(t, v) in series {
                self.push_gauge(name, t, v);
            }
        }
    }
}

/// A histogram over fixed upper bounds, plus an overflow bucket.
///
/// `bucket_counts()[i]` counts samples `<= bounds[i]` (first matching
/// bound wins), and the final entry counts overflows. The histogram is
/// *streaming*: it also tracks the running sum and the exact maximum, so
/// mean and nearest-rank quantiles (to bucket resolution) come without
/// storing samples. Two histograms with identical bounds can be folded
/// together with [`Histogram::merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ten equal-width buckets over `[0, 1]` — utilization fractions.
    pub fn utilization() -> Self {
        Histogram::new(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    }

    /// Log-spaced buckets for latencies: 1 µs to ~150 s at 1.25× growth
    /// (~85 buckets). Quantiles read from this histogram overestimate
    /// the exact nearest-rank value by at most one bucket — a factor of
    /// 1.25 — which is the resolution the serve layer needs.
    pub fn latency_log() -> Self {
        let mut bounds = Vec::new();
        let mut b = 1.0e-6;
        while b < 150.0 {
            bounds.push(b);
            b *= 1.25;
        }
        Histogram::new(&bounds)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        // partition_point finds the first bound with `value <= bound`,
        // matching the linear first-match semantics in O(log n).
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Folds another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms with
    /// different resolutions would silently corrupt quantiles.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean of the recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// The exact largest sample recorded, if any.
    pub fn max_value(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Nearest-rank quantile at bucket resolution: the upper bound of
    /// the bucket holding the `ceil(q * total)`-th sample (the exact
    /// observed max for the overflow bucket). `None` when empty.
    ///
    /// The result never underestimates the exact nearest-rank value and
    /// overestimates it by at most one bucket width.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    // A bucket's representative is its upper bound, but
                    // never past the exact observed maximum.
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                });
            }
        }
        unreachable!("cumulative counts must reach total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("bus.bytes"), 0.0);
        m.add_counter("bus.bytes", 100.0);
        m.add_counter("bus.bytes", 24.0);
        assert_eq!(m.counter("bus.bytes"), 124.0);
        assert!(!m.is_empty());
    }

    #[test]
    fn gauges_keep_order_and_peak() {
        let mut m = MetricsRegistry::new();
        m.push_gauge("queue.GPU", 0.0, 3.0);
        m.push_gauge("queue.GPU", 0.5, 5.0);
        m.push_gauge("queue.GPU", 1.0, 1.0);
        assert_eq!(m.gauge_series("queue.GPU").len(), 3);
        assert_eq!(m.gauge_series("queue.GPU")[1], (0.5, 5.0));
        assert_eq!(m.gauge_peak("queue.GPU"), Some(5.0));
        assert_eq!(m.gauge_peak("missing"), None);
    }

    #[test]
    fn merge_adds_counters_and_extends_gauges() {
        let mut a = MetricsRegistry::new();
        a.add_counter("steals", 2.0);
        a.push_gauge("queue.CPU", 0.0, 1.0);
        let mut b = MetricsRegistry::new();
        b.add_counter("steals", 3.0);
        b.push_gauge("queue.CPU", 1.0, 2.0);
        a.merge(&b);
        assert_eq!(a.counter("steals"), 5.0);
        assert_eq!(a.gauge_series("queue.CPU").len(), 2);
    }

    #[test]
    fn gauge_cap_decimates_deterministically() {
        let mut m = MetricsRegistry::with_gauge_cap(64);
        for i in 0..100_000u64 {
            m.push_gauge("queue.GPU", i as f64, i as f64);
        }
        let stored = m.gauge_sample_count("queue.GPU");
        assert!(stored <= 64, "cap violated: {stored}");
        assert!(stored >= 16, "over-decimated: {stored}");
        assert_eq!(m.gauge_observed_count("queue.GPU"), 100_000);
        // Stored samples are the observations at multiples of a single
        // power-of-two stride, so timestamps are evenly spaced.
        let s = m.gauge_series("queue.GPU");
        let stride = s[1].0 - s[0].0;
        assert!(stride >= 1.0 && (stride.log2().fract()).abs() < 1e-12);
        for w in s.windows(2) {
            assert_eq!(w[1].0 - w[0].0, stride);
        }
        assert_eq!(s[0], (0.0, 0.0), "first observation always retained");
    }

    #[test]
    fn uncapped_registry_matches_old_behavior() {
        let mut m = MetricsRegistry::new();
        for i in 0..10_000u64 {
            m.push_gauge("g", i as f64, 1.0);
        }
        assert_eq!(m.gauge_sample_count("g"), 10_000);
        assert_eq!(m.gauge_observed_count("g"), 10_000);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn gauge_cap_rejects_tiny_caps() {
        MetricsRegistry::with_gauge_cap(1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(1.0); // inclusive upper bound
        h.record(1.5);
        h.record(9.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.max_value(), Some(9.0));
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn record_matches_linear_scan_semantics() {
        // partition_point must agree with the old first-match scan,
        // including the inclusive upper bound.
        let bounds = [0.5, 1.0, 2.0, 4.0];
        for value in [0.0, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0] {
            let mut h = Histogram::new(&bounds);
            h.record(value);
            let linear = bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(bounds.len());
            assert_eq!(h.bucket_counts()[linear], 1, "value {value}");
        }
    }

    #[test]
    fn merge_folds_counts_sum_and_max() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        a.record(3.0);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.record(1.5);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1, 1]);
        assert_eq!(a.sum(), 5.0);
        assert_eq!(a.max_value(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..50 {
            h.record(0.5); // bucket <=1.0
        }
        for _ in 0..45 {
            h.record(1.5); // bucket <=2.0
        }
        for _ in 0..5 {
            h.record(8.0); // overflow
        }
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.95), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(8.0), "overflow reports exact max");
        assert_eq!(h.quantile(1.0), Some(8.0));
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let mut h = Histogram::latency_log();
        h.record(3.0e-3);
        assert_eq!(h.quantile(0.5), Some(3.0e-3));
    }

    #[test]
    fn latency_log_spans_microseconds_to_minutes() {
        let h = Histogram::latency_log();
        assert!(h.bounds().first().copied().unwrap() <= 1.0e-6);
        assert!(h.bounds().last().copied().unwrap() >= 100.0);
        assert!(h.bounds().len() < 120, "bucket count stays small");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unordered_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }
}
