//! Hand-rolled OpenMetrics / Prometheus text exporter and parser.
//!
//! Like [`crate::chrome`], this module speaks an external tool format
//! without any dependency: [`render`] turns an [`Observatory`] into the
//! OpenMetrics text exposition format (`# TYPE` lines, `_total`
//! counters, `_bucket{le="..."}` histograms, labeled device gauges,
//! terminated by `# EOF`), and [`Exposition::parse`] reads that text
//! back. Output is deterministic — metric families render in sorted
//! name order with a stable number format — and round-trips exactly:
//! `parse(render(x)).render() == render(x)` byte for byte.

use std::fmt;

use crate::metrics::Histogram;
use crate::observatory::Observatory;

/// A parse failure: the offending line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMetricsError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for OpenMetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "openmetrics parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for OpenMetricsError {}

/// One sample line: a metric name, its labels, and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (family name plus any `_total`/`_bucket` suffix).
    pub name: String,
    /// Label pairs in render order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// One metric family: a `# TYPE` declaration and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name as declared in the `# TYPE` line.
    pub name: String,
    /// Metric kind: `counter`, `gauge`, `histogram`, or `untyped`.
    pub kind: String,
    /// Samples in render order.
    pub samples: Vec<Sample>,
}

/// A full exposition: ordered metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families in render order.
    pub families: Vec<Family>,
}

/// Maps a metric name to the OpenMetrics charset: `[a-zA-Z0-9_:]`,
/// everything else becomes `_`, with a leading `_` if the name would
/// start with a digit.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Stable value formatting: non-finite values render as `0` (matching
/// the crate's JSON writer), everything else uses Rust's shortest
/// round-trip float representation, so `parse ∘ render` is exact.
pub fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl Sample {
    fn plain(name: impl Into<String>, value: f64) -> Self {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            value,
        }
    }

    fn labeled(name: impl Into<String>, labels: &[(&str, &str)], value: f64) -> Self {
        Sample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
            value,
        }
    }
}

impl Exposition {
    /// Builds the exposition for an observatory: its registry counters
    /// and gauges, every latency histogram, and the per-device online
    /// profiles as labeled families.
    pub fn from_observatory(obs: &Observatory) -> Self {
        let mut families = Vec::new();

        for (name, value) in obs.metrics().counters() {
            let base = sanitize_name(name);
            families.push(Family {
                name: base.clone(),
                kind: "counter".to_owned(),
                samples: vec![Sample::plain(format!("{base}_total"), value)],
            });
        }

        for (name, series) in obs.metrics().gauges() {
            if let Some(&(_, last)) = series.last() {
                let base = sanitize_name(name);
                families.push(Family {
                    name: base.clone(),
                    kind: "gauge".to_owned(),
                    samples: vec![Sample::plain(base, last)],
                });
            }
        }

        for (name, hist) in obs.histograms() {
            families.push(histogram_family(&sanitize_name(name), hist));
        }

        families.extend(device_families(obs));
        Exposition { families }
    }

    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The value of the sample with this exact name and label set, if
    /// present anywhere in the exposition.
    pub fn sample_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.families
            .iter()
            .flat_map(|f| &f.samples)
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }

    /// Renders the OpenMetrics text format, terminated by `# EOF`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str("# TYPE ");
            out.push_str(&fam.name);
            out.push(' ');
            out.push_str(&fam.kind);
            out.push('\n');
            for s in &fam.samples {
                out.push_str(&s.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(k);
                        out.push_str("=\"");
                        out.push_str(&escape_label(v));
                        out.push('"');
                    }
                    out.push('}');
                }
                out.push(' ');
                out.push_str(&fmt_value(s.value));
                out.push('\n');
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Parses OpenMetrics text (as produced by [`Exposition::render`];
    /// `# HELP` lines and unknown comments are tolerated and dropped).
    pub fn parse(text: &str) -> Result<Exposition, OpenMetricsError> {
        let mut families: Vec<Family> = Vec::new();
        let err = |line: usize, message: &str| OpenMetricsError {
            line,
            message: message.to_owned(),
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim_start();
                if rest == "EOF" {
                    break;
                }
                if let Some(decl) = rest.strip_prefix("TYPE ") {
                    let mut parts = decl.split_whitespace();
                    let name = parts
                        .next()
                        .ok_or_else(|| err(lineno, "TYPE line missing metric name"))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| err(lineno, "TYPE line missing metric kind"))?;
                    families.push(Family {
                        name: name.to_owned(),
                        kind: kind.to_owned(),
                        samples: Vec::new(),
                    });
                }
                continue; // HELP / UNIT / arbitrary comments
            }
            let sample = parse_sample(line).map_err(|m| err(lineno, &m))?;
            match families.last_mut() {
                Some(fam) if sample.name.starts_with(fam.name.as_str()) => {
                    fam.samples.push(sample);
                }
                _ => families.push(Family {
                    name: sample.name.clone(),
                    kind: "untyped".to_owned(),
                    samples: vec![sample],
                }),
            }
        }
        Ok(Exposition { families })
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, labels, value_part) = if let Some(brace) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| "unterminated label set".to_owned())?;
        (
            &line[..brace],
            parse_labels(&line[brace + 1..close])?,
            line[close + 1..].trim(),
        )
    } else {
        let sp = line
            .find(' ')
            .ok_or_else(|| "sample line has no value".to_owned())?;
        (&line[..sp], Vec::new(), line[sp..].trim())
    };
    let value: f64 = value_part
        .parse()
        .map_err(|_| format!("bad sample value {value_part:?}"))?;
    Ok(Sample {
        name: name.trim().to_owned(),
        labels,
        value,
    })
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} missing opening quote"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("label {key:?} missing closing quote"));
        }
        labels.push((key, value));
    }
    Ok(labels)
}

/// Renders one histogram as an OpenMetrics histogram family:
/// cumulative `_bucket{le=...}` samples for every non-empty bucket,
/// the mandatory `le="+Inf"` bucket, `_sum`, and `_count`.
fn histogram_family(base: &str, hist: &Histogram) -> Family {
    let mut samples = Vec::new();
    let mut cum = 0u64;
    for (i, &count) in hist.bucket_counts().iter().enumerate() {
        cum += count;
        if i < hist.bounds().len() && count > 0 {
            samples.push(Sample::labeled(
                format!("{base}_bucket"),
                &[("le", &fmt_value(hist.bounds()[i]))],
                cum as f64,
            ));
        }
    }
    samples.push(Sample::labeled(
        format!("{base}_bucket"),
        &[("le", "+Inf")],
        hist.total() as f64,
    ));
    samples.push(Sample::plain(format!("{base}_sum"), hist.sum()));
    samples.push(Sample::plain(format!("{base}_count"), hist.total() as f64));
    Family {
        name: base.to_owned(),
        kind: "histogram".to_owned(),
        samples,
    }
}

/// Per-device profile families, labeled by device name (and HLOP kind
/// for throughput EWMAs).
fn device_families(obs: &Observatory) -> Vec<Family> {
    let mut spans = Vec::new();
    let mut busy = Vec::new();
    let mut elements = Vec::new();
    let mut throughput = Vec::new();
    let mut mape = Vec::new();
    let mut queue = Vec::new();
    let mut quarantined = Vec::new();
    for p in obs.profiles() {
        let d: &[(&str, &str)] = &[("device", p.name.as_str())];
        spans.push(Sample::labeled(
            "shmt_device_spans_total",
            d,
            p.spans as f64,
        ));
        busy.push(Sample::labeled(
            "shmt_device_busy_virtual_seconds_total",
            d,
            p.busy_s,
        ));
        elements.push(Sample::labeled(
            "shmt_device_elements_total",
            d,
            p.elements as f64,
        ));
        for (kind, &t) in &p.ewma_throughput {
            throughput.push(Sample::labeled(
                "shmt_device_throughput_ewma_elements_per_second",
                &[("device", p.name.as_str()), ("kind", kind.as_str())],
                t,
            ));
        }
        if let Some(m) = p.ewma_mape {
            mape.push(Sample::labeled("shmt_device_mape_ewma", d, m));
        }
        queue.push(Sample::labeled("shmt_device_queue_depth", d, p.queue_depth));
        quarantined.push(Sample::labeled(
            "shmt_device_quarantined",
            d,
            if p.quarantined { 1.0 } else { 0.0 },
        ));
    }
    let fam = |name: &str, kind: &str, samples: Vec<Sample>| Family {
        name: name.to_owned(),
        kind: kind.to_owned(),
        samples,
    };
    let mut families = vec![
        fam("shmt_device_spans", "counter", spans),
        fam("shmt_device_busy_virtual_seconds", "counter", busy),
        fam("shmt_device_elements", "counter", elements),
    ];
    if !throughput.is_empty() {
        families.push(fam(
            "shmt_device_throughput_ewma_elements_per_second",
            "gauge",
            throughput,
        ));
    }
    if !mape.is_empty() {
        families.push(fam("shmt_device_mape_ewma", "gauge", mape));
    }
    families.push(fam("shmt_device_queue_depth", "gauge", queue));
    families.push(fam("shmt_device_quarantined", "gauge", quarantined));
    families
}

/// Renders an observatory in the OpenMetrics text format.
pub fn render(obs: &Observatory) -> String {
    Exposition::from_observatory(obs).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Observatory {
        let mut obs = Observatory::new();
        obs.metrics_mut().add_counter("serve.completed", 42.0);
        obs.metrics_mut().add_counter("health.strike", 3.0);
        obs.metrics_mut().push_gauge("serve.queue_depth", 0.0, 2.0);
        obs.metrics_mut().push_gauge("serve.queue_depth", 1.0, 5.0);
        for i in 1..=50 {
            obs.record_latency("serve.service_seconds", i as f64 * 1.0e-3);
        }
        obs.observe_span(0, "Sobel", 65536, 0.010);
        obs.observe_span(2, "Sobel", 65536, 0.002);
        obs.observe_mape(2, 0.07);
        obs.set_queue_depth(0, 3.0);
        obs.set_quarantined(2, true);
        obs
    }

    #[test]
    fn render_is_deterministic_and_terminated() {
        let obs = populated();
        let a = render(&obs);
        let b = render(&obs);
        assert_eq!(a, b);
        assert!(a.ends_with("# EOF\n"));
        assert!(a.contains("# TYPE serve_completed counter"));
        assert!(a.contains("serve_completed_total 42"));
        assert!(
            a.contains("serve_queue_depth 5"),
            "gauge renders last value"
        );
        assert!(a.contains("# TYPE serve_service_seconds histogram"));
        assert!(a.contains("serve_service_seconds_count 50"));
        assert!(a.contains("le=\"+Inf\"} 50"));
        assert!(a.contains("shmt_device_quarantined{device=\"EdgeTPU\"} 1"));
        assert!(a.contains(
            "shmt_device_throughput_ewma_elements_per_second{device=\"GPU\",kind=\"Sobel\"}"
        ));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let text = render(&populated());
        let parsed = Exposition::parse(&text).expect("own output must parse");
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parsed_values_match_the_source() {
        let obs = populated();
        let parsed = Exposition::parse(&render(&obs)).unwrap();
        assert_eq!(
            parsed.sample_value("serve_completed_total", &[]),
            Some(42.0)
        );
        assert_eq!(
            parsed.sample_value("shmt_device_spans_total", &[("device", "GPU")]),
            Some(1.0)
        );
        assert_eq!(
            parsed.sample_value("serve_service_seconds_count", &[]),
            Some(50.0)
        );
        let sum = parsed
            .sample_value("serve_service_seconds_sum", &[])
            .unwrap();
        let h = obs.histogram("serve.service_seconds").unwrap();
        assert_eq!(sum, h.sum(), "float values survive exactly");
        assert_eq!(parsed.family("serve_completed").unwrap().kind, "counter");
        assert_eq!(
            parsed.family("serve_service_seconds").unwrap().kind,
            "histogram"
        );
    }

    #[test]
    fn label_escaping_round_trips() {
        let fam = Family {
            name: "weird".to_owned(),
            kind: "gauge".to_owned(),
            samples: vec![Sample::labeled("weird", &[("k", "a\"b\\c\nd")], 1.0)],
        };
        let exp = Exposition {
            families: vec![fam],
        };
        let text = exp.render();
        let parsed = Exposition::parse(&text).unwrap();
        assert_eq!(parsed, exp);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("serve.queue_wait_s"), "serve_queue_wait_s");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn parse_rejects_garbage_values() {
        let err = Exposition::parse("# TYPE x gauge\nx nope\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad sample value"));
    }

    #[test]
    fn empty_observatory_still_renders_device_roster() {
        let text = render(&Observatory::new());
        let parsed = Exposition::parse(&text).unwrap();
        assert_eq!(
            parsed.sample_value("shmt_device_spans_total", &[("device", "CPU")]),
            Some(0.0)
        );
        assert_eq!(parsed.render(), text);
    }
}
