//! Capture interfaces: where trace records go.

use crate::event::{EventKind, Span, TraceRecord};
use crate::metrics::MetricsRegistry;

/// The capture interface the runtime and simulator thread through every
/// instrumented hook.
///
/// There is exactly one code path: the untraced entry points call the
/// traced ones with a [`NullSink`], so a traced run and an untraced run
/// execute identical logic and produce bit-identical results — the sink
/// only *observes*. Implementations that don't care about metrics keep
/// the default no-op `counter`/`gauge`.
pub trait TraceSink {
    /// `false` when records are discarded — callers may skip building
    /// expensive event payloads.
    fn enabled(&self) -> bool {
        true
    }

    /// Captures one event at virtual time `time_s`.
    fn record(&mut self, time_s: f64, kind: EventKind);

    /// Adds `delta` to a monotonic counter.
    fn counter(&mut self, _name: &str, _delta: f64) {}

    /// Samples a gauge series at virtual time `time_s`.
    fn gauge(&mut self, _name: &str, _time_s: f64, _value: f64) {}
}

/// The zero-cost default sink: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _time_s: f64, _kind: EventKind) {}
}

/// A bounded sink that keeps only the most recent `capacity` records —
/// for long experiment sweeps where only the tail matters.
#[derive(Debug, Clone, PartialEq)]
pub struct RingBufferSink {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Next write position once the buffer is full.
    head: usize,
    dropped: usize,
}

impl RingBufferSink {
    /// Creates a ring keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBufferSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            // `head` points at the oldest record once wrapped.
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, time_s: f64, kind: EventKind) {
        let rec = TraceRecord { time_s, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// The full-fidelity sink: collects every record plus all metrics, and
/// finalizes into a [`TraceData`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    records: Vec<TraceRecord>,
    metrics: MetricsRegistry,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records captured so far, in arrival order.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finalizes the capture: records are sorted by virtual time (stably,
    /// so simultaneous events keep their emission order) and packaged
    /// with the metrics.
    pub fn finish(mut self) -> TraceData {
        self.records.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        TraceData {
            records: self.records,
            metrics: self.metrics,
            device_names: crate::DEFAULT_DEVICE_NAMES
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        }
    }
}

impl TraceSink for TraceRecorder {
    fn record(&mut self, time_s: f64, kind: EventKind) {
        self.records.push(TraceRecord { time_s, kind });
    }

    fn counter(&mut self, name: &str, delta: f64) {
        self.metrics.add_counter(name, delta);
    }

    fn gauge(&mut self, name: &str, time_s: f64, value: f64) {
        self.metrics.push_gauge(name, time_s, value);
    }
}

/// A finalized trace: time-ordered records, metrics, device names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Events in ascending virtual time.
    pub records: Vec<TraceRecord>,
    /// Counters and gauge series captured alongside the events.
    pub metrics: MetricsRegistry,
    /// Display names indexed by [`crate::DeviceId`].
    pub device_names: Vec<String>,
}

impl TraceData {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Counts records of the named kind (see [`EventKind::name`]).
    pub fn count(&self, kind_name: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind.name() == kind_name)
            .count()
    }

    /// Number of distinct event kinds present.
    pub fn distinct_kinds(&self) -> usize {
        let mut names: Vec<&str> = self.records.iter().map(|r| r.kind.name()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// `true` when timestamps never decrease.
    pub fn is_monotonic(&self) -> bool {
        self.records.windows(2).all(|w| w[0].time_s <= w[1].time_s)
    }

    /// Number of steal events.
    pub fn steals(&self) -> usize {
        self.count("Steal")
    }

    /// Pairs `ComputeStart`/`ComputeEnd` into spans, in start order.
    pub fn compute_spans(&self) -> Vec<Span> {
        self.pair_spans(
            |k| match *k {
                EventKind::ComputeStart { hlop, device } => Some((hlop, device, None)),
                _ => None,
            },
            |k| match *k {
                EventKind::ComputeEnd { hlop, device } => Some((hlop, device)),
                _ => None,
            },
        )
    }

    /// Pairs `CastStart`/`CastEnd` into spans, in start order.
    pub fn cast_spans(&self) -> Vec<Span> {
        self.pair_spans(
            |k| match *k {
                EventKind::CastStart { hlop, device } => Some((hlop, device, None)),
                _ => None,
            },
            |k| match *k {
                EventKind::CastEnd { hlop, device } => Some((hlop, device)),
                _ => None,
            },
        )
    }

    /// Pairs `TransferStart`/`TransferEnd` into spans, in start order.
    pub fn transfer_spans(&self) -> Vec<Span> {
        self.pair_spans(
            |k| match *k {
                EventKind::TransferStart {
                    hlop,
                    device,
                    bytes,
                } => Some((hlop, device, Some(bytes))),
                _ => None,
            },
            |k| match *k {
                EventKind::TransferEnd { hlop, device, .. } => Some((hlop, device)),
                _ => None,
            },
        )
    }

    /// Pairs `GuardVerifyStart`/`GuardVerifyEnd` into spans, in start
    /// order.
    pub fn guard_verify_spans(&self) -> Vec<Span> {
        self.pair_spans(
            |k| match *k {
                EventKind::GuardVerifyStart { hlop, device } => Some((hlop, device, None)),
                _ => None,
            },
            |k| match *k {
                EventKind::GuardVerifyEnd { hlop, device } => Some((hlop, device)),
                _ => None,
            },
        )
    }

    /// Pairs `GuardRepairStart`/`GuardRepairEnd` into spans, in start
    /// order.
    pub fn guard_repair_spans(&self) -> Vec<Span> {
        self.pair_spans(
            |k| match *k {
                EventKind::GuardRepairStart { hlop, device } => Some((hlop, device, None)),
                _ => None,
            },
            |k| match *k {
                EventKind::GuardRepairEnd { hlop, device } => Some((hlop, device)),
                _ => None,
            },
        )
    }

    /// Matches starts to the earliest unmatched end with the same
    /// `(hlop, device)` key. A single HLOP can legitimately open several
    /// spans on one device (e.g. the inbound and outbound cast), so
    /// pairing is positional per key.
    fn pair_spans(
        &self,
        start: impl Fn(&EventKind) -> Option<(usize, crate::DeviceId, Option<usize>)>,
        end: impl Fn(&EventKind) -> Option<(usize, crate::DeviceId)>,
    ) -> Vec<Span> {
        let mut open: Vec<(usize, crate::DeviceId, f64, Option<usize>)> = Vec::new();
        let mut spans = Vec::new();
        for r in &self.records {
            if let Some((hlop, device, bytes)) = start(&r.kind) {
                open.push((hlop, device, r.time_s, bytes));
            } else if let Some((hlop, device)) = end(&r.kind) {
                if let Some(pos) = open
                    .iter()
                    .position(|&(h, d, _, _)| h == hlop && d == device)
                {
                    let (h, d, start_s, bytes) = open.remove(pos);
                    spans.push(Span {
                        device: d,
                        hlop: h,
                        start_s,
                        end_s: r.time_s,
                        bytes,
                    });
                }
            }
        }
        spans.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        spans
    }

    /// Total compute-span seconds per device, indexed by
    /// [`crate::DeviceId`] over `device_names` (defaults to 3 entries).
    pub fn busy_per_device(&self) -> Vec<f64> {
        let n = self.device_names.len().max(3);
        let mut busy = vec![0.0; n];
        for s in self.compute_spans() {
            if s.device < n {
                busy[s.device] += s.duration_s();
            }
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_pair(rec: &mut TraceRecorder, hlop: usize, device: usize, t0: f64, t1: f64) {
        rec.record(t0, EventKind::ComputeStart { hlop, device });
        rec.record(t1, EventKind::ComputeEnd { hlop, device });
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(1.0, EventKind::Aggregate { hlop: 0, device: 0 });
        sink.counter("x", 1.0);
        sink.gauge("y", 0.0, 1.0);
        // Nothing observable — NullSink has no state to inspect.
    }

    #[test]
    fn recorder_finish_sorts_by_time() {
        let mut rec = TraceRecorder::new();
        rec.record(2.0, EventKind::Aggregate { hlop: 1, device: 0 });
        rec.record(0.5, EventKind::Dispatch { hlop: 0, device: 0 });
        rec.record(1.0, EventKind::Dispatch { hlop: 1, device: 1 });
        let data = rec.finish();
        assert!(data.is_monotonic());
        assert_eq!(data.records[0].kind.name(), "Dispatch");
        assert_eq!(data.records[2].kind.name(), "Aggregate");
    }

    #[test]
    fn span_pairing_matches_by_hlop_and_device() {
        let mut rec = TraceRecorder::new();
        // Interleaved spans on two devices plus a re-opened span for the
        // same key (two casts for one HLOP).
        rec.record(0.0, EventKind::CastStart { hlop: 5, device: 2 });
        rec.record(0.1, EventKind::CastEnd { hlop: 5, device: 2 });
        rec.record(0.2, EventKind::CastStart { hlop: 5, device: 2 });
        rec.record(0.3, EventKind::CastEnd { hlop: 5, device: 2 });
        compute_pair(&mut rec, 1, 0, 0.0, 0.4);
        compute_pair(&mut rec, 2, 1, 0.1, 0.2);
        let data = rec.finish();
        let casts = data.cast_spans();
        assert_eq!(casts.len(), 2);
        assert!((casts[0].duration_s() - 0.1).abs() < 1e-12);
        let computes = data.compute_spans();
        assert_eq!(computes.len(), 2);
        assert_eq!(computes[0].hlop, 1);
        assert_eq!(computes[1].hlop, 2);
    }

    #[test]
    fn busy_per_device_sums_compute_spans() {
        let mut rec = TraceRecorder::new();
        compute_pair(&mut rec, 0, 0, 0.0, 0.5);
        compute_pair(&mut rec, 1, 0, 0.5, 0.75);
        compute_pair(&mut rec, 2, 2, 0.0, 0.1);
        let data = rec.finish();
        let busy = data.busy_per_device();
        assert!((busy[0] - 0.75).abs() < 1e-12);
        assert_eq!(busy[1], 0.0);
        assert!((busy[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(i as f64, EventKind::Dispatch { hlop: i, device: 0 });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let recs = ring.records();
        // Oldest first: events 2, 3, 4 survive.
        let hlops: Vec<usize> = recs.iter().filter_map(|r| r.kind.hlop()).collect();
        assert_eq!(hlops, vec![2, 3, 4]);
        assert!(recs.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn ring_buffer_below_capacity_keeps_all() {
        let mut ring = RingBufferSink::new(8);
        ring.record(0.0, EventKind::Dispatch { hlop: 0, device: 0 });
        assert_eq!(ring.records().len(), 1);
        assert_eq!(ring.dropped(), 0);
        assert!(!ring.is_empty());
    }

    #[test]
    fn trace_metrics_flow_through_recorder() {
        let mut rec = TraceRecorder::new();
        rec.counter("steals", 1.0);
        rec.counter("steals", 1.0);
        rec.gauge("queue.GPU", 0.0, 4.0);
        let data = rec.finish();
        assert_eq!(data.metrics.counter("steals"), 2.0);
        assert_eq!(data.metrics.gauge_series("queue.GPU").len(), 1);
    }

    #[test]
    fn distinct_kind_counting() {
        let mut rec = TraceRecorder::new();
        rec.record(0.0, EventKind::Dispatch { hlop: 0, device: 0 });
        rec.record(0.0, EventKind::Dispatch { hlop: 1, device: 1 });
        rec.record(
            1.0,
            EventKind::Steal {
                hlop: 1,
                from: 1,
                to: 0,
            },
        );
        let data = rec.finish();
        assert_eq!(data.count("Dispatch"), 2);
        assert_eq!(data.distinct_kinds(), 2);
        assert_eq!(data.steals(), 1);
    }
}
