//! Plain-text per-device timeline summaries of a finalized trace.

use crate::metrics::Histogram;
use crate::sink::TraceData;

/// Renders a human-readable per-device summary of a trace:
/// one row per device (HLOPs, busy seconds, utilization bar), then the
/// overall event/steal/transfer totals and a utilization histogram over
/// the devices. `makespan_s` scales the utilization figures; pass the
/// run's reported makespan.
///
/// # Panics
///
/// Panics if `makespan_s` is not positive.
pub fn timeline_summary(data: &TraceData, makespan_s: f64) -> String {
    assert!(makespan_s > 0.0, "makespan must be positive");
    const BAR: usize = 30;
    let busy = data.busy_per_device();
    let spans = data.compute_spans();
    let mut hist = Histogram::utilization();
    let mut out = String::from("device    HLOPs     busy_s   util\n");
    for (d, name) in data.device_names.iter().enumerate() {
        let b = busy.get(d).copied().unwrap_or(0.0);
        let util = (b / makespan_s).clamp(0.0, 1.0);
        hist.record(util);
        let hlops = spans.iter().filter(|s| s.device == d).count();
        let filled = (util * BAR as f64).round() as usize;
        let bar: String = std::iter::repeat('#')
            .take(filled)
            .chain(std::iter::repeat('.').take(BAR - filled))
            .collect();
        out.push_str(&format!(
            "{name:<8} {hlops:>6} {b:>10.6} {:>5.1}% |{bar}|\n",
            util * 100.0
        ));
    }
    let transfers = data.transfer_spans();
    let bytes: usize = transfers.iter().filter_map(|s| s.bytes).sum();
    out.push_str(&format!(
        "events {} ({} kinds), steals {}, transfers {} ({} bytes), casts {}\n",
        data.len(),
        data.distinct_kinds(),
        data.steals(),
        transfers.len(),
        bytes,
        data.cast_spans().len(),
    ));
    out.push_str("utilization histogram (devices per decile): ");
    let counts = hist.bucket_counts();
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&c.to_string());
    }
    out.push('\n');
    for (name, series) in data.metrics.gauges() {
        if let Some(peak) = series.iter().map(|&(_, v)| v).reduce(f64::max) {
            out.push_str(&format!(
                "gauge {name}: {} samples, peak {peak}\n",
                series.len()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::sink::{TraceRecorder, TraceSink};

    #[test]
    fn summary_lists_devices_and_totals() {
        let mut rec = TraceRecorder::new();
        rec.record(0.0, EventKind::ComputeStart { hlop: 0, device: 0 });
        rec.record(0.6, EventKind::ComputeEnd { hlop: 0, device: 0 });
        rec.record(0.0, EventKind::ComputeStart { hlop: 1, device: 2 });
        rec.record(0.3, EventKind::ComputeEnd { hlop: 1, device: 2 });
        rec.record(
            0.3,
            EventKind::Steal {
                hlop: 2,
                from: 2,
                to: 0,
            },
        );
        rec.gauge("queue.GPU", 0.0, 2.0);
        let text = timeline_summary(&rec.finish(), 1.0);
        assert!(text.contains("GPU"), "{text}");
        assert!(text.contains("EdgeTPU"));
        assert!(text.contains("60.0%"));
        assert!(text.contains("steals 1"));
        assert!(text.contains("gauge queue.GPU: 1 samples, peak 2"));
    }

    #[test]
    #[should_panic(expected = "makespan must be positive")]
    fn summary_rejects_zero_makespan() {
        timeline_summary(&TraceData::default(), 0.0);
    }
}
