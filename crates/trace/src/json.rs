//! A minimal JSON value model: enough to write and re-read Chrome trace
//! files without any external dependency.
//!
//! The writer emits compact JSON; the reader is a recursive-descent
//! parser over the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Both are exercised round-trip by
//! the Chrome exporter tests.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (BTreeMap), which is fine for trace
    /// files — consumers key by name.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write_number(f, *n),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            JsonValue::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a number the way JSON expects: no NaN/inf (mapped to 0), no
/// trailing `.0` noise for integers.
fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("0");
    }
    if n == n.trunc() && n.abs() < 1.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

/// Writes a quoted, escaped JSON string.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not expected in our own
                            // output; map unpaired ones to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0b1100_0000) == 0b1000_0000
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                message: format!("bad number '{text}'"),
                offset: start,
            })
    }
}

/// Convenience: an object builder used by the Chrome exporter.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    map: BTreeMap<String, JsonValue>,
}

impl ObjectBuilder {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: JsonValue) -> Self {
        self.map.insert(key.to_owned(), value);
        self
    }

    /// Finishes into a [`JsonValue::Object`].
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-2.5e2").unwrap(),
            JsonValue::Number(-250.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert!(matches!(v.get("d"), Some(JsonValue::Object(m)) if m.is_empty()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        let e = JsonValue::parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn display_round_trips() {
        let original = JsonValue::parse(
            r#"{"events":[{"name":"compute \"x\"","ts":1.5,"ok":true},null],"n":-3}"#,
        )
        .unwrap();
        let text = original.to_string();
        let reparsed = JsonValue::parse(&text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = JsonValue::String("µs — tab\there".into());
        let back = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some("µs — tab\there"));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(JsonValue::Number(3.0).to_string(), "3");
        assert_eq!(JsonValue::Number(3.25).to_string(), "3.25");
    }

    #[test]
    fn object_builder_builds() {
        let v = ObjectBuilder::new()
            .field("ph", JsonValue::String("X".into()))
            .field("ts", JsonValue::Number(10.0))
            .build();
        assert_eq!(v.get("ph").unwrap().as_str(), Some("X"));
    }
}
