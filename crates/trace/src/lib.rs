//! `shmt-trace` — structured event tracing and metrics for the SHMT
//! reproduction.
//!
//! The runtime and the platform simulator describe a run in *virtual*
//! time: devices execute HLOPs, the bus moves casts and transfers, queues
//! fill and drain, steals rebalance work. This crate captures that story
//! as typed records without perturbing it:
//!
//! * [`EventKind`]/[`TraceRecord`] — the typed event vocabulary, keyed to
//!   virtual seconds (partitioning, sampling overhead, dispatch, casts,
//!   transfers, compute spans, steals, aggregation).
//! * [`TraceSink`] — the capture interface the runtime threads through
//!   every hook. [`NullSink`] is the zero-cost default (tracing compiled
//!   in, but every hook is a no-op and results are bit-identical to an
//!   untraced build); [`RingBufferSink`] keeps the last N records;
//!   [`TraceRecorder`] collects everything plus metrics.
//! * [`MetricsRegistry`] — monotonic counters and timestamped gauge
//!   series (queue depths, bus occupancy), plus a fixed-bound
//!   [`Histogram`].
//! * [`Observatory`] — live, mergeable telemetry: streaming log-bucketed
//!   latency histograms (p50/p95/p99/p999 without storing samples) and
//!   per-device online profiles (EWMA throughput per HLOP kind, observed
//!   MAPE, queue depth, quarantine state).
//! * [`chrome`] — a hand-rolled Chrome trace-event JSON exporter (loadable
//!   in Perfetto / `chrome://tracing`) and a reader for round-trip
//!   validation.
//! * [`openmetrics`] — a hand-rolled OpenMetrics/Prometheus text exporter
//!   and parser for everything an [`Observatory`] holds, with
//!   deterministic byte-stable output.
//! * [`summary`] — a plain-text per-device timeline summary.
//! * [`json`] — the tiny dependency-free JSON value model backing the
//!   exporter and reader.
//!
//! No external dependencies: the crate (like the whole workspace) builds
//! with the standard library alone.
//!
//! # Examples
//!
//! ```
//! use shmt_trace::{EventKind, TraceRecorder, TraceSink};
//!
//! let mut rec = TraceRecorder::new();
//! rec.record(0.0, EventKind::ComputeStart { hlop: 0, device: 0 });
//! rec.record(0.5, EventKind::ComputeEnd { hlop: 0, device: 0 });
//! let data = rec.finish();
//! assert_eq!(data.compute_spans().len(), 1);
//! let json = shmt_trace::chrome::to_chrome_json(&data);
//! let back = shmt_trace::chrome::from_chrome_json(&json).unwrap();
//! assert_eq!(back.complete_events().count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod event;
pub mod json;
mod metrics;
mod observatory;
pub mod openmetrics;
mod sink;
pub mod summary;

pub use event::{DeviceId, EventKind, Span, TraceRecord, DEFAULT_DEVICE_NAMES};
pub use metrics::{Histogram, MetricsRegistry};
pub use observatory::{DeviceProfile, Observatory, DEFAULT_EWMA_ALPHA};
pub use sink::{NullSink, RingBufferSink, TraceData, TraceRecorder, TraceSink};
