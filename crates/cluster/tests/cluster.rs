//! Cluster-routing contract tests: failover around crashed nodes,
//! prompt deadline handling under backoff, retry-budget exhaustion,
//! hedging with loser cancellation, class-ordered shedding, and
//! quarantine/probe reintegration of a flapping node. The common thread:
//! every routed request resolves to a response or a typed error — no
//! hangs, nothing lost.

use std::time::{Duration, Instant};

use shmt_cluster::{
    ClusterConfig, ClusterError, ClusterRouter, HedgeConfig, NodeConfig, NodeFaultPlan,
    RetryBudgetConfig, RetryConfig, RouteOptions, ShedConfig,
};
use shmt_kernels::Benchmark;
use shmt_serve::{Priority, ServerConfig};

use shmt_cluster::loadgen::RequestSpec;

/// A small request spec the virtual devices finish in well under a
/// millisecond of wall time.
fn spec(seed: u64) -> RequestSpec {
    RequestSpec::new(Benchmark::Sobel, 32, seed)
}

/// `n` healthy single-executor nodes.
fn nodes(n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|_| {
            NodeConfig::new(ServerConfig {
                executors: 1,
                ..ServerConfig::default()
            })
        })
        .collect()
}

fn config(nodes: Vec<NodeConfig>) -> ClusterConfig {
    ClusterConfig {
        nodes,
        ..ClusterConfig::with_nodes(1)
    }
}

#[test]
fn failover_masks_a_crashed_node_with_zero_lost_requests() {
    let mut cfg = config(nodes(3));
    cfg.nodes[0] = NodeConfig::new(ServerConfig {
        executors: 1,
        ..ServerConfig::default()
    })
    .with_faults(NodeFaultPlan::none().with_crash_at(0.0));
    // One strike quarantines: under light sequential load the scoring
    // pressure penalty would otherwise starve the node of the second
    // strike by steering everything around it.
    cfg.breaker.quarantine_after = 1;
    let router = ClusterRouter::new(cfg);
    for i in 0..20 {
        let s = spec(i);
        let resp = router
            .route(RouteOptions::new(), &|| s.build())
            .expect("failover resolves every request");
        assert_ne!(resp.node, 0, "the crashed node never serves");
    }
    let health = router.node_health();
    assert!(
        health[0].quarantined,
        "repeated unavailability quarantines the crashed node"
    );
    assert!(health[0].total_strikes >= 2);
    assert!(!health[1].quarantined && !health[2].quarantined);
    // Failover happened inside each request's first pass: no retry
    // tokens were spent on submit-level rerouting.
    assert_eq!(router.budget_stats().withdrawn, 0);
}

#[test]
fn all_nodes_down_resolves_typed_instead_of_hanging() {
    let mut cfg = config(nodes(2));
    for node in &mut cfg.nodes {
        *node = node
            .clone()
            .with_faults(NodeFaultPlan::none().with_crash_at(0.0));
    }
    cfg.retry = RetryConfig {
        max_attempts: 3,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(8),
    };
    let router = ClusterRouter::new(cfg);
    let started = Instant::now();
    let s = spec(1);
    let err = router
        .route(RouteOptions::new(), &|| s.build())
        .expect_err("a dead fleet cannot serve");
    assert!(
        matches!(err, ClusterError::NodesExhausted { attempts: 3, .. }),
        "typed exhaustion after bounded attempts, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "resolution is prompt, not a hang"
    );
}

#[test]
fn retries_that_cannot_fit_the_deadline_fail_promptly() {
    // Satellite regression: with every node down and a 60 ms base
    // backoff against an 80 ms deadline, the router must return
    // DeadlineExceeded as soon as the next backoff cannot fit — not
    // sleep through the rest of the schedule.
    let mut cfg = config(nodes(2));
    for node in &mut cfg.nodes {
        *node = node
            .clone()
            .with_faults(NodeFaultPlan::none().with_crash_at(0.0));
    }
    cfg.retry = RetryConfig {
        max_attempts: 10,
        backoff: Duration::from_millis(60),
        backoff_cap: Duration::from_secs(1),
    };
    cfg.budget = RetryBudgetConfig {
        initial: 100.0,
        deposit_per_request: 0.0,
        cap: 100.0,
    };
    let router = ClusterRouter::new(cfg);
    let started = Instant::now();
    let s = spec(1);
    let deadline = Duration::from_millis(80);
    let err = router
        .route(RouteOptions::new().with_deadline(deadline), &|| s.build())
        .expect_err("a dead fleet cannot serve");
    let wall = started.elapsed();
    match err {
        ClusterError::DeadlineExceeded {
            elapsed,
            deadline: d,
        } => {
            assert_eq!(d, deadline);
            assert!(
                elapsed < Duration::from_millis(300),
                "gave up promptly at {elapsed:?}, not after the full backoff schedule"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    assert!(
        wall < Duration::from_millis(300),
        "{wall:?} should be one backoff step, not ~10 of them"
    );
}

#[test]
fn the_retry_budget_stops_a_retry_storm() {
    let mut cfg = config(nodes(2));
    for node in &mut cfg.nodes {
        *node = node
            .clone()
            .with_faults(NodeFaultPlan::none().with_crash_at(0.0));
    }
    cfg.retry = RetryConfig {
        max_attempts: 50,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(2),
    };
    cfg.budget = RetryBudgetConfig {
        initial: 1.0,
        deposit_per_request: 0.0,
        cap: 10.0,
    };
    let router = ClusterRouter::new(cfg);
    let s = spec(1);
    let err = router
        .route(RouteOptions::new(), &|| s.build())
        .expect_err("a dead fleet cannot serve");
    assert!(
        matches!(err, ClusterError::RetryBudgetExhausted { .. }),
        "the empty bucket surfaces, got {err}"
    );
    let stats = router.budget_stats();
    assert_eq!(stats.withdrawn, 1, "exactly the banked token was spent");
    assert!(stats.denied >= 1);
}

#[test]
fn a_hedge_rescues_a_slow_node_and_the_loser_is_canceled() {
    let mut cfg = config(nodes(2));
    // Node 0 delivers everything 300 ms late for the whole test.
    cfg.nodes[0] = cfg.nodes[0]
        .clone()
        .with_faults(NodeFaultPlan::none().with_slow_window(
            0.0,
            3600.0,
            Duration::from_millis(300),
        ));
    cfg.hedge = HedgeConfig {
        enabled: true,
        quantile: 0.95,
        min_samples: 1_000_000, // stay on the cold-start delay
        min_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(20),
    };
    let router = ClusterRouter::new(cfg);
    // Both nodes idle: the tie-break sends the primary to node 0.
    let s = spec(1);
    let started = Instant::now();
    let resp = router
        .route(RouteOptions::new(), &|| s.build())
        .expect("the hedge resolves the request");
    assert!(resp.hedged, "a hedge was launched");
    assert!(resp.hedge_won, "the hedge beat the slow primary");
    assert_eq!(resp.node, 1, "the healthy node served");
    assert!(
        started.elapsed() < Duration::from_millis(250),
        "hedged latency cuts under the slow node's 300 ms delay"
    );
    let m = router.metrics();
    assert!(m.counter("cluster.hedges") >= 1.0);
    assert!(m.counter("cluster.hedge_wins") >= 1.0);
    // The loser was canceled, its budget token accounted.
    assert_eq!(router.budget_stats().withdrawn, 1);
}

#[test]
fn shedding_drops_best_effort_before_interactive() {
    let mut cfg = config(nodes(1));
    // The single node delivers slowly so in-flight requests pile up.
    cfg.nodes[0] = cfg.nodes[0]
        .clone()
        .with_faults(NodeFaultPlan::none().with_slow_window(
            0.0,
            3600.0,
            Duration::from_millis(400),
        ));
    cfg.hedge.enabled = false;
    cfg.shed = ShedConfig {
        enabled: true,
        capacity: 8,
        batch_fraction: 0.75,
        best_effort_fraction: 0.25,
    };
    let router = ClusterRouter::new(cfg);
    let router = &router;
    std::thread::scope(|scope| {
        // Four batch requests in flight (≥ the BestEffort ceiling of 2).
        let holders: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let s = spec(i);
                    router.route(RouteOptions::new(), &|| s.build())
                })
            })
            .collect();
        while router.inflight() < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = spec(99);
        let be = router.route(
            RouteOptions::new().with_priority(Priority::BestEffort),
            &|| s.build(),
        );
        match be {
            Err(ClusterError::Shed {
                priority, limit, ..
            }) => {
                assert_eq!(priority, Priority::BestEffort);
                assert_eq!(limit, 2);
            }
            other => panic!("BestEffort must shed under load, got {other:?}"),
        }
        let s2 = spec(100);
        let interactive = router.route(
            RouteOptions::new().with_priority(Priority::Interactive),
            &|| s2.build(),
        );
        assert!(
            interactive.is_ok(),
            "Interactive stays admitted at the same load: {interactive:?}"
        );
        for h in holders {
            h.join()
                .expect("holder thread")
                .expect("held batch requests still complete");
        }
    });
    let m = router.metrics();
    assert_eq!(m.counter("cluster.shed.best_effort"), 1.0);
    assert_eq!(m.counter("cluster.shed.interactive"), 0.0);
}

#[test]
fn a_mid_flight_connection_loss_is_retried_elsewhere() {
    let mut cfg = config(nodes(2));
    // Node 0 computes fine but delivers 200 ms late — and drops off the
    // network 50 ms in, with that response still undelivered. The
    // router must observe a lost connection and re-dispatch, not wait
    // out a delivery that will never come.
    cfg.nodes[0] = cfg.nodes[0].clone().with_faults(
        NodeFaultPlan::none()
            .with_slow_window(0.0, 3600.0, Duration::from_millis(200))
            .with_down_window(0.05, 3600.0),
    );
    // No hedge: the cold-start hedge delay (50 ms) would race the down
    // window and resolve the request inside the first attempt.
    cfg.hedge.enabled = false;
    let router = ClusterRouter::new(cfg);
    let s = spec(1);
    let started = Instant::now();
    let resp = router
        .route(RouteOptions::new(), &|| s.build())
        .expect("the retry resolves the request");
    assert_eq!(resp.tries, 2, "one failed dispatch, one retry");
    assert_eq!(resp.node, 1, "the surviving node served");
    let wall = started.elapsed();
    assert!(
        wall > Duration::from_millis(45) && wall < Duration::from_millis(150),
        "resolved right after the 50 ms connection loss, got {wall:?}"
    );
    assert!(router.metrics().counter("cluster.connection_lost") >= 1.0);
    assert_eq!(router.budget_stats().withdrawn, 1, "the retry paid a token");
}

#[test]
fn a_flapping_node_is_quarantined_probed_and_reintegrated() {
    let mut cfg = config(nodes(2));
    // Node 0 is down for the first 250 ms, then healthy again.
    cfg.nodes[0] = cfg.nodes[0]
        .clone()
        .with_faults(NodeFaultPlan::none().with_down_window(0.0, 0.25));
    cfg.breaker.quarantine_after = 1;
    cfg.breaker.probe_after = 2;
    let router = ClusterRouter::new(cfg);
    for i in 0..60 {
        let s = spec(i);
        router
            .route(RouteOptions::new(), &|| s.build())
            .expect("the healthy node covers the flap");
        std::thread::sleep(Duration::from_millis(8));
    }
    let health = router.node_health();
    assert!(health[0].quarantines >= 1, "the flap tripped the breaker");
    assert!(health[0].probes >= 1, "quarantine was probed");
    assert!(
        health[0].reintegrations >= 1,
        "a clean probe reintegrated the node"
    );
    assert!(
        !health[0].quarantined,
        "the recovered node is back in rotation"
    );
    assert!(
        router.node_dispatched()[0] > 0,
        "the reintegrated node serves again"
    );
}
