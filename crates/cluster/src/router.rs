//! The cluster router: dispatch by load/locality/quality-SLO with
//! failover, bounded budgeted retries, tail-latency hedging, and
//! graceful degradation — robust by construction, so no routed request
//! ever hangs and none is silently lost.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use shmt::sched::TPU;
use shmt_serve::{Priority, Request, Response, ServeError};
use shmt_trace::{MetricsRegistry, Observatory};

use crate::breaker::{FleetBreaker, NodeBreakerConfig, NodeHealth};
use crate::budget::{BudgetStats, RetryBudget, RetryBudgetConfig};
use crate::error::ClusterError;
use crate::node::{ClusterNode, NodeConfig, NodeError, NodeTicket};

/// Granularity of the router's in-flight polling (the wait itself blocks
/// on the serve ticket's condvar, so this costs wakeups, not spin).
const POLL_SLICE: Duration = Duration::from_micros(500);

/// Stand-in horizon for deadline-less requests (routing math only).
const FOREVER: Duration = Duration::from_secs(3600);

/// Tail-latency hedging policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch.
    pub enabled: bool,
    /// Quantile of the observed cluster latency distribution the hedge
    /// delay derives from (0.95 hedges the slowest ~5% of requests).
    pub quantile: f64,
    /// Latency samples required before the derived delay is trusted;
    /// until then the delay is `max_delay` (hedge late, not eagerly).
    pub min_samples: u64,
    /// Clamp floor for the derived delay.
    pub min_delay: Duration,
    /// Clamp ceiling for the derived delay, and the cold-start delay.
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            quantile: 0.95,
            min_samples: 64,
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Retry policy: bounded attempts with capped exponential backoff. Every
/// retry additionally needs a token from the cluster-wide
/// [`RetryBudgetConfig`] bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total tries per request (first attempt included).
    pub max_attempts: usize,
    /// Base backoff before the second try; doubles per try.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
        }
    }
}

/// Overload shedding: per-class ceilings on cluster-wide in-flight
/// requests. BestEffort sheds first, then Batch, then Interactive —
/// graceful degradation instead of unbounded queueing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedConfig {
    /// Master switch.
    pub enabled: bool,
    /// In-flight ceiling for Interactive traffic (the hard cap).
    pub capacity: usize,
    /// Fraction of `capacity` at which Batch sheds.
    pub batch_fraction: f64,
    /// Fraction of `capacity` at which BestEffort sheds.
    pub best_effort_fraction: f64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            enabled: true,
            capacity: 64,
            batch_fraction: 0.75,
            best_effort_fraction: 0.5,
        }
    }
}

/// Weights of the router's node-scoring terms (lowest score wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Per in-flight request on the node (load balancing).
    pub load: f64,
    /// Penalty scale for nodes observed slower than the fleet's best
    /// (per-node EWMA latency profiles; the penalty is capped at 4x).
    pub perf: f64,
    /// Bonus for the node an affinity key hashes to (cache locality).
    pub locality: f64,
    /// Penalty for routing a quality-SLO request to a node whose TPU is
    /// quarantined (its approximate path is suspect).
    pub quality: f64,
    /// Penalty scale for accumulated breaker strikes short of
    /// quarantine.
    pub pressure: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        ScoreWeights {
            load: 1.0,
            perf: 1.0,
            locality: 0.5,
            quality: 2.0,
            pressure: 2.0,
        }
    }
}

/// Full router configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The fleet: one serving stack + fault plan per node.
    pub nodes: Vec<NodeConfig>,
    /// Node-level circuit breaker.
    pub breaker: NodeBreakerConfig,
    /// Cluster-wide retry budget.
    pub budget: RetryBudgetConfig,
    /// Tail-latency hedging.
    pub hedge: HedgeConfig,
    /// Bounded backoff retries.
    pub retry: RetryConfig,
    /// Overload shedding.
    pub shed: ShedConfig,
    /// Node-scoring weights.
    pub score: ScoreWeights,
    /// Ceiling on any single dispatch's wait before the router strikes
    /// the node and moves on — the backstop that makes hangs impossible
    /// even with no deadline set.
    pub attempt_timeout: Duration,
    /// Deadline applied to requests that do not set their own.
    pub default_deadline: Option<Duration>,
}

impl ClusterConfig {
    /// `n` identically configured healthy nodes with default policies.
    pub fn with_nodes(n: usize) -> Self {
        ClusterConfig {
            nodes: (0..n.max(1)).map(|_| NodeConfig::default()).collect(),
            breaker: NodeBreakerConfig::default(),
            budget: RetryBudgetConfig::default(),
            hedge: HedgeConfig::default(),
            retry: RetryConfig::default(),
            shed: ShedConfig::default(),
            score: ScoreWeights::default(),
            attempt_timeout: Duration::from_secs(1),
            default_deadline: None,
        }
    }
}

/// Routing-level options for one request: QoS class, deadline, locality
/// affinity, quality SLO, and whether hedging may duplicate it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteOptions {
    /// QoS class: orders both shedding (BestEffort first) and each
    /// node's admission queue.
    pub priority: Priority,
    /// End-to-end deadline across all retries and hedges.
    pub deadline: Option<Duration>,
    /// Locality key: requests sharing a key prefer the same node.
    pub affinity: Option<u64>,
    /// Quality SLO stamped onto the dispatched request; also steers
    /// routing away from nodes with a quarantined TPU.
    pub max_mape: Option<f64>,
    /// Forbid hedging for this request (e.g. side-effecting work).
    pub no_hedge: bool,
}

impl RouteOptions {
    /// Batch-class options (the default).
    pub fn new() -> Self {
        RouteOptions::default()
    }

    /// Sets the QoS class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the end-to-end deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the locality affinity key.
    #[must_use]
    pub fn with_affinity(mut self, key: u64) -> Self {
        self.affinity = Some(key);
        self
    }

    /// Sets the quality SLO.
    #[must_use]
    pub fn with_max_mape(mut self, max_mape: f64) -> Self {
        self.max_mape = Some(max_mape);
        self
    }

    /// Forbids hedging.
    #[must_use]
    pub fn without_hedge(mut self) -> Self {
        self.no_hedge = true;
        self
    }
}

/// A response served by the cluster, with routing provenance.
#[derive(Debug)]
pub struct ClusterResponse {
    /// The winning node's serve response.
    pub response: Response,
    /// The node that served it.
    pub node: usize,
    /// Dispatch tries the request needed (1 = first try won).
    pub tries: usize,
    /// Whether a hedge duplicate was launched.
    pub hedged: bool,
    /// Whether the hedge (not the primary) produced this response.
    pub hedge_won: bool,
    /// End-to-end routing latency (dispatch decision to delivery).
    pub latency: Duration,
}

/// Router-internal mutable policy state (breaker + budget), one mutex.
struct RouterState {
    breaker: FleetBreaker,
    budget: RetryBudget,
}

/// The fleet front door. All routing policy lives here; the nodes behind
/// it are plain [`shmt_serve::Server`]s.
pub struct ClusterRouter {
    nodes: Vec<ClusterNode>,
    epoch: Instant,
    hedge: HedgeConfig,
    retry: RetryConfig,
    shed: ShedConfig,
    score: ScoreWeights,
    attempt_timeout: Duration,
    default_deadline: Option<Duration>,
    /// Lock order: `state`, `metrics`, and `obs` are only ever acquired
    /// alone — never nested (the same discipline the serve layer keeps).
    state: Mutex<RouterState>,
    metrics: Mutex<MetricsRegistry>,
    /// Router-level telemetry: `cluster.*` latency histograms plus
    /// per-node EWMA profiles (device index = node id).
    obs: Mutex<Observatory>,
    inflight: AtomicUsize,
    down: AtomicBool,
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("nodes", &self.nodes.len())
            .field("inflight", &self.inflight.load(Ordering::Relaxed))
            .finish()
    }
}

impl ClusterRouter {
    /// Builds the fleet and its router.
    ///
    /// # Panics
    ///
    /// Panics when a node's executor team cannot be spawned; use
    /// [`ClusterRouter::try_new`] for a typed error.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterRouter::try_new(config).expect("spawn cluster nodes")
    }

    /// [`ClusterRouter::new`] with typed failure.
    pub fn try_new(config: ClusterConfig) -> Result<Self, ClusterError> {
        let epoch = Instant::now();
        let node_configs = if config.nodes.is_empty() {
            vec![NodeConfig::default()]
        } else {
            config.nodes
        };
        let mut nodes = Vec::with_capacity(node_configs.len());
        for (id, nc) in node_configs.into_iter().enumerate() {
            nodes.push(ClusterNode::new(id, nc, epoch)?);
        }
        let breaker = FleetBreaker::new(config.breaker, nodes.len());
        Ok(ClusterRouter {
            nodes,
            epoch,
            hedge: config.hedge,
            retry: config.retry,
            shed: config.shed,
            score: config.score,
            attempt_timeout: config.attempt_timeout.max(Duration::from_millis(1)),
            default_deadline: config.default_deadline,
            state: Mutex::new(RouterState {
                breaker,
                budget: RetryBudget::new(config.budget),
            }),
            metrics: Mutex::new(MetricsRegistry::with_gauge_cap(4096)),
            obs: Mutex::new(Observatory::new()),
            inflight: AtomicUsize::new(0),
            down: AtomicBool::new(false),
        })
    }

    /// Number of nodes in the fleet.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Requests currently inside [`ClusterRouter::route`].
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Per-node breaker snapshots, indexed by node id.
    pub fn node_health(&self) -> Vec<NodeHealth> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .breaker
            .snapshot()
    }

    /// Retry-budget accounting.
    pub fn budget_stats(&self) -> BudgetStats {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .budget
            .stats()
    }

    /// Snapshot of the router's `cluster.*` counters.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Router telemetry: `cluster.*` latency histograms and per-node
    /// EWMA profiles (device index = node id), merged with the router's
    /// counters.
    pub fn observatory(&self) -> Observatory {
        let mut obs = self
            .obs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let metrics = self.metrics();
        obs.merge_registry(&metrics);
        let health = self.node_health();
        for (id, h) in health.iter().enumerate() {
            obs.set_quarantined(id, h.quarantined);
        }
        obs
    }

    /// The whole fleet's node-level telemetry merged into one view via
    /// the observatory's mergeable histograms and span-weighted
    /// profiles: `serve.*` latency distributions aggregate across
    /// nodes, device profiles aggregate device-wise.
    pub fn fleet_observatory(&self) -> Observatory {
        let mut merged = Observatory::new();
        for node in &self.nodes {
            merged.merge(&node.server().observatory());
        }
        merged
    }

    /// One node's device-health snapshot (GPU, CPU, TPU breakers).
    pub fn node_device_health(&self, id: usize) -> [shmt_serve::DeviceHealth; 3] {
        self.nodes[id].server().device_health()
    }

    /// One node's serving metrics.
    pub fn node_metrics(&self, id: usize) -> MetricsRegistry {
        self.nodes[id].server().metrics()
    }

    /// Requests each node has been handed over the router's lifetime.
    pub fn node_dispatched(&self) -> Vec<u64> {
        self.nodes.iter().map(ClusterNode::dispatched).collect()
    }

    /// Seconds since the cluster epoch (the fault plans' time axis).
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Stops admission and shuts every node's serving stack down.
    pub fn shutdown(&mut self) {
        self.down.store(true, Ordering::Relaxed);
        for node in &mut self.nodes {
            node.shutdown();
        }
    }

    /// Routes one request through the fleet and blocks until it resolves
    /// — to a response or a typed error, never a hang: every dispatch is
    /// bounded by `attempt_timeout`, every retry by the deadline and the
    /// retry budget.
    ///
    /// `make` builds a fresh [`Request`] per dispatch (payloads are not
    /// clonable; retries and hedges each need their own). The router
    /// stamps class, quality SLO, and the remaining deadline onto each
    /// built request.
    pub fn route(
        &self,
        opts: RouteOptions,
        make: &dyn Fn() -> Request,
    ) -> Result<ClusterResponse, ClusterError> {
        if self.down.load(Ordering::Relaxed) {
            return Err(ClusterError::Shutdown);
        }
        // Graceful degradation: shed by class before any node sees the
        // request.
        let inflight = self.inflight.load(Ordering::Relaxed);
        let limit = self.class_limit(opts.priority);
        if self.shed.enabled && inflight >= limit {
            let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            metrics.add_counter("cluster.shed", 1.0);
            metrics.add_counter(&format!("cluster.shed.{}", opts.priority.name()), 1.0);
            return Err(ClusterError::Shed {
                priority: opts.priority,
                inflight,
                limit,
            });
        }
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let outcome = self.route_inner(&opts, make, started);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.finish_route(&opts, &outcome, started);
        outcome
    }

    /// Post-resolution bookkeeping: counters and latency telemetry.
    fn finish_route(
        &self,
        opts: &RouteOptions,
        outcome: &Result<ClusterResponse, ClusterError>,
        started: Instant,
    ) {
        let latency = started.elapsed();
        {
            let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            metrics.add_counter("cluster.routed", 1.0);
            match outcome {
                Ok(resp) => {
                    metrics.add_counter("cluster.ok", 1.0);
                    if resp.tries > 1 {
                        metrics.add_counter("cluster.retries", (resp.tries - 1) as f64);
                    }
                    if resp.hedge_won {
                        metrics.add_counter("cluster.hedge_wins", 1.0);
                    }
                }
                Err(ClusterError::DeadlineExceeded { .. }) => {
                    metrics.add_counter("cluster.deadline_exceeded", 1.0);
                }
                Err(ClusterError::RetryBudgetExhausted { .. }) => {
                    metrics.add_counter("cluster.budget_exhausted", 1.0);
                }
                Err(ClusterError::NodesExhausted { .. }) => {
                    metrics.add_counter("cluster.nodes_exhausted", 1.0);
                }
                Err(_) => {
                    metrics.add_counter("cluster.failed", 1.0);
                }
            }
            metrics.push_gauge(
                "cluster.inflight",
                self.now_s(),
                self.inflight.load(Ordering::Relaxed) as f64,
            );
        }
        if let Ok(resp) = outcome {
            let mut obs = self.obs.lock().unwrap_or_else(PoisonError::into_inner);
            obs.record_latency("cluster.latency_seconds", latency.as_secs_f64());
            obs.record_latency(
                &format!("cluster.latency.{}_seconds", opts.priority.name()),
                latency.as_secs_f64(),
            );
            // Per-node EWMA profile over *router-observed* latency (one
            // "element" per request), so delivery-side slowness the node
            // itself cannot see still shows up in its score.
            obs.observe_span(resp.node, "route", 1, resp.latency.as_secs_f64());
        }
    }

    /// Per-class in-flight ceiling (BestEffort lowest, Interactive the
    /// full capacity).
    fn class_limit(&self, priority: Priority) -> usize {
        let cap = self.shed.capacity.max(1);
        let frac = match priority {
            Priority::Interactive => 1.0,
            Priority::Batch => self.shed.batch_fraction,
            Priority::BestEffort => self.shed.best_effort_fraction,
        };
        ((cap as f64 * frac).floor() as usize).max(1)
    }

    /// Remaining time before `deadline`, or the routing horizon for
    /// deadline-less requests. `None` means the deadline has lapsed.
    fn remaining(deadline: Option<Duration>, started: Instant) -> Option<Duration> {
        match deadline {
            None => Some(FOREVER),
            Some(d) => {
                let elapsed = started.elapsed();
                (elapsed < d).then(|| d - elapsed)
            }
        }
    }

    fn build_request(
        &self,
        opts: &RouteOptions,
        make: &dyn Fn() -> Request,
        remaining: Duration,
    ) -> Request {
        let mut request = make();
        request.priority = opts.priority;
        if opts.max_mape.is_some() {
            request.max_mape = opts.max_mape;
        }
        request.deadline = Some(remaining.min(self.attempt_timeout));
        request
    }

    /// Scores and picks the best dispatch target among non-excluded
    /// nodes, committing a probe when one is due (or when quarantine
    /// covers every candidate — the fleet never masks its last capable
    /// node). Returns the node id and whether this dispatch is a probe.
    fn pick_node(
        &self,
        state: &mut RouterState,
        opts: &RouteOptions,
        excluded: &[bool],
        profiles: &[Option<f64>],
        allow_probe: bool,
    ) -> Option<(usize, bool)> {
        let n = self.nodes.len();
        // A due probe takes precedence: reintegration evidence is worth
        // one request's risk (the request keeps its retries).
        if allow_probe {
            if let Some(id) = (0..n).find(|&id| !excluded[id] && state.breaker.probe_ready(id)) {
                state.breaker.begin_probe(id);
                return Some((id, true));
            }
        }
        let best_tp = profiles.iter().flatten().copied().fold(f64::NAN, f64::max);
        let candidate = |routable_only: bool| {
            let mut best: Option<(f64, usize)> = None;
            for id in 0..n {
                if excluded[id] || (routable_only && !state.breaker.routable(id)) {
                    continue;
                }
                let mut score = self.score.load * self.nodes[id].inflight() as f64;
                score += self.score.pressure * state.breaker.pressure(id);
                if let Some(tp) = profiles[id] {
                    if best_tp.is_finite() && tp > 0.0 {
                        score += self.score.perf * ((best_tp / tp) - 1.0).clamp(0.0, 4.0);
                    }
                }
                if let Some(key) = opts.affinity {
                    if (key % n as u64) as usize == id {
                        score -= self.score.locality;
                    }
                }
                if opts.max_mape.is_some()
                    && self.nodes[id].server().device_health()[TPU].quarantined
                {
                    score += self.score.quality;
                }
                if best.map_or(true, |(s, _)| score < s) {
                    best = Some((score, id));
                }
            }
            best.map(|(_, id)| id)
        };
        if let Some(id) = candidate(true) {
            return Some((id, false));
        }
        if !allow_probe {
            return None;
        }
        // Everything left is quarantined: route degraded to the best of
        // them, counted as a probe so a clean response reintegrates.
        let id = candidate(false)?;
        state.breaker.begin_probe(id);
        Some((id, true))
    }

    /// Per-node EWMA throughput snapshot (requests per observed-latency
    /// second), taken outside the state lock per the lock ordering.
    fn profile_snapshot(&self) -> Vec<Option<f64>> {
        let obs = self.obs.lock().unwrap_or_else(PoisonError::into_inner);
        (0..self.nodes.len())
            .map(|id| obs.profile(id).and_then(|p| p.mean_throughput()))
            .collect()
    }

    /// The current hedge delay: the configured quantile of observed
    /// cluster latency, clamped, or the ceiling while cold.
    fn hedge_delay(&self) -> Duration {
        let obs = self.obs.lock().unwrap_or_else(PoisonError::into_inner);
        let derived = obs
            .histogram("cluster.latency_seconds")
            .filter(|h| h.total() >= self.hedge.min_samples)
            .and_then(|h| h.quantile(self.hedge.quantile));
        drop(obs);
        match derived {
            Some(q) if q.is_finite() && q > 0.0 => {
                Duration::from_secs_f64(q).clamp(self.hedge.min_delay, self.hedge.max_delay)
            }
            _ => self.hedge.max_delay,
        }
    }

    /// Records one dispatch outcome against the breaker and the strike
    /// counters. Locks are taken one at a time.
    fn note_outcome(&self, node: usize, ok: bool, was_probe: bool) {
        let delta = self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .breaker
            .record(node, ok, was_probe);
        if delta.strikes > 0 || delta.quarantines > 0 || delta.reintegrations > 0 {
            let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            if delta.strikes > 0 {
                metrics.add_counter("cluster.node_strike", delta.strikes as f64);
            }
            if delta.quarantines > 0 {
                metrics.add_counter("cluster.node_quarantine", delta.quarantines as f64);
            }
            if delta.reintegrations > 0 {
                metrics.add_counter("cluster.node_reintegrate", delta.reintegrations as f64);
            }
        }
    }

    fn count(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .add_counter(name, 1.0);
    }

    fn route_inner(
        &self,
        opts: &RouteOptions,
        make: &dyn Fn() -> Request,
        started: Instant,
    ) -> Result<ClusterResponse, ClusterError> {
        let deadline = opts.deadline.or(self.default_deadline);
        {
            // One deposit and one quarantine-clock tick per routed
            // request.
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.budget.deposit();
            state.breaker.tick();
        }
        let mut excluded = vec![false; self.nodes.len()];
        let mut tries = 0usize;
        let mut hedged = false;
        let mut last_err: Option<NodeError> = None;
        loop {
            let Some(remaining) = Self::remaining(deadline, started) else {
                return Err(ClusterError::DeadlineExceeded {
                    elapsed: started.elapsed(),
                    deadline: deadline.unwrap_or_default(),
                });
            };
            let profiles = self.profile_snapshot();
            let pick = {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                self.pick_node(&mut state, opts, &excluded, &profiles, true)
            };
            let Some((node_id, is_probe)) = pick else {
                // Every node failed this pass; pay for another pass or
                // give up.
                self.next_pass(&mut excluded, &mut tries, deadline, started, &last_err)?;
                continue;
            };
            let request = self.build_request(opts, make, remaining);
            match self.nodes[node_id].submit(request) {
                Err(e) => {
                    // Fast dispatch failure: strike (if availability),
                    // exclude, and fall through to the next candidate in
                    // the same pass — no budget charge until the whole
                    // pass fails.
                    if e.strikes_node() {
                        self.note_outcome(node_id, false, is_probe);
                        self.count("cluster.node_unavailable");
                    } else if is_probe {
                        // A probe refused at admission gives no verdict.
                        self.note_outcome(node_id, false, true);
                        self.count("cluster.node_busy");
                    } else {
                        self.count("cluster.node_busy");
                    }
                    excluded[node_id] = true;
                    last_err = Some(e);
                    continue;
                }
                Ok(ticket) => {
                    tries += 1;
                    match self.await_attempt(opts, make, ticket, is_probe, &mut hedged) {
                        AttemptOutcome::Won {
                            response,
                            node,
                            hedge_won,
                        } => {
                            return Ok(ClusterResponse {
                                response: *response,
                                node,
                                tries,
                                hedged,
                                hedge_won,
                                latency: started.elapsed(),
                            });
                        }
                        AttemptOutcome::Terminal(err) => {
                            return Err(ClusterError::Request(err));
                        }
                        AttemptOutcome::Failed { failed, last } => {
                            // Failover: exclude what failed, pay for
                            // another try (attempt cap, budget token,
                            // backoff — deadline-aware), and redispatch.
                            for id in failed {
                                excluded[id] = true;
                            }
                            last_err = Some(last);
                            if tries >= self.retry.max_attempts {
                                return Err(ClusterError::NodesExhausted {
                                    attempts: tries,
                                    last: last_err
                                        .as_ref()
                                        .map(NodeError::describe)
                                        .unwrap_or_default(),
                                });
                            }
                            if !self
                                .state
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .budget
                                .try_withdraw()
                            {
                                return Err(ClusterError::RetryBudgetExhausted { attempts: tries });
                            }
                            self.backoff(tries, deadline, started)?;
                            if excluded.iter().all(|&x| x) {
                                excluded.fill(false);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A full submit pass found no node that would accept the request:
    /// charge the budget, back off, and clear the exclusion set for
    /// another pass — or fail typed.
    fn next_pass(
        &self,
        excluded: &mut [bool],
        tries: &mut usize,
        deadline: Option<Duration>,
        started: Instant,
        last_err: &Option<NodeError>,
    ) -> Result<(), ClusterError> {
        *tries += 1;
        if *tries >= self.retry.max_attempts {
            return Err(ClusterError::NodesExhausted {
                attempts: *tries,
                last: last_err
                    .as_ref()
                    .map(NodeError::describe)
                    .unwrap_or_else(|| "no routable node".into()),
            });
        }
        if !self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .budget
            .try_withdraw()
        {
            return Err(ClusterError::RetryBudgetExhausted { attempts: *tries });
        }
        self.backoff(*tries, deadline, started)?;
        excluded.fill(false);
        Ok(())
    }

    /// Capped exponential backoff before try `tries + 1`. Fails with a
    /// *prompt* `DeadlineExceeded` when the sleep could not fit in the
    /// remaining budget — a request never burns backoff it cannot
    /// afford.
    fn backoff(
        &self,
        tries: usize,
        deadline: Option<Duration>,
        started: Instant,
    ) -> Result<(), ClusterError> {
        let shift = tries.saturating_sub(1).min(16) as u32;
        let sleep = self
            .retry
            .backoff
            .saturating_mul(1u32 << shift.min(16))
            .min(self.retry.backoff_cap);
        if let Some(d) = deadline {
            let elapsed = started.elapsed();
            let remaining = d.saturating_sub(elapsed);
            if sleep >= remaining {
                return Err(ClusterError::DeadlineExceeded {
                    elapsed,
                    deadline: d,
                });
            }
        }
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
        Ok(())
    }

    /// Waits on one dispatched attempt, launching a hedge to a second
    /// node once the p95-derived delay lapses. First response wins; the
    /// loser is canceled through its request's cancellation token.
    fn await_attempt(
        &self,
        opts: &RouteOptions,
        make: &dyn Fn() -> Request,
        primary: NodeTicket,
        primary_probe: bool,
        hedged: &mut bool,
    ) -> AttemptOutcome {
        let attempt_started = Instant::now();
        let attempt_deadline = attempt_started + self.attempt_timeout;
        let hedge_at = (self.hedge.enabled && !opts.no_hedge && self.nodes.len() > 1)
            .then(|| attempt_started + self.hedge_delay());
        let mut flights: Vec<(NodeTicket, bool, bool)> = vec![(primary, primary_probe, false)];
        let mut failed: Vec<usize> = Vec::new();
        let mut last = NodeError::TimedOut;
        let mut hedge_spent = *hedged;
        loop {
            let mut i = 0;
            while i < flights.len() {
                let (ticket, is_probe, is_hedge) = &mut flights[i];
                let node_id = ticket.node;
                match ticket.poll(&self.nodes[node_id]) {
                    Some(Ok(response)) => {
                        self.note_outcome(node_id, true, *is_probe);
                        let hedge_won = *is_hedge;
                        // Abandon settles in-flight accounting for the
                        // losers; the winner's ticket already settled in
                        // poll, so abandoning it too is a no-op.
                        for (loser, _, _) in flights.drain(..) {
                            let loser_node = loser.node;
                            loser.abandon(&self.nodes[loser_node]);
                        }
                        return AttemptOutcome::Won {
                            response: Box::new(response),
                            node: node_id,
                            hedge_won,
                        };
                    }
                    Some(Err(e)) => {
                        if e.strikes_node() {
                            self.note_outcome(node_id, false, *is_probe);
                            if matches!(e, NodeError::ConnectionLost) {
                                self.count("cluster.connection_lost");
                            }
                        } else if *is_probe {
                            self.note_outcome(node_id, false, true);
                        }
                        if let NodeError::Serve(ServeError::Runtime(err)) = &e {
                            // A runtime rejection (bad configuration)
                            // fails identically everywhere; don't burn
                            // retries on it.
                            for (loser, _, _) in flights.drain(..) {
                                let loser_node = loser.node;
                                loser.abandon(&self.nodes[loser_node]);
                            }
                            return AttemptOutcome::Terminal(ServeError::Runtime(err.clone()));
                        }
                        failed.push(node_id);
                        last = e;
                        flights.remove(i);
                    }
                    None => {
                        i += 1;
                    }
                }
            }
            if flights.is_empty() {
                return AttemptOutcome::Failed { failed, last };
            }
            let now = Instant::now();
            if now >= attempt_deadline {
                // Nothing answered inside the attempt window: strike and
                // abandon every open flight, then let the retry loop
                // decide whether the deadline or budget allows another.
                for (ticket, is_probe, _) in flights.drain(..) {
                    let node_id = ticket.node;
                    self.note_outcome(node_id, false, is_probe);
                    self.count("cluster.attempt_timeout");
                    failed.push(node_id);
                    ticket.abandon(&self.nodes[node_id]);
                }
                return AttemptOutcome::Failed {
                    failed,
                    last: NodeError::TimedOut,
                };
            }
            if let Some(at) = hedge_at {
                if !hedge_spent && now >= at && flights.len() == 1 {
                    hedge_spent = true;
                    if let Some(flight) =
                        self.launch_hedge(opts, make, &flights, &failed, attempt_deadline, hedged)
                    {
                        flights.push(flight);
                    }
                }
            }
            let mut slice = POLL_SLICE.min(attempt_deadline - now);
            if let Some(at) = hedge_at {
                if !hedge_spent && at > now {
                    slice = slice.min(at - now);
                }
            }
            flights[0].0.pump(slice.max(Duration::from_micros(50)));
        }
    }

    /// Attempts to launch one hedge dispatch: picks a second node
    /// (never a probe — hedges are latency rescues), pays a budget
    /// token, and submits. Any failure simply forgoes the hedge.
    fn launch_hedge(
        &self,
        opts: &RouteOptions,
        make: &dyn Fn() -> Request,
        flights: &[(NodeTicket, bool, bool)],
        failed: &[usize],
        attempt_deadline: Instant,
        hedged: &mut bool,
    ) -> Option<(NodeTicket, bool, bool)> {
        let mut excluded = vec![false; self.nodes.len()];
        for (t, _, _) in flights {
            excluded[t.node] = true;
        }
        for &id in failed {
            excluded[id] = true;
        }
        let profiles = self.profile_snapshot();
        let pick = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if !state.budget.try_withdraw() {
                None
            } else {
                self.pick_node(&mut state, opts, &excluded, &profiles, false)
            }
        };
        let (node_id, _) = pick?;
        let remaining = attempt_deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        let request = self.build_request(opts, make, remaining);
        match self.nodes[node_id].submit(request) {
            Ok(ticket) => {
                *hedged = true;
                self.count("cluster.hedges");
                Some((ticket, false, true))
            }
            Err(e) => {
                if e.strikes_node() {
                    self.note_outcome(node_id, false, false);
                }
                None
            }
        }
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How one dispatched attempt (primary plus optional hedge) ended.
enum AttemptOutcome {
    Won {
        response: Box<Response>,
        node: usize,
        hedge_won: bool,
    },
    /// Failed in a way no other node can fix.
    Terminal(ServeError),
    Failed {
        failed: Vec<usize>,
        last: NodeError,
    },
}
