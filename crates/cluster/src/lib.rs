//! Fleet-scale SHMT serving: a simulated cluster of serving nodes
//! behind a fault-domain router.
//!
//! Each node ([`NodeConfig`]) is a full [`shmt_serve::Server`] — its own
//! virtual devices, per-device circuit breaker, admission queue, and
//! telemetry — wrapped in a wall-clock [`NodeFaultPlan`] that can crash
//! it, flap it down, delay its deliveries, or inject device faults into
//! what it serves. The [`ClusterRouter`] in front makes the fleet
//! dependable out of undependable parts:
//!
//! - **Scoring dispatch** — load, per-node observed-latency EWMA
//!   profiles, locality affinity, and quality SLOs (nodes with a
//!   quarantined TPU repel accuracy-sensitive traffic) pick the target
//!   ([`ScoreWeights`]).
//! - **Node-level circuit breaking** — availability failures quarantine
//!   a node; a single-flight probe reintegrates it
//!   ([`NodeBreakerConfig`]), the serve crate's device breaker lifted
//!   one level up. Quarantine can stall but never stick, and the fleet
//!   never masks its last capable node.
//! - **Budgeted retries** — bounded attempts with capped, deadline-aware
//!   backoff ([`RetryConfig`]), each paid for from a cluster-wide token
//!   bucket ([`RetryBudgetConfig`]) so retries cannot storm a degraded
//!   fleet.
//! - **Tail-latency hedging** — after a delay derived from the observed
//!   p95, a duplicate goes to a second node; first response wins and the
//!   loser is canceled through its request's cancellation token
//!   ([`HedgeConfig`]).
//! - **Graceful degradation** — under overload, admission sheds
//!   BestEffort before Batch before Interactive with a typed
//!   [`ClusterError::Shed`] ([`ShedConfig`]).
//!
//! The [`loadgen`] module drives the fleet open-loop from seeded arrival
//! processes (Poisson, bursty, diurnal) and tallies every outcome; no
//! routed request ever hangs and none is lost — each resolves to a
//! [`ClusterResponse`] or a typed [`ClusterError`].

#![warn(missing_docs)]

mod breaker;
mod budget;
mod error;
pub mod loadgen;
mod node;
mod router;

pub use breaker::{NodeBreakerConfig, NodeHealth};
pub use budget::{BudgetStats, RetryBudgetConfig};
pub use error::ClusterError;
pub use node::{NodeConfig, NodeFaultPlan, SlowWindow};
pub use router::{
    ClusterConfig, ClusterResponse, ClusterRouter, HedgeConfig, RetryConfig, RouteOptions,
    ScoreWeights, ShedConfig,
};
