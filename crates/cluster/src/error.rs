//! Typed cluster-routing errors.
//!
//! Every way a routed request can fail is a distinct variant carrying
//! the numbers a caller needs to react — how loaded the cluster was when
//! it shed, how much of the deadline was burned, how many nodes were
//! tried. Nothing in the router panics or hangs: a request either
//! returns a [`crate::ClusterResponse`] or one of these.

use std::fmt;
use std::time::Duration;

use shmt_serve::{Priority, ServeError};

/// Why the cluster did not produce a response for a routed request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Admission control shed the request under overload before any node
    /// saw it. Lower QoS classes shed first (BestEffort, then Batch,
    /// then Interactive), so this is the router degrading gracefully
    /// rather than letting queues grow without bound.
    Shed {
        /// The request's QoS class.
        priority: Priority,
        /// Requests in flight across the cluster at the shed decision.
        inflight: usize,
        /// The inflight ceiling this class is admitted under.
        limit: usize,
    },
    /// The request's deadline lapsed before any attempt produced a
    /// response — including the case where the remaining budget could
    /// not cover the next retry's backoff, which fails *promptly* rather
    /// than sleeping through schedule it can never win.
    DeadlineExceeded {
        /// Time spent routing before giving up.
        elapsed: Duration,
        /// The deadline the request carried.
        deadline: Duration,
    },
    /// The cluster-wide retry budget (token bucket) had no token for
    /// another attempt. Retries never storm a degraded fleet: once the
    /// budget drains, failures surface instead of multiplying load.
    RetryBudgetExhausted {
        /// Dispatch attempts made before the budget ran dry.
        attempts: usize,
    },
    /// Every node was tried (or unroutable) and the final attempt failed.
    NodesExhausted {
        /// Dispatch attempts made in total.
        attempts: usize,
        /// The last per-node failure observed.
        last: String,
    },
    /// A node's serving layer failed the request for a reason retrying
    /// elsewhere cannot fix (e.g. an invalid configuration).
    Request(ServeError),
    /// The router has shut down.
    Shutdown,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Shed {
                priority,
                inflight,
                limit,
            } => write!(
                f,
                "request shed under overload: class {} admitted up to {limit} in flight, \
                 observed {inflight}",
                priority.name()
            ),
            ClusterError::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "cluster deadline exceeded: {elapsed:?} elapsed against {deadline:?}"
            ),
            ClusterError::RetryBudgetExhausted { attempts } => write!(
                f,
                "retry budget exhausted after {attempts} dispatch attempt(s)"
            ),
            ClusterError::NodesExhausted { attempts, last } => write!(
                f,
                "no node produced a response after {attempts} attempt(s); last failure: {last}"
            ),
            ClusterError::Request(e) => write!(f, "request failed terminally: {e}"),
            ClusterError::Shutdown => write!(f, "cluster router is shut down"),
        }
    }
}

impl std::error::Error for ClusterError {}
