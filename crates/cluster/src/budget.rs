//! Cluster-wide retry budget: a token bucket in the Finagle/Envoy
//! tradition. Every first-attempt dispatch deposits a fraction of a
//! token; every retry or hedge withdraws a whole one. Healthy traffic
//! thus earns a bounded reserve of extra attempts (~`deposit_per_request`
//! of offered load), and when the fleet degrades the reserve drains and
//! retries *stop* — the router surfaces failures instead of amplifying
//! an outage with a retry storm.

/// Budget tuning for [`crate::ClusterConfig::budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Tokens the bucket starts with (cold-start allowance, so early
    /// failures can still retry before any deposits accrue).
    pub initial: f64,
    /// Tokens deposited per routed request. `0.1` allows roughly one
    /// extra attempt per ten requests in steady state.
    pub deposit_per_request: f64,
    /// Bucket capacity: deposits beyond this are discarded, bounding the
    /// burst of retries an idle period can bank.
    pub cap: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            initial: 10.0,
            deposit_per_request: 0.1,
            cap: 100.0,
        }
    }
}

/// Point-in-time budget accounting
/// ([`crate::ClusterRouter::budget_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BudgetStats {
    /// Tokens currently available.
    pub tokens: f64,
    /// Tokens deposited over the router's lifetime (excluding the
    /// initial allowance; capped deposits are not counted).
    pub deposited: f64,
    /// Extra attempts (retries and hedges) the budget paid for.
    pub withdrawn: u64,
    /// Extra attempts refused because the bucket was empty.
    pub denied: u64,
}

/// The mutable bucket behind the router's state mutex.
#[derive(Debug)]
pub(crate) struct RetryBudget {
    config: RetryBudgetConfig,
    tokens: f64,
    deposited: f64,
    withdrawn: u64,
    denied: u64,
}

impl RetryBudget {
    pub(crate) fn new(config: RetryBudgetConfig) -> Self {
        RetryBudget {
            tokens: config.initial.max(0.0).min(config.cap.max(0.0)),
            config,
            deposited: 0.0,
            withdrawn: 0,
            denied: 0,
        }
    }

    /// Credits one routed request's deposit.
    pub(crate) fn deposit(&mut self) {
        let headroom = (self.config.cap - self.tokens).max(0.0);
        let credit = self.config.deposit_per_request.max(0.0).min(headroom);
        self.tokens += credit;
        self.deposited += credit;
    }

    /// Pays for one extra attempt, or refuses if the bucket is empty.
    pub(crate) fn try_withdraw(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.withdrawn += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    pub(crate) fn stats(&self) -> BudgetStats {
        BudgetStats {
            tokens: self.tokens,
            deposited: self.deposited,
            withdrawn: self.withdrawn,
            denied: self.denied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn withdrawals_spend_the_initial_allowance_then_deny() {
        let mut b = RetryBudget::new(RetryBudgetConfig {
            initial: 2.0,
            deposit_per_request: 0.0,
            cap: 10.0,
        });
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "empty bucket refuses");
        let s = b.stats();
        assert_eq!(s.withdrawn, 2);
        assert_eq!(s.denied, 1);
    }

    #[test]
    fn deposits_accrue_and_respect_the_cap() {
        let mut b = RetryBudget::new(RetryBudgetConfig {
            initial: 0.0,
            deposit_per_request: 0.5,
            cap: 1.0,
        });
        assert!(!b.try_withdraw(), "cold bucket is empty");
        for _ in 0..10 {
            b.deposit();
        }
        let s = b.stats();
        assert_eq!(s.tokens, 1.0, "cap bounds banked retries");
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }
}
