//! Node-level circuit breaker: the serve crate's per-device
//! strike/quarantine/probe state machine lifted one level up, where the
//! unit of failure is a whole node instead of a device.
//!
//! Availability faults (unreachable at dispatch, connection lost
//! mid-flight, attempt timeout) accumulate as consecutive strikes;
//! enough strikes quarantine the node out of routing. The quarantine
//! clock ticks once per routed request, and when it reaches the probe
//! threshold a single request is allowed through as a *probe* — a clean
//! response reintegrates the node, a failure re-arms the quarantine. A
//! probe that never reports (its dispatcher died, or the fleet shut
//! down around it) is declared lost after another probe-threshold's
//! worth of routed requests, so quarantine can stall but never stick —
//! the same guarantee the device-level breaker makes.

/// Breaker tuning for [`crate::ClusterConfig::breaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeBreakerConfig {
    /// Master switch. Disabled, every node stays routable forever.
    pub enabled: bool,
    /// Consecutive availability strikes that quarantine a node.
    pub quarantine_after: usize,
    /// Routed requests while quarantined before one probes the node.
    pub probe_after: usize,
}

impl Default for NodeBreakerConfig {
    fn default() -> Self {
        NodeBreakerConfig {
            enabled: true,
            quarantine_after: 2,
            probe_after: 8,
        }
    }
}

/// Public snapshot of one node's breaker state
/// ([`crate::ClusterRouter::node_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeHealth {
    /// Whether the node is currently quarantined out of routing.
    pub quarantined: bool,
    /// Availability strikes since the node's last clean response.
    pub consecutive_strikes: usize,
    /// Strikes over the router's lifetime.
    pub total_strikes: usize,
    /// Times the breaker tripped.
    pub quarantines: usize,
    /// Probe dispatches to this node while quarantined.
    pub probes: usize,
    /// Probes that came back clean and closed the breaker.
    pub reintegrations: usize,
    /// A dispatched probe has not reported back yet.
    pub probe_inflight: bool,
}

/// Counter increments one recorded outcome produced, applied to the
/// router's metrics after the breaker lock drops.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BreakerDelta {
    pub strikes: usize,
    pub quarantines: usize,
    pub reintegrations: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    quarantined: bool,
    probe_inflight: bool,
    consecutive: usize,
    since_quarantine: usize,
    total_strikes: usize,
    quarantines: usize,
    probes: usize,
    reintegrations: usize,
}

/// The mutable breaker behind the router's state mutex.
#[derive(Debug)]
pub(crate) struct FleetBreaker {
    config: NodeBreakerConfig,
    slots: Vec<Slot>,
}

impl FleetBreaker {
    pub(crate) fn new(config: NodeBreakerConfig, nodes: usize) -> Self {
        FleetBreaker {
            config,
            slots: vec![Slot::default(); nodes],
        }
    }

    /// Whether the node may take regular (non-probe) traffic.
    pub(crate) fn routable(&self, id: usize) -> bool {
        !self.config.enabled || !self.slots[id].quarantined
    }

    /// Whether the node's quarantine clock has earned it a probe.
    pub(crate) fn probe_ready(&self, id: usize) -> bool {
        let s = &self.slots[id];
        self.config.enabled
            && s.quarantined
            && !s.probe_inflight
            && s.since_quarantine >= self.config.probe_after
    }

    /// Marks a probe dispatch to `id` (single-flight: `probe_ready` goes
    /// false until the probe records or is declared lost).
    pub(crate) fn begin_probe(&mut self, id: usize) {
        let s = &mut self.slots[id];
        s.probe_inflight = true;
        s.since_quarantine = 0;
        s.probes += 1;
    }

    /// Advances every quarantined node's clock by one routed request,
    /// releasing probes that never reported (see module docs).
    pub(crate) fn tick(&mut self) {
        if !self.config.enabled {
            return;
        }
        for s in &mut self.slots {
            if !s.quarantined {
                continue;
            }
            s.since_quarantine += 1;
            if s.probe_inflight && s.since_quarantine >= self.config.probe_after.max(1) {
                // The in-flight probe is lost; let the next due request
                // probe again instead of waiting on it forever.
                s.probe_inflight = false;
            }
        }
    }

    /// Folds one dispatch outcome back in. `ok` is whether the node
    /// produced a response; `was_probe` whether the dispatch was the
    /// node's quarantine probe.
    pub(crate) fn record(&mut self, id: usize, ok: bool, was_probe: bool) -> BreakerDelta {
        let mut delta = BreakerDelta::default();
        if !self.config.enabled {
            return delta;
        }
        let s = &mut self.slots[id];
        if ok {
            s.consecutive = 0;
            if was_probe {
                s.probe_inflight = false;
                s.quarantined = false;
                s.reintegrations += 1;
                delta.reintegrations += 1;
            }
        } else {
            s.consecutive += 1;
            s.total_strikes += 1;
            delta.strikes += 1;
            if was_probe {
                // Failed probe: breaker stays open, probe clock restarts.
                s.probe_inflight = false;
                s.since_quarantine = 0;
            } else if !s.quarantined && s.consecutive >= self.config.quarantine_after.max(1) {
                s.quarantined = true;
                s.since_quarantine = 0;
                s.quarantines += 1;
                delta.quarantines += 1;
            }
        }
        delta
    }

    /// Strike pressure against a node that is still routable — used as a
    /// scoring penalty so a node one failure away from quarantine stops
    /// attracting traffic first.
    pub(crate) fn pressure(&self, id: usize) -> f64 {
        let s = &self.slots[id];
        if !self.config.enabled {
            return 0.0;
        }
        s.consecutive as f64 / self.config.quarantine_after.max(1) as f64
    }

    pub(crate) fn snapshot(&self) -> Vec<NodeHealth> {
        self.slots
            .iter()
            .map(|s| NodeHealth {
                quarantined: s.quarantined,
                consecutive_strikes: s.consecutive,
                total_strikes: s.total_strikes,
                quarantines: s.quarantines,
                probes: s.probes,
                reintegrations: s.reintegrations,
                probe_inflight: s.probe_inflight,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(quarantine_after: usize, probe_after: usize) -> NodeBreakerConfig {
        NodeBreakerConfig {
            enabled: true,
            quarantine_after,
            probe_after,
        }
    }

    #[test]
    fn strikes_quarantine_and_a_clean_probe_reintegrates() {
        let mut b = FleetBreaker::new(cfg(2, 3), 2);
        b.record(0, false, false);
        assert!(b.routable(0));
        b.record(0, false, false);
        assert!(!b.routable(0), "two strikes trip the breaker");
        assert!(!b.probe_ready(0));
        for _ in 0..3 {
            b.tick();
        }
        assert!(b.probe_ready(0), "probe due after the clock runs");
        b.begin_probe(0);
        assert!(!b.probe_ready(0), "single-flight probe");
        let delta = b.record(0, true, true);
        assert_eq!(delta.reintegrations, 1);
        assert!(b.routable(0));
        assert_eq!(b.snapshot()[0].reintegrations, 1);
    }

    #[test]
    fn failed_probe_restarts_the_clock() {
        let mut b = FleetBreaker::new(cfg(1, 2), 1);
        b.record(0, false, false);
        for _ in 0..2 {
            b.tick();
        }
        assert!(b.probe_ready(0));
        b.begin_probe(0);
        b.record(0, false, true);
        assert!(!b.routable(0));
        assert!(!b.probe_ready(0), "clock restarted");
        b.tick();
        b.tick();
        assert!(b.probe_ready(0), "and runs again");
    }

    #[test]
    fn lost_probe_is_released_by_the_clock() {
        let mut b = FleetBreaker::new(cfg(1, 2), 1);
        b.record(0, false, false);
        b.tick();
        b.tick();
        b.begin_probe(0);
        // The probe never records (its dispatcher died): two more routed
        // requests declare it lost and the node probes again.
        b.tick();
        b.tick();
        assert!(
            !b.snapshot()[0].probe_inflight,
            "lost probe must be released"
        );
        assert!(b.probe_ready(0));
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let mut b = FleetBreaker::new(
            NodeBreakerConfig {
                enabled: false,
                ..NodeBreakerConfig::default()
            },
            1,
        );
        for _ in 0..10 {
            let d = b.record(0, false, false);
            assert_eq!(d.strikes, 0);
        }
        assert!(b.routable(0));
        assert_eq!(b.pressure(0), 0.0);
    }
}
