//! One simulated fleet node: a whole [`Server`] (with its own devices,
//! per-device circuit breaker, and telemetry) behind a wall-clock fault
//! plan that can crash it, take it down in windows, or delay its
//! deliveries — the failure unit the cluster router routes around.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shmt::FaultPlan;
use shmt_serve::{Request, Response, ServeError, Server, SubmitError, Ticket};

use crate::error::ClusterError;

/// A window of wall-clock time during which a node's deliveries are
/// delayed by a fixed extra latency (a "slow node": overloaded NIC,
/// failing disk, noisy neighbor). The node still computes; its answers
/// just arrive late — exactly the tail hedging exists to cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWindow {
    /// Window start, seconds since the cluster epoch.
    pub from_s: f64,
    /// Window end (exclusive), seconds since the cluster epoch.
    pub until_s: f64,
    /// Extra delivery latency added to requests dispatched inside the
    /// window.
    pub extra: Duration,
}

/// Node-level chaos schedule, evaluated lazily against wall-clock time
/// since the cluster epoch — no timer threads, fully deterministic given
/// the same request arrival times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFaultPlan {
    /// The node crashes at this instant and never comes back. Requests
    /// in flight at the crash observe a lost connection.
    pub crash_at_s: Option<f64>,
    /// Transient down windows `[from_s, until_s)` — a flapping node.
    /// Submissions inside a window are refused; in-flight requests
    /// observe a lost connection.
    pub down_windows: Vec<(f64, f64)>,
    /// Delivery-delay windows (see [`SlowWindow`]).
    pub slow_windows: Vec<SlowWindow>,
    /// Device-level fault schedule applied to every single-VOP request
    /// this node serves (reseeded per request, so draws decorrelate
    /// while staying deterministic). [`FaultPlan::none`] leaves requests
    /// untouched.
    pub device_faults: FaultPlan,
}

impl NodeFaultPlan {
    /// A healthy node: no crash, no windows, no device faults.
    pub fn none() -> Self {
        NodeFaultPlan::default()
    }

    /// Crashes the node `at_s` seconds after the cluster epoch.
    #[must_use]
    pub fn with_crash_at(mut self, at_s: f64) -> Self {
        self.crash_at_s = Some(at_s);
        self
    }

    /// Adds a transient down window `[from_s, until_s)`.
    #[must_use]
    pub fn with_down_window(mut self, from_s: f64, until_s: f64) -> Self {
        self.down_windows.push((from_s, until_s));
        self
    }

    /// Adds a delivery-delay window.
    #[must_use]
    pub fn with_slow_window(mut self, from_s: f64, until_s: f64, extra: Duration) -> Self {
        self.slow_windows.push(SlowWindow {
            from_s,
            until_s,
            extra,
        });
        self
    }

    /// Applies a device-level fault schedule to every request the node
    /// serves.
    #[must_use]
    pub fn with_device_faults(mut self, faults: FaultPlan) -> Self {
        self.device_faults = faults;
        self
    }

    /// Whether the plan perturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.crash_at_s.is_none()
            && self.down_windows.is_empty()
            && self.slow_windows.is_empty()
            && self.device_faults.is_empty()
    }

    /// Whether the node is reachable at `t` seconds after the epoch.
    pub fn available_at(&self, t: f64) -> bool {
        if self.crash_at_s.is_some_and(|c| t >= c) {
            return false;
        }
        !self
            .down_windows
            .iter()
            .any(|&(from, until)| t >= from && t < until)
    }

    /// Extra delivery latency for a request dispatched at `t`.
    pub fn slow_extra_at(&self, t: f64) -> Option<Duration> {
        self.slow_windows
            .iter()
            .find(|w| t >= w.from_s && t < w.until_s)
            .map(|w| w.extra)
    }
}

/// Configuration for one cluster node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's serving layer (executors, queue bound, health breaker,
    /// telemetry, adaptation).
    pub server: shmt_serve::ServerConfig,
    /// The node's chaos schedule.
    pub faults: NodeFaultPlan,
}

impl NodeConfig {
    /// A healthy node around the given server configuration.
    pub fn new(server: shmt_serve::ServerConfig) -> Self {
        NodeConfig {
            server,
            faults: NodeFaultPlan::none(),
        }
    }

    /// Attaches a chaos schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: NodeFaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig::new(shmt_serve::ServerConfig::default())
    }
}

/// How one dispatch to one node failed, before any cluster-level policy
/// (retry, hedging, budget) is applied.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeError {
    /// The node was crashed or down when the dispatch was attempted.
    Unavailable,
    /// The node went away between dispatch and delivery — the canonical
    /// mid-flight crash: the request is *not* lost, the router retries
    /// it elsewhere.
    ConnectionLost,
    /// The node's admission queue was full (overload, not a fault).
    Busy,
    /// The attempt outlived its per-attempt timeout without a response.
    TimedOut,
    /// The node's serving layer returned a typed failure.
    Serve(ServeError),
}

impl NodeError {
    /// Whether this failure counts as breaker evidence against the node
    /// (availability faults do; overload and request-level failures that
    /// any node would produce do not).
    pub(crate) fn strikes_node(&self) -> bool {
        matches!(
            self,
            NodeError::Unavailable | NodeError::ConnectionLost | NodeError::TimedOut
        )
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            NodeError::Unavailable => "node unavailable".into(),
            NodeError::ConnectionLost => "connection lost mid-flight".into(),
            NodeError::Busy => "node admission queue full".into(),
            NodeError::TimedOut => "attempt timed out".into(),
            NodeError::Serve(e) => format!("serve error: {e}"),
        }
    }
}

/// One simulated node: a full serving stack plus its fault plan and
/// in-flight accounting.
pub(crate) struct ClusterNode {
    pub(crate) id: usize,
    server: Server,
    faults: NodeFaultPlan,
    epoch: Instant,
    inflight: AtomicUsize,
    dispatched: AtomicU64,
    /// Per-request salt for reseeding the node's device-fault plan.
    fault_salt: AtomicU64,
}

impl ClusterNode {
    pub(crate) fn new(id: usize, config: NodeConfig, epoch: Instant) -> Result<Self, ClusterError> {
        let server = Server::try_new(config.server)
            .map_err(|e| ClusterError::Request(ServeError::Internal(e.to_string())))?;
        Ok(ClusterNode {
            id,
            server,
            faults: config.faults,
            epoch,
            inflight: AtomicUsize::new(0),
            dispatched: AtomicU64::new(0),
            fault_salt: AtomicU64::new(0),
        })
    }

    pub(crate) fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Whether the node is reachable right now.
    pub(crate) fn available(&self) -> bool {
        self.faults.available_at(self.now_s())
    }

    pub(crate) fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    pub(crate) fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    pub(crate) fn server(&self) -> &Server {
        &self.server
    }

    pub(crate) fn shutdown(&mut self) {
        self.server.shutdown();
    }

    /// Dispatches a request. The returned ticket must be driven to
    /// resolution or abandoned via [`NodeTicket::abandon`]; both settle
    /// the node's in-flight count exactly once.
    pub(crate) fn submit(&self, mut request: Request) -> Result<NodeTicket, NodeError> {
        let t = self.now_s();
        if !self.faults.available_at(t) {
            return Err(NodeError::Unavailable);
        }
        if !self.faults.device_faults.is_empty()
            && request.vop().is_some()
            && request.faults.is_empty()
        {
            let salt = self.fault_salt.fetch_add(1, Ordering::Relaxed);
            request.faults = self.faults.device_faults.reseeded(salt);
        }
        let cancel = Arc::new(AtomicBool::new(false));
        request = request.with_cancel(Arc::clone(&cancel));
        let ticket = self.server.submit(request).map_err(|e| match e {
            SubmitError::Busy { .. } => NodeError::Busy,
            SubmitError::Shutdown(_) => NodeError::Unavailable,
        })?;
        self.inflight.fetch_add(1, Ordering::Relaxed);
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        let deliver_at = self
            .faults
            .slow_extra_at(t)
            .map(|extra| Instant::now() + extra);
        Ok(NodeTicket {
            node: self.id,
            ticket,
            cancel,
            deliver_at,
            held: None,
            finished: false,
        })
    }

    fn settle(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("id", &self.id)
            .field("inflight", &self.inflight())
            .field("faulted", &!self.faults.is_empty())
            .finish()
    }
}

/// An in-flight dispatch to one node: the serve ticket plus the node's
/// delivery model (slow windows, crash/flap at delivery time).
pub(crate) struct NodeTicket {
    pub(crate) node: usize,
    ticket: Ticket,
    cancel: Arc<AtomicBool>,
    deliver_at: Option<Instant>,
    held: Option<Result<Response, ServeError>>,
    finished: bool,
}

impl NodeTicket {
    /// Blocks up to `slice` for the node's serving layer to produce an
    /// outcome; the outcome is held until [`NodeTicket::poll`] clears
    /// delivery (slow windows delay it, crashes void it). When the
    /// outcome is already held but undeliverable (a slow window), the
    /// slice is slept instead — the waiter must never busy-spin a core
    /// the nodes need.
    pub(crate) fn pump(&mut self, slice: Duration) {
        if self.held.is_none() {
            if let Some(outcome) = self.ticket.wait_timeout(slice) {
                self.held = Some(outcome);
            }
        } else {
            let wait = match self.deliver_at {
                Some(at) => at.saturating_duration_since(Instant::now()).min(slice),
                None => Duration::ZERO,
            };
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// Non-blocking delivery check. `Some` settles the node's in-flight
    /// count; the ticket must not be polled again afterwards.
    pub(crate) fn poll(&mut self, node: &ClusterNode) -> Option<Result<Response, NodeError>> {
        debug_assert_eq!(node.id, self.node);
        if self.finished {
            return None;
        }
        if self.held.is_none() {
            self.held = self.ticket.try_take();
        }
        if !node.available() {
            // The node crashed or flapped down with this dispatch open:
            // whatever it computed, the reply never arrives. Cancel the
            // inner request (it may still be queued) and report the lost
            // connection so the router can retry elsewhere.
            self.cancel.store(true, Ordering::Relaxed);
            self.finished = true;
            node.settle();
            return Some(Err(NodeError::ConnectionLost));
        }
        if let Some(at) = self.deliver_at {
            if Instant::now() < at {
                return None;
            }
        }
        let outcome = self.held.take()?;
        self.finished = true;
        node.settle();
        Some(match outcome {
            Ok(resp) => Ok(resp),
            Err(e) => Err(NodeError::Serve(e)),
        })
    }

    /// Cancels the dispatch (hedging loser, or a timed-out attempt) and
    /// settles the in-flight count. The inner request observes its
    /// cancellation token at the next cancellation point; a response
    /// nobody reads is simply dropped.
    pub(crate) fn abandon(mut self, node: &ClusterNode) {
        debug_assert_eq!(node.id, self.node);
        self.cancel.store(true, Ordering::Relaxed);
        if !self.finished {
            self.finished = true;
            node.settle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_windows_evaluate_against_epoch_time() {
        let plan = NodeFaultPlan::none()
            .with_down_window(1.0, 2.0)
            .with_slow_window(3.0, 4.0, Duration::from_millis(50))
            .with_crash_at(10.0);
        assert!(plan.available_at(0.5));
        assert!(!plan.available_at(1.5));
        assert!(plan.available_at(2.5));
        assert_eq!(plan.slow_extra_at(3.5), Some(Duration::from_millis(50)));
        assert_eq!(plan.slow_extra_at(4.5), None);
        assert!(!plan.available_at(10.0));
        assert!(!plan.available_at(11.0), "a crash is permanent");
        assert!(!plan.is_empty());
        assert!(NodeFaultPlan::none().is_empty());
    }
}
