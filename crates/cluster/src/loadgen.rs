//! Open-loop load generation against a [`ClusterRouter`].
//!
//! Arrival times come from a seeded stochastic process (Poisson, bursty
//! Markov-modulated Poisson, or diurnal) laid out *before* the run —
//! open-loop, so a slow cluster does not slow the offered load down and
//! coordinated omission cannot hide queueing delay: every request's
//! latency is measured from its scheduled arrival, not from when a
//! worker got around to sending it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use shmt::{Platform, Policy, RuntimeConfig, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{Priority, Request};
use shmt_tensor::rng::Pcg32;

use crate::error::ClusterError;
use crate::router::{ClusterRouter, RouteOptions};

/// A seeded arrival process. All rates are requests per second; all
/// processes are deterministic given the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate.
        rate: f64,
    },
    /// Markov-modulated Poisson: the process flips between a quiet state
    /// and a burst state with exponentially distributed dwell times.
    Bursty {
        /// Arrival rate in the quiet state.
        base_rate: f64,
        /// Arrival rate inside a burst.
        burst_rate: f64,
        /// Mean burst duration, seconds.
        mean_on_s: f64,
        /// Mean quiet duration, seconds.
        mean_off_s: f64,
    },
    /// Sinusoidal rate modulation (a compressed day), sampled by
    /// thinning.
    Diurnal {
        /// Mean arrival rate over a full period.
        mean_rate: f64,
        /// Modulation period, seconds.
        period_s: f64,
        /// Modulation depth in `[0, 1)`: rate swings between
        /// `mean * (1 - depth)` and `mean * (1 + depth)`.
        depth: f64,
    },
}

/// Exponential draw via inversion; `1 - u` keeps `ln` away from zero.
fn exp_draw(rng: &mut Pcg32, rate: f64) -> f64 {
    let u = rng.next_f64();
    -(1.0 - u).ln() / rate.max(1e-9)
}

/// Lays out `n` arrival instants (seconds from the drive start) for the
/// given process. Monotonically non-decreasing.
pub fn arrival_times(process: ArrivalProcess, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut times = Vec::with_capacity(n);
    let mut t = 0.0f64;
    match process {
        ArrivalProcess::Poisson { rate } => {
            for _ in 0..n {
                t += exp_draw(&mut rng, rate);
                times.push(t);
            }
        }
        ArrivalProcess::Bursty {
            base_rate,
            burst_rate,
            mean_on_s,
            mean_off_s,
        } => {
            let mut bursting = false;
            let mut state_end = exp_draw(&mut rng, 1.0 / mean_off_s.max(1e-9));
            while times.len() < n {
                let rate = if bursting { burst_rate } else { base_rate };
                let next = t + exp_draw(&mut rng, rate);
                if next < state_end {
                    t = next;
                    times.push(t);
                } else {
                    // No arrival before the state flips; restart the
                    // (memoryless) draw under the new rate.
                    t = state_end;
                    bursting = !bursting;
                    let mean = if bursting { mean_on_s } else { mean_off_s };
                    state_end = t + exp_draw(&mut rng, 1.0 / mean.max(1e-9));
                }
            }
        }
        ArrivalProcess::Diurnal {
            mean_rate,
            period_s,
            depth,
        } => {
            let depth = depth.clamp(0.0, 0.99);
            let peak = mean_rate * (1.0 + depth);
            while times.len() < n {
                // Thinning: draw at the peak rate, accept with the
                // instantaneous relative rate.
                t += exp_draw(&mut rng, peak);
                let phase = (t / period_s.max(1e-9)) * std::f64::consts::TAU;
                let rate = mean_rate * (1.0 + depth * phase.sin());
                if rng.next_f64() < rate / peak {
                    times.push(t);
                }
            }
        }
    }
    times
}

/// Recipe for the requests a drive offers: the workload payload plus the
/// routing options every instance carries.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpec {
    /// Kernel benchmark the request runs.
    pub benchmark: Benchmark,
    /// Square input size (n x n).
    pub n: usize,
    /// Partition count for the runtime config.
    pub partitions: usize,
    /// Scheduling policy inside each node.
    pub policy: Policy,
    /// Input-generation seed (varied per instance by the drive).
    pub seed: u64,
    /// Routing options (class, deadline, affinity, quality SLO).
    pub options: RouteOptions,
}

impl RequestSpec {
    /// A Batch-class spec with default partitioning.
    pub fn new(benchmark: Benchmark, n: usize, seed: u64) -> Self {
        RequestSpec {
            benchmark,
            n,
            partitions: 4,
            policy: Policy::WorkStealing,
            seed,
            options: RouteOptions::default(),
        }
    }

    /// Sets the routing options.
    #[must_use]
    pub fn with_options(mut self, options: RouteOptions) -> Self {
        self.options = options;
        self
    }

    /// Builds one request instance. Called once per dispatch (retries
    /// and hedges each rebuild), deterministic per spec.
    pub fn build(&self) -> Request {
        let b = self.benchmark;
        let vop = Vop::from_benchmark(b, b.generate_inputs(self.n, self.n, self.seed))
            .expect("valid VOP");
        let mut config = RuntimeConfig::new(self.policy);
        config.partitions = self.partitions;
        Request::new(vop, Platform::jetson(b), config)
    }
}

/// Per-class tallies inside a [`DriveReport`], indexed by
/// [`Priority::index`].
pub type ByClass = [usize; 3];

/// What an open-loop drive observed, end to end.
#[derive(Debug, Clone, Default)]
pub struct DriveReport {
    /// Requests offered (the arrival schedule's length).
    pub offered: usize,
    /// Requests offered per class.
    pub offered_by_class: ByClass,
    /// Requests that returned a response.
    pub ok: usize,
    /// Requests shed by admission control, per class.
    pub shed_by_class: ByClass,
    /// Requests that failed with `DeadlineExceeded`.
    pub deadline_exceeded: usize,
    /// Requests that failed with `RetryBudgetExhausted`.
    pub budget_exhausted: usize,
    /// Requests that failed with `NodesExhausted`.
    pub nodes_exhausted: usize,
    /// Requests that failed terminally or hit a shut-down router.
    pub other_failed: usize,
    /// Offered requests that never resolved to any outcome. Zero unless
    /// a drive worker died — the "no request is lost" invariant.
    pub lost: usize,
    /// Requests that launched a hedge.
    pub hedged: usize,
    /// Requests whose hedge beat the primary.
    pub hedge_wins: usize,
    /// Extra dispatch tries beyond each request's first.
    pub retries: usize,
    /// Worst single end-to-end latency observed, seconds.
    pub max_latency_s: f64,
    /// Wall-clock span of the drive, seconds.
    pub wall_s: f64,
    /// Successful-response latencies (scheduled arrival to response),
    /// seconds, paired with the class index. Unsorted.
    pub samples: Vec<(usize, f64)>,
}

impl DriveReport {
    /// Completed throughput, responses per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ok as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Total requests shed across classes.
    pub fn shed(&self) -> usize {
        self.shed_by_class.iter().sum()
    }

    /// The `p`-th latency percentile (0..=100) over successful requests,
    /// seconds.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        Self::percentile_of(self.samples.iter().map(|&(_, s)| s), p)
    }

    /// The `p`-th latency percentile over one class's successes.
    pub fn class_percentile(&self, priority: Priority, p: f64) -> Option<f64> {
        let class = priority.index();
        Self::percentile_of(
            self.samples
                .iter()
                .filter(|&&(c, _)| c == class)
                .map(|&(_, s)| s),
            p,
        )
    }

    /// Mean latency over successful requests, seconds.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, s)| s).sum::<f64>() / self.samples.len() as f64)
    }

    fn percentile_of(samples: impl Iterator<Item = f64>, p: f64) -> Option<f64> {
        let mut v: Vec<f64> = samples.collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p / 100.0).clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[rank.min(v.len() - 1)])
    }

    fn absorb(&mut self, other: DriveReport) {
        self.ok += other.ok;
        for c in 0..3 {
            self.offered_by_class[c] += other.offered_by_class[c];
            self.shed_by_class[c] += other.shed_by_class[c];
        }
        self.deadline_exceeded += other.deadline_exceeded;
        self.budget_exhausted += other.budget_exhausted;
        self.nodes_exhausted += other.nodes_exhausted;
        self.other_failed += other.other_failed;
        self.hedged += other.hedged;
        self.hedge_wins += other.hedge_wins;
        self.retries += other.retries;
        self.max_latency_s = self.max_latency_s.max(other.max_latency_s);
        self.samples.extend(other.samples);
    }
}

/// Drives the arrival schedule against the router with `workers`
/// open-loop sender threads and tallies every outcome. Requests cycle
/// through `specs` in arrival order (instance `i` uses
/// `specs[i % specs.len()]` with a decorrelated input seed).
///
/// Latency is measured from each request's *scheduled* arrival, so time
/// a saturated cluster spends making the sender wait counts against it.
pub fn drive(
    router: &ClusterRouter,
    specs: &[RequestSpec],
    arrivals: &[f64],
    workers: usize,
) -> DriveReport {
    assert!(!specs.is_empty(), "drive needs at least one request spec");
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let mut report = DriveReport {
        offered: arrivals.len(),
        ..DriveReport::default()
    };
    let worker_reports: Vec<DriveReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = DriveReport::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= arrivals.len() {
                            break;
                        }
                        let spec = &specs[i % specs.len()];
                        let scheduled = started + Duration::from_secs_f64(arrivals[i].max(0.0));
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let mut spec = *spec;
                        spec.seed = spec.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9);
                        let class = spec.options.priority.index();
                        local.offered_by_class[class] += 1;
                        let outcome = router.route(spec.options, &|| spec.build());
                        let latency_s = scheduled.elapsed().as_secs_f64();
                        match outcome {
                            Ok(resp) => {
                                local.ok += 1;
                                local.retries += resp.tries.saturating_sub(1);
                                if resp.hedged {
                                    local.hedged += 1;
                                }
                                if resp.hedge_won {
                                    local.hedge_wins += 1;
                                }
                                local.samples.push((class, latency_s));
                            }
                            Err(ClusterError::Shed { priority, .. }) => {
                                local.shed_by_class[priority.index()] += 1;
                            }
                            Err(ClusterError::DeadlineExceeded { .. }) => {
                                local.deadline_exceeded += 1;
                            }
                            Err(ClusterError::RetryBudgetExhausted { .. }) => {
                                local.budget_exhausted += 1;
                            }
                            Err(ClusterError::NodesExhausted { .. }) => {
                                local.nodes_exhausted += 1;
                            }
                            Err(ClusterError::Request(_)) | Err(ClusterError::Shutdown) => {
                                local.other_failed += 1;
                            }
                        }
                        local.max_latency_s = local.max_latency_s.max(latency_s);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    for wr in worker_reports {
        report.absorb(wr);
    }
    report.wall_s = started.elapsed().as_secs_f64();
    let resolved = report.ok
        + report.shed()
        + report.deadline_exceeded
        + report.budget_exhausted
        + report.nodes_exhausted
        + report.other_failed;
    report.lost = report.offered.saturating_sub(resolved);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_processes_are_seeded_monotone_and_rate_faithful() {
        for process in [
            ArrivalProcess::Poisson { rate: 200.0 },
            ArrivalProcess::Bursty {
                base_rate: 50.0,
                burst_rate: 500.0,
                mean_on_s: 0.05,
                mean_off_s: 0.2,
            },
            ArrivalProcess::Diurnal {
                mean_rate: 200.0,
                period_s: 1.0,
                depth: 0.6,
            },
        ] {
            let a = arrival_times(process, 2000, 7);
            let b = arrival_times(process, 2000, 7);
            let c = arrival_times(process, 2000, 8);
            assert_eq!(a, b, "same seed, same schedule");
            assert_ne!(a, c, "different seed, different schedule");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone arrivals");
            assert!(a.iter().all(|&t| t >= 0.0));
        }
        // Poisson mean rate within 15% of nominal.
        let times = arrival_times(ArrivalProcess::Poisson { rate: 1000.0 }, 10_000, 3);
        let span = times.last().copied().unwrap_or(0.0);
        let rate = 10_000.0 / span;
        assert!((850.0..1150.0).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn percentiles_are_exact_on_known_samples() {
        let mut r = DriveReport::default();
        for i in 1..=100 {
            r.samples.push((Priority::Batch.index(), i as f64));
        }
        assert_eq!(r.latency_percentile(0.0), Some(1.0));
        assert_eq!(r.latency_percentile(100.0), Some(100.0));
        assert_eq!(r.latency_percentile(50.0), Some(51.0));
        assert_eq!(r.class_percentile(Priority::Interactive, 50.0), None);
        assert_eq!(r.class_percentile(Priority::Batch, 99.0), Some(99.0));
    }
}
