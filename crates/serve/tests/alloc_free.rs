//! Counting-allocator proof of the alloc-free steady state.
//!
//! This binary installs a `#[global_allocator]` that wraps [`System`]
//! and counts every `alloc` / `alloc_zeroed` / `realloc` call. With the
//! buffer arenas warm (tensor pages in `shmt_tensor::arena`, runtime
//! spines in `shmt::arena`, persistent `ComputePool` workers), a
//! `ShmtRuntime::execute` + `recycle_report` cycle must perform **zero**
//! heap allocations, and a full `Server` round trip must stay within a
//! small bounded constant (ticket/channel plumbing only). A cold-start
//! case documents the other side of the contract: the first run after
//! clearing the arena *does* allocate — growth happens once, not per
//! request.
//!
//! The counter is process-global, so every test serializes on one mutex
//! and keeps allocation-heavy setup outside its measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use shmt::arena::recycle_report;
use shmt::{Platform, Policy, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{Request, Server, ServerConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One counter, one process: measured windows must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

fn sobel_vop(n: usize, seed: u64) -> Vop {
    let b = Benchmark::Sobel;
    Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).expect("valid VOP")
}

fn runtime(partitions: usize) -> ShmtRuntime {
    let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
    cfg.partitions = partitions;
    ShmtRuntime::new(Platform::jetson(Benchmark::Sobel), cfg)
}

/// The tentpole claim, verified literally: once the arenas are warm, a
/// `ShmtRuntime::execute` + `recycle_report` cycle allocates nothing.
#[test]
fn warm_execute_performs_zero_heap_allocations() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let vop = sobel_vop(128, 3);
    let rt = runtime(8);
    // Warm-up: grows the tensor arena, the spine pools, and the global
    // compute pool's worker threads. All of this is one-time cost.
    for _ in 0..8 {
        recycle_report(rt.execute(&vop).expect("warm-up run succeeds"));
    }
    let before = allocs();
    for _ in 0..5 {
        recycle_report(rt.execute(&vop).expect("warm run succeeds"));
    }
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "warm execute+recycle cycles must be alloc-free, saw {grew} allocations over 5 runs"
    );
}

/// Same claim under the QAWS planner: the sampling/assignment path is
/// decision-side arithmetic over pooled spines.
#[test]
fn warm_qaws_execute_performs_zero_heap_allocations() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let vop = sobel_vop(128, 5);
    let mut cfg = RuntimeConfig::new(Policy::Qaws {
        assignment: shmt::QawsAssignment::TopK,
        sampling: shmt::sampling::SamplingMethod::Striding,
    });
    cfg.partitions = 8;
    let rt = ShmtRuntime::new(Platform::jetson(Benchmark::Sobel), cfg);
    for _ in 0..8 {
        recycle_report(rt.execute(&vop).expect("warm-up run succeeds"));
    }
    let before = allocs();
    for _ in 0..5 {
        recycle_report(rt.execute(&vop).expect("warm run succeeds"));
    }
    let grew = allocs() - before;
    assert_eq!(
        grew, 0,
        "warm QAWS execute+recycle must be alloc-free, saw {grew} allocations over 5 runs"
    );
}

/// A full server round trip may allocate — tickets, channels, latency
/// samples — but the count must be a small bounded constant, not scale
/// with the dataset (a 128x128 Sobel run touches ~50k elements; pre-
/// arena it cost hundreds of allocations in tensor pages and spines).
#[test]
fn warm_server_request_allocations_are_bounded() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let make = |seed: u64| {
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = 8;
        Request::new(
            sobel_vop(128, seed),
            Platform::jetson(Benchmark::Sobel),
            cfg,
        )
    };
    for seed in 0..10 {
        let response = server
            .submit_blocking(make(seed))
            .expect("server running")
            .wait()
            .expect("warm-up request succeeds");
        recycle_report(response.report);
    }
    // Request construction (input generation) is client-side work; keep
    // it out of the serving window.
    let requests: Vec<Request> = (10..15).map(make).collect();
    let n = requests.len() as u64;
    let before = allocs();
    for request in requests {
        let response = server
            .submit_blocking(request)
            .expect("server running")
            .wait()
            .expect("warm request succeeds");
        recycle_report(response.report);
    }
    let per_request = (allocs() - before) / n;
    assert!(
        per_request < 100,
        "warm serve round trips must stay within a small allocation constant, \
         saw {per_request} allocations per request"
    );
}

/// The other side of the contract: after `shmt::arena::clear()` the next
/// run must rebuild the page cache — growth is real, it just happens
/// once instead of per request.
#[test]
fn cold_start_allocates_then_settles() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let vop = sobel_vop(128, 9);
    let rt = runtime(8);
    // Make sure the spine pools and compute pool exist so the only cold
    // element is the tensor-page arena we explicitly clear.
    for _ in 0..4 {
        recycle_report(rt.execute(&vop).expect("warm-up run succeeds"));
    }
    shmt::arena::clear();
    let before = allocs();
    recycle_report(rt.execute(&vop).expect("cold run succeeds"));
    let cold = allocs() - before;
    assert!(
        cold > 0,
        "first run after clearing the arena must allocate pages"
    );
    let before = allocs();
    recycle_report(rt.execute(&vop).expect("warm run succeeds"));
    let warm = allocs() - before;
    assert_eq!(
        warm, 0,
        "one run refills the arena; the next is alloc-free again (saw {warm})"
    );
}
