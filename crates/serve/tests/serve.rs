//! Serving-layer contract tests: backpressure, deadlines, shutdown
//! cancellation, sequential-vs-concurrent bit-identity, device-health
//! quarantine, per-request quality SLOs, QoS priority classes, and the
//! adaptive-calibration loop.

use std::time::Duration;

use shmt::calibration::{bench_profile, Calibration};
use shmt::sched::{GPU, TPU};
use shmt::{AdaptiveConfig, FaultPlan, Platform, Policy, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{
    Anomaly, HealthConfig, Priority, Request, ServeError, Server, ServerConfig, SubmitError,
};

fn request(b: Benchmark, n: usize, seed: u64, policy: Policy) -> Request {
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).expect("valid VOP");
    let mut config = RuntimeConfig::new(policy);
    config.partitions = 8;
    Request::new(vop, Platform::jetson(b), config)
}

/// Spins until the executor team has popped a request off the queue — an
/// executor pushes a queue-depth gauge sample of 0 when it takes the
/// only queued item — so the caller knows later submissions sit behind a
/// busy executor rather than racing it. Only meaningful while a single
/// request has been submitted: the admission-side gauge sample is then
/// always 1, so a 0 anywhere in the series must be the executor's
/// (samples are not ordered across the two pushers).
fn wait_until_executor_popped(server: &Server) {
    while !server
        .metrics()
        .gauge_series("serve.queue_depth")
        .iter()
        .any(|&(_, depth)| depth == 0.0)
    {
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn submit_returns_busy_at_capacity_and_recovers() {
    // One executor, capacity one: hold the executor on a request, fill
    // the single queue slot, and the next submit must bounce.
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    // Built before submission: generating inputs inside the submit
    // sequence would pace this thread at the executor's own speed.
    let blocker = request(Benchmark::Sobel, 512, 1, Policy::WorkStealing);
    let filler = request(Benchmark::Sobel, 128, 2, Policy::WorkStealing);
    let extra = request(Benchmark::Sobel, 128, 3, Policy::WorkStealing);
    let first = server.submit(blocker).expect("first request admitted");
    wait_until_executor_popped(&server);
    let second = server.submit(filler).expect("freed slot admits");
    match server.submit(extra) {
        Err(SubmitError::Busy {
            request: returned,
            depth,
            capacity,
        }) => {
            // The request comes back intact for retry elsewhere, with the
            // observed load attached so the caller can size its backoff.
            assert!(returned.deadline.is_none());
            assert_eq!(depth, 1);
            assert_eq!(capacity, 1);
        }
        Ok(_) => panic!("a full queue must reject"),
        Err(SubmitError::Shutdown(_)) => panic!("server is running"),
    }
    assert!(server.metrics().counter("serve.rejected_busy") >= 1.0);
    // Everything admitted still completes.
    first.wait().expect("blocker completes");
    second.wait().expect("queued request completes");
}

#[test]
fn submit_blocking_waits_instead_of_bouncing() {
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let tickets: Vec<_> = (0..6)
        .map(|seed| {
            server
                .submit_blocking(request(
                    Benchmark::MeanFilter,
                    128,
                    seed,
                    Policy::WorkStealing,
                ))
                .expect("server running")
        })
        .collect();
    for t in tickets {
        t.wait().expect("all blocking submissions complete");
    }
    assert_eq!(server.metrics().counter("serve.completed"), 6.0);
    assert_eq!(server.metrics().counter("serve.rejected_busy"), 0.0);
}

#[test]
fn queued_deadline_produces_typed_error_not_a_hang() {
    // One executor busy on a big request; a zero deadline on the queued
    // request must lapse while it waits.
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let blocker = server
        .submit(request(Benchmark::Sobel, 512, 1, Policy::WorkStealing))
        .expect("admitted");
    let doomed = server
        .submit(
            request(Benchmark::Sobel, 512, 2, Policy::WorkStealing).with_deadline(Duration::ZERO),
        )
        .expect("admitted");
    match doomed.wait() {
        Err(ServeError::DeadlineExceeded { waited, deadline }) => {
            assert_eq!(deadline, Duration::ZERO);
            assert!(waited >= deadline);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    blocker.wait().expect("blocker unaffected");
    assert_eq!(server.metrics().counter("serve.deadline_missed"), 1.0);
}

#[test]
fn ticket_wait_timeout_returns_none_while_in_flight() {
    let server = Server::new(ServerConfig::default());
    let ticket = server
        .submit(request(Benchmark::Sobel, 512, 3, Policy::WorkStealing))
        .expect("admitted");
    // Either still in flight (None) or already done (Some(Ok)) — never a
    // hang, never an error.
    match ticket.wait_timeout(Duration::from_micros(1)) {
        None => {
            let outcome = ticket
                .wait_timeout(Duration::from_secs(30))
                .expect("completes well within 30s");
            outcome.expect("request succeeds");
        }
        Some(outcome) => {
            outcome.expect("request succeeds");
        }
    }
}

#[test]
fn shutdown_cancels_queued_requests() {
    let mut server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    });
    // Build every request up front: generating a 512^2 input inside the
    // submit loop would hand the lone executor a long head start.
    let blocker = request(Benchmark::Sobel, 512, 0, Policy::WorkStealing);
    let queued: Vec<_> = (1..5)
        .map(|seed| request(Benchmark::Sobel, 128, seed, Policy::WorkStealing))
        .collect();
    let mut tickets = vec![server.submit(blocker).expect("admitted")];
    // With the executor busy on the blocker, the requests below really
    // sit in the queue when shutdown drains it.
    wait_until_executor_popped(&server);
    for req in queued {
        tickets.push(server.submit(req).expect("admitted"));
    }
    server.shutdown();
    let mut canceled = 0;
    let mut completed = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(ServeError::Canceled) => canceled += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(canceled + completed, 5);
    assert!(canceled >= 1, "queued requests are canceled, not leaked");
    // Post-shutdown submission is refused with the request handed back.
    match server.submit(request(Benchmark::Sobel, 128, 9, Policy::WorkStealing)) {
        Err(SubmitError::Shutdown(_)) => {}
        other => panic!("expected Shutdown, got {other:?}"),
    }
}

#[test]
fn concurrent_serving_is_bit_identical_to_sequential() {
    let cases: Vec<(Benchmark, u64, Policy)> = vec![
        (Benchmark::Sobel, 11, Policy::WorkStealing),
        (Benchmark::MeanFilter, 12, Policy::WorkStealing),
        (Benchmark::Fft, 13, Policy::EvenDistribution),
        (Benchmark::Sobel, 14, Policy::EvenDistribution),
        (Benchmark::MeanFilter, 15, Policy::WorkStealing),
        (Benchmark::Fft, 16, Policy::WorkStealing),
    ];
    // Sequential references, one runtime per case.
    let references: Vec<_> = cases
        .iter()
        .map(|&(b, seed, policy)| {
            let req = request(b, 192, seed, policy);
            ShmtRuntime::new(req.platform.clone(), req.config)
                .execute(req.vop().expect("single-VOP request"))
                .expect("sequential run succeeds")
                .output
        })
        .collect();
    // The same cases through a concurrent server.
    let server = Server::new(ServerConfig {
        executors: 4,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let tickets: Vec<_> = cases
        .iter()
        .map(|&(b, seed, policy)| {
            server
                .submit_blocking(request(b, 192, seed, policy))
                .expect("server running")
        })
        .collect();
    for (ticket, reference) in tickets.into_iter().zip(&references) {
        let response = ticket.wait().expect("served run succeeds");
        assert_eq!(
            response.report.output.as_slice(),
            reference.as_slice(),
            "served output must be bit-identical to sequential execution"
        );
    }
    // Latency summaries cover every policy seen.
    let summaries = server.latency_summaries();
    assert!(summaries.iter().any(|s| s.policy == "work-stealing"));
    assert!(summaries.iter().any(|s| s.policy == "even distribution"));
    for s in &summaries {
        assert!(s.queue_wait.p50_s <= s.queue_wait.p99_s);
        assert!(s.service.p50_s <= s.service.p99_s);
        assert!(s.service.max_s > 0.0);
    }
}

/// One request run to completion on a single-executor server, so health
/// decisions are strictly sequential and deterministic.
fn serve_one(server: &Server, req: Request) -> Result<shmt_serve::Response, ServeError> {
    server.submit_blocking(req).expect("server running").wait()
}

#[test]
fn repeated_dropouts_quarantine_probe_and_reintegrate() {
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        health: HealthConfig {
            enabled: true,
            quarantine_after: 2,
            probe_after: 1,
        },
        ..ServerConfig::default()
    });
    // The TPU dies at t=0 on the faulted requests: each completes
    // degraded, striking the TPU once.
    let dropout = FaultPlan::none().with_dropout(TPU, 1e-9);
    for _ in 0..2 {
        let resp = serve_one(
            &server,
            request(Benchmark::Sobel, 128, 1, Policy::WorkStealing).with_faults(dropout.clone()),
        )
        .expect("dropout runs still complete");
        assert!(resp.degraded, "a run that lost a device is degraded");
        assert!(resp.report.faults.lost[TPU]);
    }
    let health = server.device_health();
    assert!(health[TPU].quarantined, "two strikes must trip the breaker");
    assert_eq!(health[TPU].total_strikes, 2);

    // Quarantined: the next clean request runs without the TPU and is
    // flagged degraded even though nothing faulted during it.
    let resp = serve_one(
        &server,
        request(Benchmark::Sobel, 128, 2, Policy::WorkStealing),
    )
    .expect("masked run completes");
    assert!(resp.degraded, "health-masked responses are degraded");
    assert!(!resp.report.faults.degraded, "no fault fired in the run");
    assert_eq!(resp.report.tpu_fraction, 0.0, "TPU masked out");

    // The probe clock has ticked once; the next request probes the TPU,
    // runs clean, and reintegrates it.
    let resp = serve_one(
        &server,
        request(Benchmark::Sobel, 128, 3, Policy::WorkStealing),
    )
    .expect("probe run completes");
    assert!(!resp.degraded, "the probe serves with the full mask");
    assert!(resp.report.tpu_fraction > 0.0, "probe re-admits the TPU");
    let health = server.device_health();
    assert!(!health[TPU].quarantined, "clean probe closes the breaker");
    assert_eq!(health[TPU].probes, 1);
    assert_eq!(health[TPU].reintegrations, 1);

    let metrics = server.metrics();
    assert_eq!(metrics.counter("health.strike"), 2.0);
    assert_eq!(metrics.counter("health.quarantine"), 1.0);
    assert_eq!(metrics.counter("health.probe"), 1.0);
    assert_eq!(metrics.counter("health.reintegrate"), 1.0);
    // Two dropout runs plus the masked run served degraded.
    assert_eq!(metrics.counter("serve.degraded"), 3.0);
}

#[test]
fn priority_classes_order_queue_waits() {
    // One executor pinned on a blocker while a backlog of nine equal
    // requests builds, submitted in *reverse* priority order so plain
    // FIFO would favor BestEffort. Stride dequeue must drain the
    // backlog so that mean queue wait orders Interactive < Batch <
    // BestEffort, without starving any class.
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let blocker = request(Benchmark::Sobel, 512, 60, Policy::WorkStealing);
    // Build all requests up front so submission is near-instantaneous.
    let backlog: Vec<Request> = [Priority::BestEffort, Priority::Batch, Priority::Interactive]
        .into_iter()
        .flat_map(|class| {
            (0..3).map(move |i| {
                request(Benchmark::Sobel, 128, 70 + i, Policy::WorkStealing).with_priority(class)
            })
        })
        .collect();
    let first = server.submit(blocker).expect("blocker admitted");
    wait_until_executor_popped(&server);
    let tickets: Vec<_> = backlog
        .into_iter()
        .map(|req| {
            let class = req.priority;
            (class, server.submit(req).expect("backlog admitted"))
        })
        .collect();
    first.wait().expect("blocker completes");
    let mut waits = [(0.0, 0usize); 3];
    for (class, t) in tickets {
        let resp = t.wait().expect("every class completes — no starvation");
        let slot = &mut waits[class.index()];
        slot.0 += resp.queue_wait.as_secs_f64();
        slot.1 += 1;
    }
    let mean = |class: Priority| {
        let (sum, count) = waits[class.index()];
        assert_eq!(count, 3, "{} requests all completed", class.name());
        sum / count as f64
    };
    let (i, b, e) = (
        mean(Priority::Interactive),
        mean(Priority::Batch),
        mean(Priority::BestEffort),
    );
    assert!(
        i < b && b < e,
        "queue waits must order by class: interactive {i:.4}s, batch {b:.4}s, best_effort {e:.4}s"
    );
    // The per-class summaries track the same traffic (the blocker rides
    // in the default Batch class), in dequeue-preference order.
    let classes = server.class_summaries();
    assert_eq!(
        classes.iter().map(|c| c.class.as_str()).collect::<Vec<_>>(),
        vec!["interactive", "batch", "best_effort"],
        "summaries come in dequeue-preference order"
    );
    assert_eq!(
        classes.iter().map(|c| c.queue_wait.count).sum::<usize>(),
        10,
        "nine backlog requests plus the blocker"
    );
}

#[test]
fn adaptive_loop_recalibrates_from_observed_slowdown() {
    // Serve repeated Sobel requests under an injected 4x GPU slowdown
    // with the adaptive loop on. Once the observatory's GPU EWMA clears
    // the confidence gate, the per-opcode calibration must leave
    // neutral — counted by `serve.adapted` and flight-recorded.
    let platform = Platform::with_profiles(
        // Slow GPU so per-partition compute dwarfs launch overhead and
        // the slowdown is visible in elements-per-busy-second.
        Calibration {
            gpu_throughput: 1.0e6,
            ..Calibration::default()
        },
        bench_profile(Benchmark::Sobel),
    );
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        adapt: AdaptiveConfig::enabled(),
        ..ServerConfig::default()
    });
    let slowdown = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0);
    for i in 0..6 {
        let b = Benchmark::Sobel;
        let vop = Vop::from_benchmark(b, b.generate_inputs(96, 96, 80 + i)).expect("valid VOP");
        let mut config = RuntimeConfig::new(Policy::WorkStealing);
        config.partitions = 8;
        let req = Request::new(vop, platform.clone(), config).with_faults(slowdown.clone());
        server
            .submit_blocking(req)
            .expect("server running")
            .wait()
            .expect("slowed request completes");
    }
    assert!(
        server.metrics().counter("serve.adapted") >= 1.0,
        "a sustained 4x slowdown must produce at least one adaptation event"
    );
    assert!(
        server
            .flight_records()
            .iter()
            .any(|r| r.anomalies.contains(&Anomaly::Adaptation)),
        "adaptation events are flight-recorded"
    );
}

#[test]
fn quality_slo_without_an_exact_device_fails_typed() {
    let server = Server::new(ServerConfig::default());
    // TPU-only mask: every partition is approximate and there is no
    // exact device left to verify or repair with.
    let mut req = request(Benchmark::Sobel, 128, 4, Policy::WorkStealing).with_max_mape(1e-6);
    req.config.device_mask = [false, false, true];
    match serve_one(&server, req) {
        Err(ServeError::QualityUnattainable { budget_mape, .. }) => {
            assert_eq!(budget_mape, 1e-6);
        }
        other => panic!("expected QualityUnattainable, got {other:?}"),
    }
    assert_eq!(server.metrics().counter("serve.quality_unattainable"), 1.0);
    assert_eq!(server.metrics().counter("serve.failed"), 0.0);
}

#[test]
fn quality_slo_repairs_miscalibrated_output_within_budget() {
    let server = Server::new(ServerConfig::default());
    let budget = 0.05;
    let resp = serve_one(
        &server,
        request(Benchmark::Sobel, 128, 5, Policy::WorkStealing)
            .with_max_mape(budget)
            .with_faults(FaultPlan::none().with_tpu_miscalibration(1.5, 0.1)),
    )
    .expect("guarded run repairs its way under budget");
    let q = &resp.report.quality;
    assert!(q.enabled, "the SLO must have enabled the guard");
    assert!(
        !q.repairs.is_empty(),
        "a 1.5x gain error must exceed a {budget} MAPE budget somewhere"
    );
    assert!(
        q.true_mape <= budget,
        "served quality {} must honor the SLO {budget}",
        q.true_mape
    );
    assert!(!resp.degraded, "no device was lost or masked");
    // Guard repairs are health evidence against the TPU.
    assert_eq!(server.device_health()[TPU].total_strikes, 1);
}

#[test]
fn cancel_token_fails_queued_request_typed() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // One executor pinned on a blocker; a queued request whose token is
    // set must resolve Canceled at pickup without touching a device,
    // while an uncanceled sibling completes normally.
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let blocker = request(Benchmark::Sobel, 512, 20, Policy::WorkStealing);
    let token = Arc::new(AtomicBool::new(false));
    let doomed =
        request(Benchmark::Sobel, 128, 21, Policy::WorkStealing).with_cancel(Arc::clone(&token));
    let sibling = request(Benchmark::Sobel, 128, 22, Policy::WorkStealing);
    let first = server.submit(blocker).expect("admitted");
    wait_until_executor_popped(&server);
    let doomed = server.submit(doomed).expect("admitted");
    let sibling = server.submit(sibling).expect("admitted");
    token.store(true, Ordering::Relaxed);
    match doomed.wait() {
        Err(ServeError::Canceled) => {}
        other => panic!("expected Canceled, got {other:?}"),
    }
    first.wait().expect("blocker unaffected");
    sibling.wait().expect("uncanceled sibling completes");
    assert_eq!(server.metrics().counter("serve.canceled"), 1.0);
    assert_eq!(server.metrics().counter("serve.failed"), 0.0);
}

#[test]
fn probe_racing_shutdown_resolves_typed_without_sticking_quarantine() {
    // Regression for the probe/shutdown race: a request that *would*
    // probe a quarantined device, drained by shutdown before an executor
    // reaches it, must resolve to a typed Canceled — and must not leave
    // the breaker holding a phantom in-flight probe.
    let mut server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        health: HealthConfig {
            enabled: true,
            quarantine_after: 1,
            probe_after: 1,
        },
        ..ServerConfig::default()
    });
    let dropout = FaultPlan::none().with_dropout(TPU, 1e-9);
    serve_one(
        &server,
        request(Benchmark::Sobel, 128, 30, Policy::WorkStealing).with_faults(dropout),
    )
    .expect("dropout run completes degraded");
    assert!(server.device_health()[TPU].quarantined);

    // Pin the executor (its plan ticks the probe clock to due), queue
    // the would-be probe, then shut down while it still sits in the
    // queue. Earlier requests already left 0-depth gauge samples, so
    // wait for a *new* one rather than reusing the fresh-server helper.
    let zero_depth_samples = |server: &Server| {
        server
            .metrics()
            .gauge_series("serve.queue_depth")
            .iter()
            .filter(|&&(_, depth)| depth == 0.0)
            .count()
    };
    let blocker = request(Benchmark::Sobel, 512, 31, Policy::WorkStealing);
    let probe = request(Benchmark::Sobel, 128, 32, Policy::WorkStealing);
    let seen = zero_depth_samples(&server);
    let first = server.submit(blocker).expect("admitted");
    while zero_depth_samples(&server) == seen {
        std::thread::sleep(Duration::from_millis(1));
    }
    let probe = server.submit(probe).expect("admitted");
    server.shutdown();
    first.wait().expect("running request finishes normally");
    match probe.wait() {
        Err(ServeError::Canceled) => {}
        other => panic!("expected Canceled, got {other:?}"),
    }
    let health = server.device_health()[TPU];
    assert!(
        !health.probe_inflight,
        "a drained probe request must not leave the breaker awaiting a verdict"
    );
    assert!(health.quarantined, "the breaker simply stays open");
}

mod dag_serving {
    use super::*;
    use shmt::dag::{DagConfig, DagNode, VopDag};
    use shmt::Tensor;
    use shmt_kernels::primitives::UnaryOp;
    use shmt_tensor::gen;

    fn pipeline() -> (VopDag, Tensor) {
        let dag = VopDag::new(vec![
            DagNode::benchmark(Benchmark::Sobel, 3, vec![]),
            DagNode::unary(UnaryOp::Sqrt, 0),
        ])
        .expect("valid DAG");
        (dag, gen::image8(96, 96, 11))
    }

    fn dag_config() -> RuntimeConfig {
        let mut config = RuntimeConfig::new(Policy::WorkStealing);
        config.partitions = 8;
        config
    }

    #[test]
    fn served_dag_is_bit_identical_to_direct_execution() {
        let (dag, input) = pipeline();
        let reference = dag
            .run(&input, &DagConfig::new(dag_config()))
            .expect("direct DAG run succeeds")
            .output;
        let server = Server::new(ServerConfig::default());
        let response = server
            .submit_blocking(Request::with_program(dag, input, dag_config()))
            .expect("admitted")
            .wait()
            .expect("served");
        assert_eq!(response.report.output.as_slice(), reference.as_slice());
        assert!(response.report.makespan_s > 0.0);
        // The dag.* counters feed the merged observatory snapshot.
        let metrics = server.observatory().metrics().clone();
        assert_eq!(metrics.counter("dag.requests"), 1.0);
        assert_eq!(metrics.counter("dag.stages"), 2.0);
        assert!(metrics.counter("dag.naive_bus_bytes") > metrics.counter("dag.resident_bus_bytes"));
    }

    #[test]
    fn dag_with_fault_plan_fails_typed() {
        let (dag, input) = pipeline();
        let server = Server::new(ServerConfig::default());
        let req = Request::with_program(dag, input, dag_config())
            .with_faults(FaultPlan::none().with_dropout(0, 0.0));
        let err = server
            .submit_blocking(req)
            .expect("admitted")
            .wait()
            .expect_err("fault plans are single-VOP only");
        assert!(matches!(err, ServeError::Runtime(_)), "{err}");
    }

    #[test]
    fn lapsed_pipeline_deadline_fails_typed() {
        // Big enough that execution takes far longer than the deadline:
        // the between-stage poll fires and the DAG stops early. (If the
        // machine is so loaded the deadline lapses while still queued,
        // the queue-side check produces the same typed error.)
        let dag = VopDag::new(vec![
            DagNode::benchmark(Benchmark::Sobel, 3, vec![]),
            DagNode::unary(UnaryOp::Sqrt, 0),
        ])
        .expect("valid DAG");
        let server = Server::new(ServerConfig::default());
        let req = Request::with_program(dag, gen::image8(512, 512, 11), dag_config())
            .with_deadline(Duration::from_millis(2));
        let err = server
            .submit_blocking(req)
            .expect("admitted")
            .wait()
            .expect_err("deadline lapsed");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
        assert_eq!(server.metrics().counter("serve.deadline_missed"), 1.0);
    }
}
