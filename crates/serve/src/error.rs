//! Typed serving errors: admission rejections and request failures.

use std::fmt;
use std::time::Duration;

use crate::server::Request;

/// Why [`crate::Server::submit`] did not admit a request.
///
/// Both variants hand the request back so the caller can retry, shed the
/// load, or route it elsewhere — admission control never consumes work it
/// will not perform.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity right now. Carries the
    /// observed depth and the configured capacity so clients can size
    /// their backoff to how overloaded the server actually is.
    Busy {
        /// The rejected request, handed back intact.
        request: Request,
        /// Queue depth observed at rejection time (equals `capacity`).
        depth: usize,
        /// The server's configured admission-queue capacity.
        capacity: usize,
    },
    /// The server has shut down and accepts no further work.
    Shutdown(Request),
}

impl SubmitError {
    /// Recovers the rejected request from either variant.
    pub fn into_request(self) -> Request {
        match self {
            SubmitError::Busy { request, .. } | SubmitError::Shutdown(request) => request,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy {
                depth, capacity, ..
            } => write!(f, "admission queue full ({depth} of {capacity} slots)"),
            SubmitError::Shutdown(_) => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request did not produce a [`crate::Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request's deadline lapsed while it sat in the admission queue;
    /// it was failed without touching a device.
    DeadlineExceeded {
        /// How long the request waited before the executor picked it up.
        waited: Duration,
        /// The deadline it was admitted with.
        deadline: Duration,
    },
    /// The request was canceled before it produced a response: the server
    /// shut down before an executor reached it, or its cancellation token
    /// ([`crate::Request::with_cancel`]) was set — e.g. by a hedging
    /// router whose duplicate dispatch already won.
    Canceled,
    /// The request's `max_mape` quality SLO cannot be met: the guard found
    /// over-budget output and no exact device was available to repair it
    /// (e.g. the only fp32 devices are quarantined or dead).
    QualityUnattainable {
        /// The guard's error estimate for the partition it could not fix.
        estimated_mape: f64,
        /// The SLO that estimate exceeds.
        budget_mape: f64,
    },
    /// The runtime rejected or failed the execution.
    Runtime(shmt::ShmtError),
    /// The serving layer itself failed (e.g. no executor thread could be
    /// spawned).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded { waited, deadline } => write!(
                f,
                "deadline exceeded: waited {waited:?} against a deadline of {deadline:?}"
            ),
            ServeError::Canceled => write!(f, "request canceled before completion"),
            ServeError::QualityUnattainable {
                estimated_mape,
                budget_mape,
            } => write!(
                f,
                "quality SLO unattainable: estimated MAPE {estimated_mape:.4} exceeds \
                 the requested {budget_mape:.4} with no exact device available"
            ),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::Internal(msg) => write!(f, "serving layer failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<shmt::ShmtError> for ServeError {
    fn from(e: shmt::ShmtError) -> Self {
        match e {
            shmt::ShmtError::QualityUnattainable {
                estimated_mape,
                budget_mape,
            } => ServeError::QualityUnattainable {
                estimated_mape,
                budget_mape,
            },
            other => ServeError::Runtime(other),
        }
    }
}
