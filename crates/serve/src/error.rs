//! Typed serving errors: admission rejections and request failures.

use std::fmt;
use std::time::Duration;

use crate::server::Request;

/// Why [`crate::Server::submit`] did not admit a request.
///
/// Both variants hand the request back so the caller can retry, shed the
/// load, or route it elsewhere — admission control never consumes work it
/// will not perform.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity right now.
    Busy(Request),
    /// The server has shut down and accepts no further work.
    Shutdown(Request),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy(_) => write!(f, "admission queue full"),
            SubmitError::Shutdown(_) => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request did not produce a [`crate::Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request's deadline lapsed while it sat in the admission queue;
    /// it was failed without touching a device.
    DeadlineExceeded {
        /// How long the request waited before the executor picked it up.
        waited: Duration,
        /// The deadline it was admitted with.
        deadline: Duration,
    },
    /// The server shut down before an executor reached the request.
    Canceled,
    /// The runtime rejected or failed the execution.
    Runtime(shmt::ShmtError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded { waited, deadline } => write!(
                f,
                "deadline exceeded: waited {waited:?} against a deadline of {deadline:?}"
            ),
            ServeError::Canceled => write!(f, "request canceled by server shutdown"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<shmt::ShmtError> for ServeError {
    fn from(e: shmt::ShmtError) -> Self {
        ServeError::Runtime(e)
    }
}
