//! Per-device health: strike accounting, a quarantine circuit breaker,
//! and probe-and-reintegrate.
//!
//! The serving layer watches every completed request for evidence that a
//! modeled device is misbehaving — a dropout recorded in the run's
//! [`shmt::FaultReport`], or approximate output bad enough that the
//! quality guard had to repair it. Evidence accumulates as *strikes*;
//! enough **consecutive** strikes trip a circuit breaker that
//! *quarantines* the device, masking it out of subsequent requests'
//! device masks (requests still run, in degraded mode, on the remaining
//! devices). After a configurable number of quarantined requests the
//! tracker *probes*: one request re-admits the device, and a clean run
//! reintegrates it while another strike re-arms the quarantine.
//!
//! The tracker never masks the last capable device — when every device a
//! request asked for is quarantined, the request runs with its original
//! mask (serving degraded beats not serving).

use crate::server::DEVICES;

/// Circuit-breaker tuning for [`crate::ServerConfig::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Master switch. Disabled, the tracker observes nothing and never
    /// touches a request's device mask.
    pub enabled: bool,
    /// Consecutive strikes that trip the quarantine breaker.
    pub quarantine_after: usize,
    /// Requests served while a device sits quarantined before one request
    /// is used to probe it.
    pub probe_after: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: true,
            quarantine_after: 3,
            probe_after: 4,
        }
    }
}

/// Public snapshot of one device's health, from [`crate::Server::device_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceHealth {
    /// Whether the circuit breaker is currently open for this device.
    pub quarantined: bool,
    /// Strikes since the last clean run this device took part in.
    pub consecutive_strikes: usize,
    /// Strikes over the server's lifetime.
    pub total_strikes: usize,
    /// Times the breaker tripped.
    pub quarantines: usize,
    /// Probe requests dispatched to this device while quarantined.
    pub probes: usize,
    /// Probes that came back clean and closed the breaker.
    pub reintegrations: usize,
    /// A dispatched probe has not reported back yet. A probe that never
    /// reports (its executor died, or the server shut down with the probe
    /// still queued) is declared lost after `probe_after` further planned
    /// requests and the breaker probes again — the quarantine can stall,
    /// but never stick.
    pub probe_inflight: bool,
}

/// What the tracker decided for one request before execution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MaskDecision {
    /// The device mask the request should actually run with.
    pub mask: [bool; DEVICES],
    /// Devices included as quarantine probes this request.
    pub probed: [bool; DEVICES],
    /// Whether `mask` differs from what the request asked for — the
    /// request is serving in degraded mode if so.
    pub masked_any: bool,
}

/// Health counter increments one outcome produced, applied to the metrics
/// registry after the health lock drops (lock order: health is never held
/// together with `state` or `metrics`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HealthDelta {
    pub strikes: usize,
    pub quarantines: usize,
    pub reintegrations: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    quarantined: bool,
    /// A probe request is in flight; hold further probes until it lands.
    probe_inflight: bool,
    consecutive: usize,
    /// Requests planned since the quarantine began (or since the last
    /// probe); reaching `probe_after` releases the next probe.
    since_quarantine: usize,
    total_strikes: usize,
    quarantines: usize,
    probes: usize,
    reintegrations: usize,
}

/// The mutable tracker behind the server's health mutex.
#[derive(Debug)]
pub(crate) struct HealthTracker {
    config: HealthConfig,
    slots: [Slot; DEVICES],
}

impl HealthTracker {
    pub(crate) fn new(config: HealthConfig) -> Self {
        HealthTracker {
            config,
            slots: [Slot::default(); DEVICES],
        }
    }

    /// Decides the effective device mask for a request about to execute:
    /// masks quarantined devices, releases due probes, and falls back to
    /// the requested mask when quarantine would leave nothing enabled.
    pub(crate) fn plan(&mut self, requested: [bool; DEVICES]) -> MaskDecision {
        if !self.config.enabled {
            return MaskDecision {
                mask: requested,
                probed: [false; DEVICES],
                masked_any: false,
            };
        }
        let mut mask = requested;
        let mut probed = [false; DEVICES];
        for (d, slot) in self.slots.iter_mut().enumerate() {
            if !requested[d] || !slot.quarantined {
                continue;
            }
            if !slot.probe_inflight && slot.since_quarantine >= self.config.probe_after {
                slot.probe_inflight = true;
                slot.since_quarantine = 0;
                slot.probes += 1;
                probed[d] = true; // stays in the mask as a probe
            } else {
                slot.since_quarantine += 1;
                mask[d] = false;
                if slot.probe_inflight && slot.since_quarantine >= self.config.probe_after.max(1) {
                    // The in-flight probe never reported a verdict — its
                    // executor is gone (shutdown raced the probe, or the
                    // thread died). Declare it lost so the quarantine
                    // clock keeps running and the next due request can
                    // probe again; otherwise the breaker would stay open
                    // forever with `probe_inflight` stuck.
                    slot.probe_inflight = false;
                }
            }
        }
        if !mask.iter().any(|&m| m) {
            // Every requested device is quarantined: never mask the last
            // capable device; run the request as asked, degraded.
            mask = requested;
        }
        MaskDecision {
            mask,
            probed,
            masked_any: mask != requested,
        }
    }

    /// Folds one request's outcome back into the tracker. `struck` is the
    /// per-device fault attribution (`None` when the run failed for a
    /// reason no device can be blamed for — probes in flight are released
    /// without a verdict).
    pub(crate) fn record(
        &mut self,
        decision: &MaskDecision,
        struck: Option<[bool; DEVICES]>,
    ) -> HealthDelta {
        let mut delta = HealthDelta::default();
        if !self.config.enabled {
            return delta;
        }
        let Some(struck) = struck else {
            for (d, slot) in self.slots.iter_mut().enumerate() {
                if decision.probed[d] {
                    slot.probe_inflight = false;
                }
            }
            return delta;
        };
        for (d, slot) in self.slots.iter_mut().enumerate() {
            if !decision.mask[d] {
                continue;
            }
            if struck[d] {
                slot.consecutive += 1;
                slot.total_strikes += 1;
                delta.strikes += 1;
                if decision.probed[d] {
                    // Failed probe: the breaker stays open, the probe
                    // clock restarts.
                    slot.probe_inflight = false;
                } else if !slot.quarantined && slot.consecutive >= self.config.quarantine_after {
                    slot.quarantined = true;
                    slot.since_quarantine = 0;
                    slot.quarantines += 1;
                    delta.quarantines += 1;
                }
            } else {
                slot.consecutive = 0;
                if decision.probed[d] {
                    slot.probe_inflight = false;
                    slot.quarantined = false;
                    slot.reintegrations += 1;
                    delta.reintegrations += 1;
                }
            }
        }
        delta
    }

    pub(crate) fn snapshot(&self) -> [DeviceHealth; DEVICES] {
        self.slots.map(|s| DeviceHealth {
            quarantined: s.quarantined,
            consecutive_strikes: s.consecutive,
            total_strikes: s.total_strikes,
            quarantines: s.quarantines,
            probes: s.probes,
            reintegrations: s.reintegrations,
            probe_inflight: s.probe_inflight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [bool; DEVICES] = [true; DEVICES];

    fn strikes_on(d: usize) -> Option<[bool; DEVICES]> {
        let mut s = [false; DEVICES];
        s[d] = true;
        Some(s)
    }

    #[test]
    fn consecutive_strikes_trip_the_breaker() {
        let mut t = HealthTracker::new(HealthConfig::default());
        for i in 0..3 {
            let dec = t.plan(ALL);
            assert!(dec.mask[2], "device still admitted before trip {i}");
            t.record(&dec, strikes_on(2));
        }
        let dec = t.plan(ALL);
        assert!(!dec.mask[2], "quarantined device must be masked");
        assert!(dec.mask[0] && dec.mask[1]);
        assert!(dec.masked_any);
        assert!(t.snapshot()[2].quarantined);
    }

    #[test]
    fn clean_runs_reset_the_streak() {
        let mut t = HealthTracker::new(HealthConfig::default());
        for _ in 0..2 {
            let dec = t.plan(ALL);
            t.record(&dec, strikes_on(2));
        }
        let dec = t.plan(ALL);
        t.record(&dec, Some([false; DEVICES]));
        let dec = t.plan(ALL);
        t.record(&dec, strikes_on(2));
        assert!(!t.snapshot()[2].quarantined, "streak must reset on clean");
    }

    #[test]
    fn probe_reintegrates_after_a_clean_run() {
        let cfg = HealthConfig {
            quarantine_after: 1,
            probe_after: 2,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        let dec = t.plan(ALL);
        t.record(&dec, strikes_on(2));
        // Quarantined for probe_after requests...
        for _ in 0..2 {
            let dec = t.plan(ALL);
            assert!(!dec.mask[2]);
            t.record(&dec, Some([false; DEVICES]));
        }
        // ...then the next request probes.
        let dec = t.plan(ALL);
        assert!(dec.probed[2] && dec.mask[2], "due probe re-admits device");
        t.record(&dec, Some([false; DEVICES]));
        let snap = t.snapshot()[2];
        assert!(!snap.quarantined);
        assert_eq!(snap.reintegrations, 1);
    }

    #[test]
    fn failed_probe_keeps_the_breaker_open() {
        let cfg = HealthConfig {
            quarantine_after: 1,
            probe_after: 1,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        let dec = t.plan(ALL);
        t.record(&dec, strikes_on(2));
        let dec = t.plan(ALL); // quarantined request, clock ticks
        t.record(&dec, Some([false; DEVICES]));
        let dec = t.plan(ALL);
        assert!(dec.probed[2]);
        t.record(&dec, strikes_on(2));
        assert!(t.snapshot()[2].quarantined, "struck probe must not close");
        // And the probe clock restarts rather than probing immediately.
        let dec = t.plan(ALL);
        assert!(!dec.mask[2] && !dec.probed[2]);
    }

    #[test]
    fn never_masks_the_last_capable_device() {
        let cfg = HealthConfig {
            quarantine_after: 1,
            probe_after: 100,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        let only_tpu = [false, false, true];
        let dec = t.plan(only_tpu);
        t.record(&dec, strikes_on(2));
        let dec = t.plan(only_tpu);
        assert_eq!(dec.mask, only_tpu, "last device must stay enabled");
        assert!(!dec.masked_any);
    }

    #[test]
    fn unattributable_failure_releases_probe_without_verdict() {
        let cfg = HealthConfig {
            quarantine_after: 1,
            probe_after: 0,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        let dec = t.plan(ALL);
        t.record(&dec, strikes_on(2));
        let dec = t.plan(ALL);
        assert!(dec.probed[2]);
        t.record(&dec, None);
        let snap = t.snapshot()[2];
        assert!(snap.quarantined);
        assert_eq!(snap.total_strikes, 1, "no verdict, no strike");
    }

    #[test]
    fn lost_probe_is_released_and_the_device_probes_again() {
        // A probe whose executor never reports back (shutdown raced the
        // probe, or the thread died) must not leave `probe_inflight`
        // stuck forever: after `probe_after` further planned requests the
        // probe is declared lost and the next request probes again.
        let cfg = HealthConfig {
            quarantine_after: 1,
            probe_after: 2,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        let dec = t.plan(ALL);
        t.record(&dec, strikes_on(2));
        for _ in 0..2 {
            let dec = t.plan(ALL);
            t.record(&dec, Some([false; DEVICES]));
        }
        let dec = t.plan(ALL);
        assert!(dec.probed[2], "probe due");
        assert!(t.snapshot()[2].probe_inflight);
        // The probe's record() never arrives. Two more planned requests
        // declare it lost...
        for _ in 0..2 {
            let dec = t.plan(ALL);
            assert!(!dec.probed[2]);
            t.record(&dec, Some([false; DEVICES]));
        }
        assert!(
            !t.snapshot()[2].probe_inflight,
            "lost probe must be released"
        );
        // ...and the next request probes again; a clean verdict closes
        // the breaker as usual.
        let dec = t.plan(ALL);
        assert!(dec.probed[2], "breaker must probe again after a lost probe");
        t.record(&dec, Some([false; DEVICES]));
        let snap = t.snapshot()[2];
        assert!(!snap.quarantined);
        assert_eq!(snap.probes, 2);
        assert_eq!(snap.reintegrations, 1);
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let cfg = HealthConfig {
            enabled: false,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        for _ in 0..10 {
            let dec = t.plan(ALL);
            assert_eq!(dec.mask, ALL);
            let delta = t.record(&dec, strikes_on(2));
            assert_eq!(delta.strikes, 0);
        }
        assert_eq!(t.snapshot()[2], DeviceHealth::default());
    }
}
