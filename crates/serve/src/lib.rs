//! # shmt-serve — concurrent multi-VOP serving for the SHMT runtime
//!
//! The core runtime executes one VOP per [`shmt::ShmtRuntime::execute`]
//! call. This crate turns that into a *serving layer*: a [`Server`] owns a
//! small team of executor threads, accepts many concurrent VOP requests
//! through a **bounded admission queue**, and runs each request through
//! its own `ShmtRuntime` instance. All requests share one persistent host
//! compute pool ([`shmt::pool::ComputePool::global`]), so concurrent runs
//! interleave their tile computations instead of each spinning up private
//! workers — the paper's virtual device (§3.3) multiplexed across users,
//! in the shape PipeSwitch and Clockwork (OSDI '20) established for model
//! serving.
//!
//! The contract, end to end:
//!
//! * **Backpressure, not buffering** — [`Server::submit`] returns
//!   [`SubmitError::Busy`] (handing the request back) the moment the
//!   admission queue is full; [`Server::submit_blocking`] waits for a
//!   slot instead. The queue never grows beyond its configured bound.
//! * **Deadlines, not hangs** — every request carries an optional
//!   deadline (falling back to the server default). A request whose
//!   deadline lapses while queued is failed with
//!   [`ServeError::DeadlineExceeded`] without touching a device, and
//!   [`Ticket::wait_timeout`] bounds the caller's own wait.
//! * **Observability** — per-request queue-wait and service-time samples
//!   flow into [`shmt_trace::MetricsRegistry`] counters plus per-policy
//!   p50/p95/p99/p999 summaries ([`Server::latency_summaries`]) backed
//!   by streaming log-bucketed histograms (no stored samples). Executors
//!   also feed a live [`shmt_trace::Observatory`] — per-device EWMA
//!   throughput profiles, observed MAPE, queue depths, quarantine state —
//!   exposed via [`Server::observatory`] and rendered as an
//!   OpenMetrics text exposition by [`Server::export_openmetrics`].
//! * **Flight recording** — every request leaves a compact
//!   [`FlightRecord`] in a bounded ring; anomalies (deadline misses,
//!   quality repairs, quarantines, dropout re-dispatches, failures) dump
//!   the ring as `flight_<seq>.json` when a dump directory is configured
//!   ([`FlightConfig`]), so failures arrive self-explaining.
//! * **Quality SLOs, not silent degradation** — a request may carry
//!   [`Request::with_max_mape`]; the executor then runs the runtime's
//!   quality guard with that budget and fails the request with
//!   [`ServeError::QualityUnattainable`] rather than serve over-budget
//!   output. Every [`Response`] says whether it was produced
//!   [`Response::degraded`].
//! * **Device health** — completed requests feed a per-device circuit
//!   breaker ([`HealthConfig`]): repeated dropouts or guard repairs
//!   quarantine a device, quarantined devices are masked out of incoming
//!   requests (never the last one), and periodic probes reintegrate a
//!   device once it runs clean ([`Server::device_health`]).
//! * **QoS classes** — every request carries a [`Priority`]
//!   (`Interactive`, `Batch` — the default — or `BestEffort`); the
//!   admission queue is drained by priority-weighted stride scheduling,
//!   so foreground traffic is dequeued ahead of scavenger traffic
//!   without starving it. Per-class queue-wait summaries via
//!   [`Server::class_summaries`].
//! * **Adaptive scheduling** — with [`ServerConfig::adapt`] enabled,
//!   executors close the loop from the observatory back to the planner:
//!   each request is recalibrated from the live per-device EWMA
//!   throughput and measured-MAPE profiles
//!   ([`shmt::AdaptiveConfig::calibrate`]) before it runs, so a slowed
//!   device sheds work and a miscalibrated TPU loses eligibility.
//!   Calibration changes are counted (`serve.adapted`) and flight-
//!   recorded ([`Anomaly::Adaptation`]).
//! * **Determinism** — serving changes *when* a VOP runs, never *what* it
//!   computes: with adaptation off (the default), outputs are
//!   bit-identical to a sequential `ShmtRuntime::execute` of the same
//!   request.
//!
//! ```
//! use shmt::{Platform, Policy, RuntimeConfig, Vop};
//! use shmt_serve::{Request, Server, ServerConfig};
//! use shmt_kernels::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::new(ServerConfig::default());
//! let b = Benchmark::Sobel;
//! let vop = Vop::from_benchmark(b, b.generate_inputs(64, 64, 1))?;
//! let req = Request::new(vop, Platform::jetson(b), RuntimeConfig::new(Policy::WorkStealing));
//! let ticket = server.submit_blocking(req).expect("server running");
//! let response = ticket.wait()?;
//! println!("served in {:?}", response.service_time);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod flight;
mod health;
mod server;
mod stats;

pub use error::{ServeError, SubmitError};
pub use flight::{Anomaly, FlightConfig, FlightRecord, FlightRecorder};
pub use health::{DeviceHealth, HealthConfig};
pub use server::{
    Payload, Priority, Request, Response, Server, ServerConfig, TelemetryConfig, Ticket,
};
pub use stats::{ClassSummary, LatencyStats, PolicySummary};
