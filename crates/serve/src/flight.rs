//! Per-request flight recorder: a bounded ring of recent request
//! traces that dumps itself to disk when something anomalous happens.
//!
//! Every served request leaves a compact [`FlightRecord`] in a ring of
//! the last N requests. When a record carries an [`Anomaly`] — a missed
//! deadline, a quality-guard repair, a device quarantine, a dropout
//! re-dispatch, a failure — the recorder writes `flight_<seq>.json`
//! into its dump directory: the triggering record plus the ring's
//! recent context, so a chaos-suite failure arrives with its own
//! explanation attached. Dumps are JSON via the workspace's own writer
//! ([`shmt_trace::json`]) and are bounded by `max_dumps` per recorder.

use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;

use shmt_trace::json::{JsonValue, ObjectBuilder};

use crate::server::DEVICES;

/// Why a request was considered anomalous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// The request's deadline lapsed before or during execution.
    DeadlineMissed,
    /// The quality guard repaired at least one approximated HLOP.
    QualityRepair,
    /// The quality budget could not be met even after repairs.
    QualityUnattainable,
    /// The health breaker quarantined a device because of this request.
    DeviceQuarantine,
    /// A device dropped out mid-run and its work was re-dispatched.
    Redispatch,
    /// The request failed outright.
    Failure,
    /// The adaptive calibration applied to this request changed from the
    /// previous calibration for the same opcode.
    Adaptation,
}

impl Anomaly {
    /// Stable lowercase name used in dumps and logs.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::DeadlineMissed => "deadline_missed",
            Anomaly::QualityRepair => "quality_repair",
            Anomaly::QualityUnattainable => "quality_unattainable",
            Anomaly::DeviceQuarantine => "device_quarantine",
            Anomaly::Redispatch => "redispatch",
            Anomaly::Failure => "failure",
            Anomaly::Adaptation => "adaptation",
        }
    }
}

/// One request's compact trace: enough to explain what the serving
/// layer saw without holding onto the output tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic per-recorder sequence number (assigned on record).
    pub seq: u64,
    /// Scheduling policy display name.
    pub policy: String,
    /// The VOP's opcode display name.
    pub opcode: String,
    /// Time spent in the admission queue, seconds.
    pub queue_wait_s: f64,
    /// Executor wall-clock service time, seconds.
    pub service_s: f64,
    /// Virtual makespan of the run, seconds (0 when it never ran).
    pub makespan_s: f64,
    /// Whether the response was served degraded.
    pub degraded: bool,
    /// Quality-guard repairs performed.
    pub repairs: usize,
    /// HLOPs re-dispatched after a device dropout.
    pub redispatched: usize,
    /// Which devices were lost mid-run, by queue index.
    pub devices_lost: [bool; DEVICES],
    /// Which devices were quarantined when the request finished.
    pub quarantined: [bool; DEVICES],
    /// Outcome label: `"ok"` or the error's anomaly name.
    pub outcome: String,
    /// Every anomaly the request triggered (empty for a clean request).
    pub anomalies: Vec<Anomaly>,
}

impl FlightRecord {
    /// A clean baseline record; callers fill in what they observed.
    pub fn new(policy: &str, opcode: &str) -> Self {
        FlightRecord {
            seq: 0,
            policy: policy.to_owned(),
            opcode: opcode.to_owned(),
            queue_wait_s: 0.0,
            service_s: 0.0,
            makespan_s: 0.0,
            degraded: false,
            repairs: 0,
            redispatched: 0,
            devices_lost: [false; DEVICES],
            quarantined: [false; DEVICES],
            outcome: "ok".to_owned(),
            anomalies: Vec::new(),
        }
    }

    fn to_json(&self) -> JsonValue {
        let flags = |bits: &[bool; DEVICES]| {
            JsonValue::Array(bits.iter().map(|&b| JsonValue::Bool(b)).collect())
        };
        ObjectBuilder::new()
            .field("seq", JsonValue::Number(self.seq as f64))
            .field("policy", JsonValue::String(self.policy.clone()))
            .field("opcode", JsonValue::String(self.opcode.clone()))
            .field("queue_wait_s", JsonValue::Number(self.queue_wait_s))
            .field("service_s", JsonValue::Number(self.service_s))
            .field("makespan_s", JsonValue::Number(self.makespan_s))
            .field("degraded", JsonValue::Bool(self.degraded))
            .field("repairs", JsonValue::Number(self.repairs as f64))
            .field("redispatched", JsonValue::Number(self.redispatched as f64))
            .field("devices_lost", flags(&self.devices_lost))
            .field("quarantined", flags(&self.quarantined))
            .field("outcome", JsonValue::String(self.outcome.clone()))
            .field(
                "anomalies",
                JsonValue::Array(
                    self.anomalies
                        .iter()
                        .map(|a| JsonValue::String(a.name().to_owned()))
                        .collect(),
                ),
            )
            .build()
    }
}

/// Flight-recorder tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightConfig {
    /// Master switch; a disabled recorder ignores every record.
    pub enabled: bool,
    /// Ring capacity: how many recent requests are retained as context.
    pub capacity: usize,
    /// Where anomaly dumps are written; `None` (the default) disables
    /// dumping, so embedding the recorder never touches the filesystem
    /// unless explicitly asked to.
    pub dump_dir: Option<PathBuf>,
    /// Dump filename prefix: dumps are `<prefix>_<seq>.json`.
    pub file_prefix: String,
    /// Upper bound on dumps written over the recorder's lifetime.
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            enabled: true,
            capacity: 32,
            dump_dir: None,
            file_prefix: "flight".to_owned(),
            max_dumps: 64,
        }
    }
}

/// The bounded ring of recent [`FlightRecord`]s plus dump bookkeeping.
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    ring: VecDeque<FlightRecord>,
    next_seq: u64,
    dumps_written: usize,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(config: FlightConfig) -> Self {
        let capacity = config.capacity.max(1);
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            config: FlightConfig { capacity, ..config },
            next_seq: 0,
            dumps_written: 0,
        }
    }

    /// Records one request, assigning it the next sequence number. When
    /// the record carries anomalies and dumping is configured, writes
    /// `<dump_dir>/<prefix>_<seq>.json` and returns its path. Write
    /// failures are swallowed — telemetry must never fail a request.
    pub fn record(&mut self, mut record: FlightRecord) -> Option<PathBuf> {
        if !self.config.enabled {
            return None;
        }
        record.seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.config.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
        let Some(trigger) = self.ring.back() else {
            // Unreachable (a record was just pushed), but telemetry must
            // never panic a request — degrade to "no dump" instead.
            return None;
        };
        if trigger.anomalies.is_empty() || self.dumps_written >= self.config.max_dumps {
            return None;
        }
        let dir = self.config.dump_dir.as_ref()?;
        let path = dir.join(format!("{}_{}.json", self.config.file_prefix, trigger.seq));
        let doc = ObjectBuilder::new()
            .field("trigger", trigger.to_json())
            .field(
                "recent",
                JsonValue::Array(self.ring.iter().map(FlightRecord::to_json).collect()),
            )
            .build();
        if fs::create_dir_all(dir).is_err() || fs::write(&path, doc.to_string()).is_err() {
            return None;
        }
        self.dumps_written += 1;
        Some(path)
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.ring.iter()
    }

    /// Number of records currently retained (at most the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total requests ever recorded.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Dumps written so far (bounded by `max_dumps`).
    pub fn dumps_written(&self) -> usize {
        self.dumps_written
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(policy: &str) -> FlightRecord {
        FlightRecord::new(policy, "Sobel")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shmt_flight_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 3,
            ..FlightConfig::default()
        });
        for i in 0..5 {
            assert_eq!(fr.record(rec(&format!("p{i}"))), None);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order preserved");
        let policies: Vec<&str> = fr.records().map(|r| r.policy.as_str()).collect();
        assert_eq!(policies, vec!["p2", "p3", "p4"]);
    }

    #[test]
    fn anomaly_dumps_trigger_and_context() {
        let dir = temp_dir("dump");
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 4,
            dump_dir: Some(dir.clone()),
            ..FlightConfig::default()
        });
        fr.record(rec("clean"));
        let mut bad = rec("bad");
        bad.anomalies.push(Anomaly::QualityRepair);
        bad.repairs = 2;
        let path = fr.record(bad).expect("anomaly must dump");
        assert!(path.ends_with("flight_1.json"));
        let text = fs::read_to_string(&path).unwrap();
        let doc = JsonValue::parse(&text).expect("dump must be valid JSON");
        let trigger = doc.get("trigger").unwrap();
        assert_eq!(trigger.get("seq").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            trigger.get("anomalies").unwrap().as_array().unwrap()[0].as_str(),
            Some("quality_repair")
        );
        assert_eq!(doc.get("recent").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(fr.dumps_written(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dump_dir_means_no_files() {
        let mut fr = FlightRecorder::new(FlightConfig::default());
        let mut bad = rec("bad");
        bad.anomalies.push(Anomaly::Failure);
        assert_eq!(fr.record(bad), None, "dumping is opt-in");
        assert_eq!(fr.dumps_written(), 0);
    }

    #[test]
    fn max_dumps_caps_disk_writes() {
        let dir = temp_dir("cap");
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 8,
            dump_dir: Some(dir.clone()),
            max_dumps: 2,
            ..FlightConfig::default()
        });
        let mut dumped = 0;
        for _ in 0..5 {
            let mut bad = rec("bad");
            bad.anomalies.push(Anomaly::Redispatch);
            if fr.record(bad).is_some() {
                dumped += 1;
            }
        }
        assert_eq!(dumped, 2);
        assert_eq!(fr.dumps_written(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut fr = FlightRecorder::new(FlightConfig {
            enabled: false,
            ..FlightConfig::default()
        });
        let mut bad = rec("bad");
        bad.anomalies.push(Anomaly::DeadlineMissed);
        assert_eq!(fr.record(bad), None);
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 0);
    }
}
