//! Latency accounting: per-policy queue-wait and service-time
//! distributions held as streaming log-bucketed histograms
//! ([`shmt_trace::Histogram::latency_log`]), summarized as quantiles at
//! bucket resolution. No raw samples are stored, so a 10⁵-request run
//! holds constant memory per policy; the exact nearest-rank path
//! survives only in the tests, as the oracle the histograms are
//! checked against.

use std::collections::BTreeMap;

use shmt_trace::Histogram;

/// One served request's latency split.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sample {
    pub queue_wait_s: f64,
    pub service_s: f64,
}

/// Percentile summary of one latency dimension. Quantiles come from a
/// log-bucketed histogram: they never underestimate the exact
/// nearest-rank value and overestimate by at most one bucket (1.25×).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Samples the summary covers.
    pub count: usize,
    /// Arithmetic mean, seconds (exact — from the running sum).
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
    /// Worst observed, seconds (exact).
    pub max_s: f64,
}

impl LatencyStats {
    fn from_histogram(hist: &Histogram) -> Option<Self> {
        let count = usize::try_from(hist.total()).ok()?;
        if count == 0 {
            return None;
        }
        // Propagate emptiness instead of `expect`ing: a summary requested
        // before any request completes must yield `None`, never a panic,
        // even if a histogram's total and its bucket state ever disagree.
        Some(LatencyStats {
            count,
            mean_s: hist.mean()?,
            p50_s: hist.quantile(0.50)?,
            p95_s: hist.quantile(0.95)?,
            p99_s: hist.quantile(0.99)?,
            p999_s: hist.quantile(0.999)?,
            max_s: hist.max_value()?,
        })
    }
}

/// Latency summary for every request served under one scheduling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySummary {
    /// The policy's display name ([`shmt::Policy::name`]).
    pub policy: String,
    /// Time from admission to executor pickup.
    pub queue_wait: LatencyStats,
    /// Time from pickup to completed execution.
    pub service: LatencyStats,
}

/// Queue-wait summary for one QoS priority class
/// ([`crate::Priority`]), in dequeue-preference order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSummary {
    /// The class's stable name ([`crate::Priority::name`]).
    pub class: String,
    /// Time from admission to executor pickup for this class.
    pub queue_wait: LatencyStats,
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice —
/// the exact oracle the streaming histograms are tested against.
#[cfg(test)]
pub(crate) fn nearest_rank(sorted: &[f64], pct: f64) -> f64 {
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One policy's streaming latency state: a histogram per dimension.
#[derive(Debug)]
struct PolicyHists {
    queue_wait: Histogram,
    service: Histogram,
}

impl Default for PolicyHists {
    fn default() -> Self {
        PolicyHists {
            queue_wait: Histogram::latency_log(),
            service: Histogram::latency_log(),
        }
    }
}

/// Accumulates latency distributions keyed by policy name and, for
/// queue waits, by QoS class index (deterministic iteration).
#[derive(Debug, Default)]
pub(crate) struct SampleStore {
    per_policy: BTreeMap<String, PolicyHists>,
    per_class: BTreeMap<usize, (String, Histogram)>,
}

impl SampleStore {
    pub fn record(&mut self, policy: &str, sample: Sample) {
        let hists = self.per_policy.entry(policy.to_owned()).or_default();
        hists.queue_wait.record(sample.queue_wait_s);
        hists.service.record(sample.service_s);
    }

    pub fn record_class(&mut self, index: usize, name: &str, queue_wait_s: f64) {
        let (_, hist) = self
            .per_class
            .entry(index)
            .or_insert_with(|| (name.to_owned(), Histogram::latency_log()));
        hist.record(queue_wait_s);
    }

    pub fn summaries(&self) -> Vec<PolicySummary> {
        self.per_policy
            .iter()
            .filter_map(|(policy, hists)| {
                Some(PolicySummary {
                    policy: policy.clone(),
                    queue_wait: LatencyStats::from_histogram(&hists.queue_wait)?,
                    service: LatencyStats::from_histogram(&hists.service)?,
                })
            })
            .collect()
    }

    pub fn class_summaries(&self) -> Vec<ClassSummary> {
        self.per_class
            .values()
            .filter_map(|(name, hist)| {
                Some(ClassSummary {
                    class: name.clone(),
                    queue_wait: LatencyStats::from_histogram(hist)?,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&v, 50.0), 50.0);
        assert_eq!(nearest_rank(&v, 95.0), 95.0);
        assert_eq!(nearest_rank(&v, 99.0), 99.0);
        assert_eq!(nearest_rank(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn nearest_rank_edge_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        // p0 would compute rank 0; the clamp pins it to the minimum.
        assert_eq!(nearest_rank(&v, 0.0), 1.0);
        // p100 computes rank == len exactly (no off-by-one past the end).
        assert_eq!(nearest_rank(&v, 100.0), 100.0);
        // A single sample answers every percentile.
        assert_eq!(nearest_rank(&[42.0], 0.0), 42.0);
        assert_eq!(nearest_rank(&[42.0], 50.0), 42.0);
        assert_eq!(nearest_rank(&[42.0], 100.0), 42.0);
        // Exact multiples at len=4: p25 is the 1st order statistic.
        let q = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&q, 25.0), 1.0);
        assert_eq!(nearest_rank(&q, 50.0), 2.0);
        assert_eq!(nearest_rank(&q, 75.0), 3.0);
        assert_eq!(nearest_rank(&q, 100.0), 4.0);
    }

    #[test]
    fn empty_store_yields_no_summaries() {
        let store = SampleStore::default();
        assert!(store.summaries().is_empty());
        assert!(store.class_summaries().is_empty());
    }

    #[test]
    fn summaries_group_by_policy() {
        let mut store = SampleStore::default();
        for i in 0..10 {
            store.record(
                "work-stealing",
                Sample {
                    queue_wait_s: f64::from(i + 1) * 0.001,
                    service_s: 0.5,
                },
            );
        }
        store.record(
            "even distribution",
            Sample {
                queue_wait_s: 0.001,
                service_s: 1.0,
            },
        );
        let summaries = store.summaries();
        assert_eq!(summaries.len(), 2);
        let ws = summaries
            .iter()
            .find(|s| s.policy == "work-stealing")
            .unwrap();
        assert_eq!(ws.queue_wait.count, 10);
        // All service samples identical: every quantile lands in the
        // same bucket, clamped to the exact max.
        assert_eq!(ws.service.p99_s, 0.5);
        assert_eq!(ws.service.p999_s, 0.5);
        assert_eq!(ws.service.max_s, 0.5);
        assert!(ws.queue_wait.p50_s <= ws.queue_wait.p95_s);
        assert!(ws.queue_wait.p95_s <= ws.queue_wait.p99_s);
        assert!(ws.queue_wait.p99_s <= ws.queue_wait.p999_s);
        assert!(ws.queue_wait.p999_s <= ws.queue_wait.max_s);
    }

    #[test]
    fn histogram_quantiles_track_the_exact_oracle() {
        // Log-uniform-ish spread across four decades, deterministic.
        let mut values: Vec<f64> = (0..500).map(|i| 1.0e-5 * 1.03f64.powi(i % 400)).collect();
        let mut store = SampleStore::default();
        for &v in &values {
            store.record(
                "p",
                Sample {
                    queue_wait_s: v,
                    service_s: v,
                },
            );
        }
        values.sort_by(f64::total_cmp);
        let s = &store.summaries()[0].service;
        for (got, pct) in [
            (s.p50_s, 50.0),
            (s.p95_s, 95.0),
            (s.p99_s, 99.0),
            (s.p999_s, 99.9),
        ] {
            let exact = nearest_rank(&values, pct);
            assert!(
                got >= exact && got <= exact * 1.25 + 1e-12,
                "p{pct}: streaming {got} vs exact {exact}"
            );
        }
        assert_eq!(s.max_s, *values.last().unwrap(), "max is exact");
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean_s - exact_mean).abs() < 1e-12, "mean is exact");
    }
}
