//! Latency accounting: per-policy queue-wait and service-time samples
//! summarized as nearest-rank percentiles.

use std::collections::BTreeMap;

/// One served request's latency split.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sample {
    pub queue_wait_s: f64,
    pub service_s: f64,
}

/// Percentile summary of one latency dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Samples the summary covers.
    pub count: usize,
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// Median (nearest-rank), seconds.
    pub p50_s: f64,
    /// 95th percentile (nearest-rank), seconds.
    pub p95_s: f64,
    /// 99th percentile (nearest-rank), seconds.
    pub p99_s: f64,
    /// Worst observed, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    fn from_samples(mut values: Vec<f64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let count = values.len();
        let mean_s = values.iter().sum::<f64>() / count as f64;
        Some(LatencyStats {
            count,
            mean_s,
            p50_s: nearest_rank(&values, 50.0),
            p95_s: nearest_rank(&values, 95.0),
            p99_s: nearest_rank(&values, 99.0),
            max_s: values[count - 1],
        })
    }
}

/// Latency summary for every request served under one scheduling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySummary {
    /// The policy's display name ([`shmt::Policy::name`]).
    pub policy: String,
    /// Time from admission to executor pickup.
    pub queue_wait: LatencyStats,
    /// Time from pickup to completed execution.
    pub service: LatencyStats,
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice.
fn nearest_rank(sorted: &[f64], pct: f64) -> f64 {
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Accumulates samples keyed by policy name (deterministic iteration).
#[derive(Debug, Default)]
pub(crate) struct SampleStore {
    per_policy: BTreeMap<String, Vec<Sample>>,
}

impl SampleStore {
    pub fn record(&mut self, policy: &str, sample: Sample) {
        self.per_policy
            .entry(policy.to_owned())
            .or_default()
            .push(sample);
    }

    pub fn summaries(&self) -> Vec<PolicySummary> {
        self.per_policy
            .iter()
            .filter_map(|(policy, samples)| {
                let queue_wait =
                    LatencyStats::from_samples(samples.iter().map(|s| s.queue_wait_s).collect())?;
                let service =
                    LatencyStats::from_samples(samples.iter().map(|s| s.service_s).collect())?;
                Some(PolicySummary {
                    policy: policy.clone(),
                    queue_wait,
                    service,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&v, 50.0), 50.0);
        assert_eq!(nearest_rank(&v, 95.0), 95.0);
        assert_eq!(nearest_rank(&v, 99.0), 99.0);
        assert_eq!(nearest_rank(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn summaries_group_by_policy() {
        let mut store = SampleStore::default();
        for i in 0..10 {
            store.record(
                "work-stealing",
                Sample {
                    queue_wait_s: f64::from(i) * 0.001,
                    service_s: 0.5,
                },
            );
        }
        store.record(
            "even distribution",
            Sample {
                queue_wait_s: 0.0,
                service_s: 1.0,
            },
        );
        let summaries = store.summaries();
        assert_eq!(summaries.len(), 2);
        let ws = summaries
            .iter()
            .find(|s| s.policy == "work-stealing")
            .unwrap();
        assert_eq!(ws.queue_wait.count, 10);
        assert_eq!(ws.service.p99_s, 0.5);
        assert!(ws.queue_wait.p50_s <= ws.queue_wait.p95_s);
        assert!(ws.queue_wait.p95_s <= ws.queue_wait.p99_s);
        assert!(ws.queue_wait.p99_s <= ws.queue_wait.max_s);
    }
}
