//! The serving core: bounded admission queue, executor team, tickets.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shmt::sched::TPU;
use shmt::{
    AdaptiveCalibration, AdaptiveConfig, DagConfig, FaultPlan, GuardConfig, NullSink, Platform,
    RunReport, RuntimeConfig, ShmtError, ShmtRuntime, Tensor, Vop, VopDag,
};
use shmt_trace::{MetricsRegistry, Observatory};

use crate::error::{ServeError, SubmitError};
use crate::flight::{Anomaly, FlightConfig, FlightRecord, FlightRecorder};
use crate::health::{DeviceHealth, HealthConfig, HealthTracker};
use crate::stats::{ClassSummary, PolicySummary, Sample, SampleStore};

/// Number of modeled devices (GPU, CPU, Edge TPU) — the width of every
/// mask the serving layer routes on.
pub(crate) const DEVICES: usize = 3;

/// Number of QoS priority classes ([`Priority`]).
pub(crate) const CLASSES: usize = 3;

/// Per-class stride: the pass-value increment a class pays for each
/// dequeue. Inversely proportional to the class weights (8 : 3 : 1 over
/// a common numerator of 24), so over a contended window Interactive
/// requests are dequeued ~8× as often as BestEffort — weighted fairness
/// rather than starvation-prone strict priority.
const STRIDE: [u64; CLASSES] = [3, 8, 24];

/// Multi-tenant QoS class carried by every [`Request`].
///
/// The admission queue is split per class and drained by stride
/// scheduling: each class carries a *pass* value, the executor always
/// pops from the backlogged class with the smallest pass (ties go to the
/// higher priority), and a dequeue advances that class's pass by its
/// stride. Higher-priority classes have smaller strides, so they are
/// served proportionally more often while lower classes still make
/// progress — deficit-fair sharing, not starvation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground traffic (weight 8).
    Interactive,
    /// Throughput traffic — the default class, so a server receiving
    /// only default requests degenerates to plain FIFO.
    #[default]
    Batch,
    /// Scavenger traffic served from leftover capacity (weight 1).
    BestEffort,
}

impl Priority {
    /// Every class in dequeue-preference order.
    pub const ALL: [Priority; CLASSES] =
        [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Stable queue index (also the tiebreak order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in summaries and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best_effort",
        }
    }
}

/// What an admitted request executes: one VOP, or a whole DAG program.
pub enum Payload {
    /// A single VOP.
    Vop(Vop),
    /// A DAG of VOP stages over one external input, executed with
    /// inter-stage data residency ([`VopDag`]). Per-stage quality
    /// budgets travel on the DAG nodes
    /// ([`shmt::dag::DagNode::with_quality_budget`]); the request's
    /// `max_mape`, when set, additionally guards every stage. The
    /// request deadline applies to the whole pipeline: it is polled
    /// between stages, so a mid-flight DAG stops at the next stage
    /// boundary once the deadline lapses. Fault plans and adaptive
    /// per-opcode recalibration apply to single-VOP requests only —
    /// a DAG submission with a non-empty fault plan fails typed.
    Program {
        /// The validated DAG.
        dag: VopDag,
        /// The external input fed to the DAG's root stages.
        input: Tensor,
    },
}

impl Payload {
    /// Short display label: the opcode for a VOP, `dag[n]` for an
    /// n-node program (used in flight records and debug output).
    pub fn label(&self) -> String {
        match self {
            Payload::Vop(vop) => vop.opcode().to_string(),
            Payload::Program { dag, .. } => format!("dag[{}]", dag.len()),
        }
    }
}

/// One execution request: what to run, on which modeled platform,
/// under which runtime configuration.
pub struct Request {
    /// What to execute.
    pub payload: Payload,
    /// The modeled platform the runtime plays the schedule on.
    pub platform: Platform,
    /// Runtime configuration (policy, partitions, quality knobs).
    pub config: RuntimeConfig,
    /// Per-request deadline measured from admission; overrides the
    /// server's [`ServerConfig::default_deadline`] when set.
    pub deadline: Option<Duration>,
    /// Per-request quality SLO: when set, the executor enables the
    /// runtime's quality guard with this MAPE budget
    /// ([`GuardConfig::enforcing`]), overriding whatever guard settings
    /// the request's [`RuntimeConfig`] carried. A budget the guard cannot
    /// repair down to fails the request with
    /// [`ServeError::QualityUnattainable`].
    pub max_mape: Option<f64>,
    /// Deterministic fault schedule the run is played under;
    /// [`FaultPlan::none`] (the default) leaves execution fault-free and
    /// bit-identical to [`shmt::ShmtRuntime::execute`].
    pub faults: FaultPlan,
    /// QoS class the request is admitted under; [`Priority::Batch`] by
    /// default. Affects only *when* the request is dequeued, never what
    /// it computes.
    pub priority: Priority,
    /// Cooperative cancellation token ([`Request::with_cancel`]). `None`
    /// means the request cannot be canceled by the client.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Request {
    /// A request with no per-request deadline (server default applies),
    /// no quality SLO, and no fault plan.
    pub fn new(vop: Vop, platform: Platform, config: RuntimeConfig) -> Self {
        Request {
            payload: Payload::Vop(vop),
            platform,
            config,
            deadline: None,
            max_mape: None,
            faults: FaultPlan::none(),
            priority: Priority::default(),
            cancel: None,
        }
    }

    /// A DAG-program request: the whole pipeline is one admission unit,
    /// served with inter-stage residency. Stage platforms come from the
    /// DAG's own benchmarks (the request's `platform` field is unused),
    /// per-stage quality budgets from the DAG nodes, and the deadline —
    /// set via [`Request::with_deadline`] — covers the pipeline end to
    /// end.
    pub fn with_program(dag: VopDag, input: Tensor, config: RuntimeConfig) -> Self {
        Request {
            payload: Payload::Program { dag, input },
            platform: Platform::generic(),
            config,
            deadline: None,
            max_mape: None,
            faults: FaultPlan::none(),
            priority: Priority::default(),
            cancel: None,
        }
    }

    /// The single VOP this request executes, when it is not a DAG
    /// program.
    pub fn vop(&self) -> Option<&Vop> {
        match &self.payload {
            Payload::Vop(vop) => Some(vop),
            Payload::Program { .. } => None,
        }
    }

    /// Sets a deadline measured from the moment the request is admitted.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a quality SLO: the served output's estimated MAPE must not
    /// exceed `max_mape`, enforced by the runtime's quality guard.
    #[must_use]
    pub fn with_max_mape(mut self, max_mape: f64) -> Self {
        self.max_mape = Some(max_mape);
        self
    }

    /// Runs the request under a deterministic fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Admits the request under a QoS class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a cooperative cancellation token. Setting the token to
    /// `true` cancels the request at the next cancellation point: before
    /// an executor picks it up (the common case — a hedged duplicate
    /// whose sibling already won), or between DAG stages for a
    /// [`Payload::Program`]. A single VOP already executing runs to
    /// completion; its response is simply never delivered. A canceled
    /// request fails with [`ServeError::Canceled`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether the request's cancellation token has been set.
    pub fn canceled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("payload", &self.payload.label())
            .field("policy", &self.config.policy.name())
            .field("deadline", &self.deadline)
            .field("max_mape", &self.max_mape)
            .field("faulted", &!self.faults.is_empty())
            .field("priority", &self.priority)
            .field("cancelable", &self.cancel.is_some())
            .finish()
    }
}

/// A completed request: the runtime report plus the serving-side latency
/// split.
#[derive(Debug)]
pub struct Response {
    /// The runtime's full report (output tensor, makespan, energy, ...).
    pub report: RunReport,
    /// Time the request spent in the admission queue.
    pub queue_wait: Duration,
    /// Time the executor spent running it.
    pub service_time: Duration,
    /// Display name of the scheduling policy that served it.
    pub policy: &'static str,
    /// Whether the response was produced in a degraded configuration:
    /// the run lost a device mid-flight ([`shmt::FaultReport::degraded`])
    /// or device-health quarantine masked devices the request asked for.
    /// The output is still a genuinely computed result — `degraded` tells
    /// the client it came from fewer devices than requested.
    pub degraded: bool,
}

/// Telemetry switches: what the server observes about itself beyond
/// the bare counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Feed the live [`Observatory`] (latency histograms, per-device
    /// EWMA profiles) from completed requests. On by default — the
    /// update cost is a few map operations per request, outside the
    /// measured execution path.
    pub observatory: bool,
    /// Per-request flight recorder; dumps are off until
    /// [`FlightConfig::dump_dir`] is set.
    pub flight: FlightConfig,
    /// Cap on stored samples per metrics gauge series
    /// ([`MetricsRegistry::with_gauge_cap`]); `None` keeps every sample.
    pub gauge_cap: Option<usize>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            observatory: true,
            flight: FlightConfig::default(),
            gauge_cap: Some(4096),
        }
    }
}

/// Serving-layer tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Executor threads pulling from the admission queue. Each runs one
    /// request at a time; their tile computations all share the global
    /// [`shmt::pool::ComputePool`].
    pub executors: usize,
    /// Admission-queue bound: [`Server::submit`] returns
    /// [`SubmitError::Busy`] once this many requests are waiting.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not set their own.
    pub default_deadline: Option<Duration>,
    /// Device-health circuit breaker (strike thresholds, probe cadence).
    pub health: HealthConfig,
    /// Continuous-telemetry switches (observatory, flight recorder,
    /// gauge cap).
    pub telemetry: TelemetryConfig,
    /// Adaptive scheduling: when enabled (and the observatory is on),
    /// each executor recalibrates the request's planner from the live
    /// observatory profiles before running it
    /// ([`shmt::AdaptiveConfig::calibrate`]). Disabled by default —
    /// served outputs then stay bit-identical to a sequential
    /// [`shmt::ShmtRuntime::execute`] of the same request.
    pub adapt: AdaptiveConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            executors: 2,
            queue_capacity: 8,
            default_deadline: None,
            health: HealthConfig::default(),
            telemetry: TelemetryConfig::default(),
            adapt: AdaptiveConfig::default(),
        }
    }
}

/// A queued request together with its completion slot and admission time.
struct Queued {
    request: Request,
    ticket: Arc<TicketState>,
    admitted_at: Instant,
    deadline: Option<Duration>,
}

/// Completion slot shared between an executor and the ticket holder.
struct TicketState {
    slot: Mutex<Option<Result<Response, ServeError>>>,
    ready: Condvar,
}

impl TicketState {
    fn fulfill(&self, outcome: Result<Response, ServeError>) {
        // Poisoned ticket locks are recovered everywhere in this file:
        // the slot holds a plain Option that is valid at every step, so a
        // waiter's panic must not strand other requests.
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(outcome);
        self.ready.notify_all();
    }
}

/// A handle to one admitted request's eventual outcome.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the request completes, fails, or is canceled.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Waits up to `timeout` for the outcome. Returns `None` when the
    /// request is still in flight — the ticket stays valid, so the caller
    /// can keep polling or block with [`Ticket::wait`] later; the serving
    /// side is unaffected either way.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Takes the outcome if it is already available; never blocks.
    pub fn try_take(&self) -> Option<Result<Response, ServeError>> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// Admission queues (one per QoS class) plus the flags both sides
/// coordinate on. Dequeue is stride scheduling over the class passes —
/// see [`Priority`].
struct QueueState {
    queues: [VecDeque<Queued>; CLASSES],
    pass: [u64; CLASSES],
    shutdown: bool,
}

impl QueueState {
    fn new() -> Self {
        QueueState {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            pass: [0; CLASSES],
            shutdown: false,
        }
    }

    /// Requests waiting across every class — the capacity bound.
    fn total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Enqueues under the request's class. A class waking from empty
    /// starts at the current minimum pass of the backlogged classes, so
    /// an idle class cannot bank credit and then monopolize the
    /// executors; when everything was idle the passes reset outright.
    fn push(&mut self, queued: Queued) {
        let c = queued.request.priority.index();
        if self.queues[c].is_empty() {
            let floor = (0..CLASSES)
                .filter(|&k| !self.queues[k].is_empty())
                .map(|k| self.pass[k])
                .min();
            match floor {
                Some(f) => self.pass[c] = self.pass[c].max(f),
                None => self.pass = [0; CLASSES],
            }
        }
        self.queues[c].push_back(queued);
    }

    /// Pops from the backlogged class with the smallest pass (ties to
    /// the higher-priority class), charging it its stride.
    fn pop_next(&mut self) -> Option<Queued> {
        let c = (0..CLASSES)
            .filter(|&c| !self.queues[c].is_empty())
            .min_by_key(|&c| (self.pass[c], c))?;
        self.pass[c] += STRIDE[c];
        self.queues[c].pop_front()
    }

    /// Removes and returns every queued request, oldest class-order
    /// first (shutdown cancellation).
    fn drain_all(&mut self) -> Vec<Queued> {
        self.queues.iter_mut().flat_map(|q| q.drain(..)).collect()
    }
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a slot frees up (submitters wait on this).
    space_ready: Condvar,
    /// Signalled when work arrives or shutdown begins (executors wait).
    work_ready: Condvar,
    capacity: usize,
    default_deadline: Option<Duration>,
    metrics: Mutex<MetricsRegistry>,
    samples: Mutex<SampleStore>,
    /// Device-health circuit breaker. Lock order: `health` is only ever
    /// acquired alone — never while `state`, `metrics`, or `samples` is
    /// held.
    health: Mutex<HealthTracker>,
    /// Live telemetry (latency histograms, device profiles). Same lock
    /// discipline as `health`: only ever acquired alone.
    observatory: Mutex<Observatory>,
    /// Whether executors feed the observatory at all.
    observatory_enabled: bool,
    /// Per-request flight recorder. Only ever acquired alone.
    flight: Mutex<FlightRecorder>,
    /// Adaptive-scheduling gates; executors recalibrate per request
    /// when enabled.
    adapt: AdaptiveConfig,
    /// Last calibration applied per opcode, so adaptation *events*
    /// (the calibration actually changing) can be counted and flight-
    /// recorded. Only ever acquired alone.
    calibrations: Mutex<BTreeMap<String, AdaptiveCalibration>>,
    started_at: Instant,
}

impl Shared {
    /// Seconds since the server started — the time axis for gauges.
    fn now_s(&self) -> f64 {
        self.started_at.elapsed().as_secs_f64()
    }
}

/// A concurrent VOP server: a bounded admission queue drained by a team
/// of executor threads, each running requests through its own
/// [`ShmtRuntime`] on the shared global compute pool.
pub struct Server {
    shared: Arc<Shared>,
    executors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("executors", &self.executors.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl Server {
    /// Starts the executor team (at least one thread, queue capacity at
    /// least one).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn even one executor thread; use
    /// [`Server::try_new`] for a typed error instead.
    pub fn new(config: ServerConfig) -> Self {
        Server::try_new(config).expect("spawn serve executor team")
    }

    /// [`Server::new`] with typed failure: returns
    /// [`ServeError::Internal`] when no executor thread could be spawned.
    /// A partially spawned team (some threads started before the OS ran
    /// out of resources) degrades to the smaller team instead of failing.
    pub fn try_new(config: ServerConfig) -> Result<Self, ServeError> {
        let metrics = match config.telemetry.gauge_cap {
            Some(cap) => MetricsRegistry::with_gauge_cap(cap.max(2)),
            None => MetricsRegistry::new(),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::new()),
            space_ready: Condvar::new(),
            work_ready: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            default_deadline: config.default_deadline,
            metrics: Mutex::new(metrics),
            samples: Mutex::new(SampleStore::default()),
            health: Mutex::new(HealthTracker::new(config.health)),
            observatory: Mutex::new(Observatory::new()),
            observatory_enabled: config.telemetry.observatory,
            flight: Mutex::new(FlightRecorder::new(config.telemetry.flight)),
            adapt: config.adapt,
            calibrations: Mutex::new(BTreeMap::new()),
            started_at: Instant::now(),
        });
        let executors: Vec<JoinHandle<()>> = (0..config.executors.max(1))
            .map_while(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("shmt-serve-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .ok()
            })
            .collect();
        if executors.is_empty() {
            return Err(ServeError::Internal(
                "could not spawn any serve executor thread".into(),
            ));
        }
        Ok(Server { shared, executors })
    }

    /// Admits a request if the queue has room; hands it back as
    /// [`SubmitError::Busy`] otherwise. Never blocks.
    ///
    /// Lock order everywhere in this file: `state` and `metrics` are
    /// never held at the same time, so the serving path cannot deadlock
    /// against the executors' queue-depth gauge.
    // The Err variant carries the whole Request by design: a rejected
    // caller gets its VOP back without a clone, so the Err is as big as
    // the request.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            return Err(SubmitError::Shutdown(request));
        }
        if state.total() >= self.shared.capacity {
            let depth = state.total();
            drop(state);
            self.shared
                .metrics
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .add_counter("serve.rejected_busy", 1.0);
            return Err(SubmitError::Busy {
                request,
                depth,
                capacity: self.shared.capacity,
            });
        }
        let (ticket, depth) = self.admit(&mut state, request);
        drop(state);
        self.record_admission(depth);
        Ok(ticket)
    }

    /// Admits a request, waiting for queue space when necessary. Only
    /// fails when the server shuts down while the caller is waiting.
    #[allow(clippy::result_large_err)] // Shutdown hands the request back
    pub fn submit_blocking(&self, request: Request) -> Result<Ticket, SubmitError> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.shutdown {
                return Err(SubmitError::Shutdown(request));
            }
            if state.total() < self.shared.capacity {
                let (ticket, depth) = self.admit(&mut state, request);
                drop(state);
                self.record_admission(depth);
                return Ok(ticket);
            }
            state = self
                .shared
                .space_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues under the caller's `state` lock; metrics are recorded by
    /// the caller *after* that lock drops (see the lock-order note on
    /// [`Server::submit`]).
    fn admit(&self, state: &mut QueueState, request: Request) -> (Ticket, usize) {
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let deadline = request.deadline.or(self.shared.default_deadline);
        state.push(Queued {
            request,
            ticket: Arc::clone(&ticket),
            admitted_at: Instant::now(),
            deadline,
        });
        let depth = state.total();
        self.shared.work_ready.notify_one();
        (Ticket { state: ticket }, depth)
    }

    fn record_admission(&self, depth: usize) {
        let mut metrics = self
            .shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        metrics.add_counter("serve.submitted", 1.0);
        metrics.push_gauge("serve.queue_depth", self.shared.now_s(), depth as f64);
    }

    /// Snapshot of the serving counters and gauges
    /// (`serve.submitted`, `serve.completed`, `serve.rejected_busy`,
    /// `serve.deadline_missed`, `serve.failed`, `serve.canceled`,
    /// `serve.degraded`, `serve.quality_unattainable`,
    /// `serve.flight_dumps`, `serve.queue_depth`, plus the
    /// health-breaker counters `health.strike`, `health.quarantine`,
    /// `health.probe`, `health.reintegrate`).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Live telemetry snapshot: the observatory the executors feed
    /// (latency histograms, per-device EWMA profiles), merged with the
    /// serving counters/gauges and the current quarantine flags. Renders
    /// directly via [`Server::export_openmetrics`].
    pub fn observatory(&self) -> Observatory {
        let mut obs = self
            .shared
            .observatory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let metrics = self
            .shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        obs.merge_registry(&metrics);
        let health = self
            .shared
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot();
        for (d, h) in health.iter().enumerate() {
            obs.set_quarantined(d, h.quarantined);
        }
        obs
    }

    /// The current telemetry as an OpenMetrics text exposition
    /// (terminated by `# EOF`; parseable by
    /// [`shmt_trace::openmetrics::Exposition::parse`]).
    pub fn export_openmetrics(&self) -> String {
        shmt_trace::openmetrics::render(&self.observatory())
    }

    /// The flight recorder's retained recent requests, oldest first.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.shared
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .records()
            .cloned()
            .collect()
    }

    /// Anomaly dumps the flight recorder has written so far.
    pub fn flight_dumps(&self) -> usize {
        self.shared
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dumps_written()
    }

    /// Snapshot of the per-device health breaker state, indexed by the
    /// runtime's device order (GPU, CPU, Edge TPU).
    pub fn device_health(&self) -> [DeviceHealth; DEVICES] {
        self.shared
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot()
    }

    /// Queue-wait and service-time percentile summaries, one per
    /// scheduling policy observed so far.
    pub fn latency_summaries(&self) -> Vec<PolicySummary> {
        self.shared
            .samples
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .summaries()
    }

    /// Queue-wait percentile summaries per QoS class, in
    /// dequeue-preference order (classes never served are omitted).
    pub fn class_summaries(&self) -> Vec<ClassSummary> {
        self.shared
            .samples
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .class_summaries()
    }

    /// Stops admission, cancels queued requests, and joins the executor
    /// team. Requests already running finish normally. Called implicitly
    /// on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if state.shutdown && self.executors.is_empty() {
                return;
            }
            state.shutdown = true;
            let canceled: Vec<Queued> = state.drain_all();
            drop(state);
            let mut metrics = self
                .shared
                .metrics
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for q in &canceled {
                q.ticket.fulfill(Err(ServeError::Canceled));
                metrics.add_counter("serve.canceled", 1.0);
            }
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// DAG-run facts the executor publishes as `dag.*` counters (which the
/// [`Server::observatory`] snapshot merges in) once the metrics lock is
/// taken on the completion path.
struct DagStats {
    stages: usize,
    fused: usize,
    edges: usize,
    resident_edges: usize,
    resident_bus_bytes: u64,
    naive_bus_bytes: u64,
}

/// Records a flight entry and bumps the `serve.flight_dumps` counter
/// when it triggered a disk dump. Lock order: `flight`, then `metrics`,
/// each held alone.
fn record_flight(shared: &Shared, record: FlightRecord) {
    let dumped = shared
        .flight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(record)
        .is_some();
    if dumped {
        shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .add_counter("serve.flight_dumps", 1.0);
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let (queued, depth) = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(q) = state.pop_next() {
                    shared.space_ready.notify_one();
                    break (Some(q), state.total());
                }
                if state.shutdown {
                    break (None, 0);
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(queued) = queued else { return };

        let queue_wait = queued.admitted_at.elapsed();
        shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_gauge("serve.queue_depth", shared.now_s(), depth as f64);
        if let Some(deadline) = queued.deadline {
            if queue_wait > deadline {
                // The client's deadline lapsed while the request sat in
                // the queue; fail it without burning device time.
                shared
                    .metrics
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .add_counter("serve.deadline_missed", 1.0);
                let mut fr = FlightRecord::new(
                    queued.request.config.policy.name(),
                    &queued.request.payload.label(),
                );
                fr.queue_wait_s = queue_wait.as_secs_f64();
                fr.outcome = Anomaly::DeadlineMissed.name().to_owned();
                fr.anomalies.push(Anomaly::DeadlineMissed);
                record_flight(shared, fr);
                queued.ticket.fulfill(Err(ServeError::DeadlineExceeded {
                    waited: queue_wait,
                    deadline,
                }));
                continue;
            }
        }

        if queued.request.canceled() {
            // The client (or a hedging router) gave up on this request
            // while it sat in the queue; fail it typed without touching
            // a device.
            shared
                .metrics
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .add_counter("serve.canceled", 1.0);
            queued.ticket.fulfill(Err(ServeError::Canceled));
            continue;
        }

        let policy = queued.request.config.policy.name();
        let opcode = queued.request.payload.label();
        let priority = queued.request.priority;

        // Route around quarantined devices (health lock held alone; see
        // the lock-order notes on `Shared`).
        let decision = shared
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .plan(queued.request.config.device_mask);
        let probes = decision.probed.iter().filter(|&&p| p).count();
        if probes > 0 {
            shared
                .metrics
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .add_counter("health.probe", probes as f64);
        }

        let mut config = queued.request.config;
        config.device_mask = decision.mask;
        if let Some(max_mape) = queued.request.max_mape {
            config.guard = GuardConfig::enforcing(max_mape);
        }

        // Adaptive scheduling: resolve the live observatory profiles
        // into a per-request calibration (observed speed factors + TPU
        // admission). Pure function of the observation stream; the
        // neutral calibration is the exact identity, so a cold or
        // healthy observatory changes nothing. `observatory` and
        // `calibrations` locks are each taken alone, per the lock notes
        // on `Shared`.
        // DAG programs skip adaptive recalibration: the per-opcode
        // calibration cache keys single-VOP kernels, and each DAG stage
        // already runs under the request's explicit configuration.
        let mut adapted = false;
        if shared.adapt.enabled && shared.observatory_enabled && queued.request.vop().is_some() {
            let profiles = shared
                .observatory
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .profiles()
                .to_vec();
            let work = queued
                .request
                .vop()
                .map_or(1.0, |v| v.kernel().work_per_element());
            let devices = queued.request.platform.device_profiles();
            let modeled = [
                devices[0].throughput / work,
                devices[1].throughput / work,
                devices[2].throughput / work,
            ];
            let cal = shared
                .adapt
                .calibrate(&profiles, modeled, &opcode, queued.request.max_mape);
            config.adapt = cal;
            let prev = shared
                .calibrations
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(opcode.clone(), cal)
                .unwrap_or_default();
            adapted = prev != cal;
        }

        let service_start = Instant::now();
        let mut dag_stats: Option<DagStats> = None;
        let outcome = match &queued.request.payload {
            Payload::Vop(vop) => {
                let runtime = ShmtRuntime::new(queued.request.platform.clone(), config);
                runtime.execute_with_faults(vop, &queued.request.faults)
            }
            Payload::Program { dag, input } => {
                if !queued.request.faults.is_empty() {
                    Err(ShmtError::InvalidConfig(
                        "fault plans apply to single-VOP requests; \
                         DAG submissions run fault-free"
                            .into(),
                    ))
                } else {
                    // The pipeline-level deadline and the request's
                    // cancellation token are both polled between stages;
                    // either surfaces as ShmtError::Canceled and is
                    // disambiguated below (token → Canceled, deadline →
                    // DeadlineExceeded).
                    let dag_config = DagConfig::new(config);
                    let admitted_at = queued.admitted_at;
                    let deadline = queued.deadline;
                    let token = queued.request.cancel.clone();
                    dag.run_with_cancel(input, &dag_config, &mut NullSink, &mut || {
                        token.as_ref().is_some_and(|t| t.load(Ordering::Relaxed))
                            || deadline.is_some_and(|d| admitted_at.elapsed() > d)
                    })
                    .map(|dr| {
                        dag_stats = Some(DagStats {
                            stages: dr.stages.len(),
                            fused: dr.fused,
                            edges: dag.edge_count(),
                            resident_edges: dr.resident_edges,
                            resident_bus_bytes: dr.resident_bus_bytes,
                            naive_bus_bytes: dr.naive_bus_bytes,
                        });
                        dr.into_run_report()
                    })
                }
            }
        };
        let service_time = service_start.elapsed();

        // Per-device fault attribution: dropouts strike the device that
        // died; guard repairs (and an unattainable quality budget) strike
        // the approximate device whose output missed the budget.
        let struck = match &outcome {
            Ok(report) => {
                let mut s = report.faults.lost;
                if !report.quality.repairs.is_empty() {
                    s[TPU] = true;
                }
                Some(s)
            }
            Err(ShmtError::QualityUnattainable { .. }) => {
                let mut s = [false; DEVICES];
                s[TPU] = true;
                Some(s)
            }
            Err(_) => None,
        };
        let delta = shared
            .health
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(&decision, struck);
        let quarantined = {
            let snapshot = shared
                .health
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .snapshot();
            let mut q = [false; DEVICES];
            for (d, h) in snapshot.iter().enumerate() {
                q[d] = h.quarantined;
            }
            q
        };

        // Continuous telemetry: feed the observatory from the completed
        // report (span completions in virtual time) and leave a flight
        // record. Both locks are taken alone, after execution, so the
        // measured runtime path is untouched.
        if shared.observatory_enabled {
            let mut obs = shared
                .observatory
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            obs.record_latency("serve.queue_wait_seconds", queue_wait.as_secs_f64());
            if let Ok(report) = &outcome {
                obs.record_latency("serve.service_seconds", service_time.as_secs_f64());
                obs.record_latency("serve.makespan_virtual_seconds", report.makespan_s);
                for (d, (kind, elems)) in report.device_elements().into_iter().enumerate() {
                    let stats = &report.devices[d];
                    debug_assert_eq!(stats.kind, kind);
                    if stats.busy_s > 0.0 && elems > 0 {
                        obs.observe_span(d, &opcode, elems, stats.busy_s);
                    }
                    obs.set_queue_depth(d, stats.max_queue_depth as f64);
                }
                if report.quality.enabled && report.quality.checked_hlops > 0 {
                    // Feed the guard's *measured* post-verification error
                    // (under a monitoring guard this equals the pre-repair
                    // estimate) — the signal adaptive TPU admission keys on.
                    obs.observe_mape(TPU, report.quality.true_mape);
                }
            }
            for (d, &q) in quarantined.iter().enumerate() {
                obs.set_quarantined(d, q);
            }
        }
        let mut fr = FlightRecord::new(policy, &opcode);
        fr.queue_wait_s = queue_wait.as_secs_f64();
        fr.service_s = service_time.as_secs_f64();
        fr.quarantined = quarantined;
        if delta.quarantines > 0 {
            fr.anomalies.push(Anomaly::DeviceQuarantine);
        }
        if adapted {
            fr.anomalies.push(Anomaly::Adaptation);
        }
        match &outcome {
            Ok(report) => {
                fr.makespan_s = report.makespan_s;
                fr.degraded = report.faults.degraded || decision.masked_any;
                fr.repairs = report.quality.repairs.len();
                fr.redispatched = report.faults.redispatched;
                fr.devices_lost = report.faults.lost;
                if fr.repairs > 0 {
                    fr.anomalies.push(Anomaly::QualityRepair);
                }
                if fr.redispatched > 0 || report.faults.degraded {
                    fr.anomalies.push(Anomaly::Redispatch);
                }
            }
            Err(ShmtError::QualityUnattainable { .. }) => {
                fr.outcome = Anomaly::QualityUnattainable.name().to_owned();
                fr.anomalies.push(Anomaly::QualityUnattainable);
            }
            Err(ShmtError::Canceled) => {
                if queued.request.canceled() {
                    // The client canceled mid-pipeline: expected, not an
                    // anomaly.
                    fr.outcome = "canceled".to_owned();
                } else {
                    // A DAG's pipeline deadline lapsed mid-flight.
                    fr.outcome = Anomaly::DeadlineMissed.name().to_owned();
                    fr.anomalies.push(Anomaly::DeadlineMissed);
                }
            }
            Err(_) => {
                fr.outcome = Anomaly::Failure.name().to_owned();
                fr.anomalies.push(Anomaly::Failure);
            }
        }
        record_flight(shared, fr);

        let mut metrics = shared
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if delta.strikes > 0 {
            metrics.add_counter("health.strike", delta.strikes as f64);
        }
        if delta.quarantines > 0 {
            metrics.add_counter("health.quarantine", delta.quarantines as f64);
        }
        if delta.reintegrations > 0 {
            metrics.add_counter("health.reintegrate", delta.reintegrations as f64);
        }
        if adapted {
            metrics.add_counter("serve.adapted", 1.0);
        }
        if let Some(ds) = &dag_stats {
            metrics.add_counter("dag.requests", 1.0);
            metrics.add_counter("dag.stages", ds.stages as f64);
            metrics.add_counter("dag.fused", ds.fused as f64);
            metrics.add_counter("dag.edges", ds.edges as f64);
            metrics.add_counter("dag.resident_edges", ds.resident_edges as f64);
            metrics.add_counter("dag.resident_bus_bytes", ds.resident_bus_bytes as f64);
            metrics.add_counter("dag.naive_bus_bytes", ds.naive_bus_bytes as f64);
        }
        match outcome {
            Ok(report) => {
                let degraded = report.faults.degraded || decision.masked_any;
                if degraded {
                    metrics.add_counter("serve.degraded", 1.0);
                }
                metrics.add_counter("serve.completed", 1.0);
                metrics.add_counter("serve.queue_wait_s", queue_wait.as_secs_f64());
                metrics.add_counter("serve.service_s", service_time.as_secs_f64());
                let mut samples = shared
                    .samples
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                samples.record(
                    policy,
                    Sample {
                        queue_wait_s: queue_wait.as_secs_f64(),
                        service_s: service_time.as_secs_f64(),
                    },
                );
                samples.record_class(priority.index(), priority.name(), queue_wait.as_secs_f64());
                drop(samples);
                queued.ticket.fulfill(Ok(Response {
                    report,
                    queue_wait,
                    service_time,
                    policy,
                    degraded,
                }));
            }
            Err(ShmtError::Canceled) => {
                if queued.request.canceled() {
                    // The client's token stopped the pipeline between
                    // stages.
                    metrics.add_counter("serve.canceled", 1.0);
                    queued.ticket.fulfill(Err(ServeError::Canceled));
                } else {
                    // A DAG pipeline's deadline lapsed between stages.
                    metrics.add_counter("serve.deadline_missed", 1.0);
                    queued.ticket.fulfill(Err(ServeError::DeadlineExceeded {
                        waited: queued.admitted_at.elapsed(),
                        deadline: queued.deadline.unwrap_or_default(),
                    }));
                }
            }
            Err(e) => {
                let err = ServeError::from(e);
                if matches!(err, ServeError::QualityUnattainable { .. }) {
                    metrics.add_counter("serve.quality_unattainable", 1.0);
                } else {
                    metrics.add_counter("serve.failed", 1.0);
                }
                queued.ticket.fulfill(Err(err));
            }
        }
    }
}
