//! `shmt-npu` — neural processing unit model construction (paper §4.2).
//!
//! The paper's Edge TPU HLOPs are *NPU models*: multilayer perceptrons
//! trained to approximate a kernel, then post-training-quantized to int8
//! for the Edge TPU, with quantization-aware retraining when accuracy
//! drops too far. This crate implements that workflow end to end in pure
//! Rust:
//!
//! 1. [`Dataset::from_function`] — "construct the training and validation
//!    datasets by running the target algorithm/function ... with
//!    randomly-generated input data".
//! 2. [`Mlp`] + [`Mlp::train`] — train the NPU-HLOP model (dense layers
//!    with relu/sigmoid activations, SGD with backpropagation).
//! 3. [`QuantizedMlp::post_training`] — post-training quantization of
//!    weights and activations to int8 grids.
//! 4. [`Mlp::train_quant_aware`] — quantization-aware retraining (weights
//!    fake-quantized in the forward pass) for when PTQ accuracy is
//!    "significantly lower".
//! 5. [`workflow::build_npu_model`] — the §4.2 topology search: take "the
//!    first found and the simplest topology" whose learning curve meets
//!    the target, escalating to QAT if the quantized model falls short.
//!
//! The benchmark-scale simulation in `shmt-kernels` models the *deployed*
//! NPU as int8-quantized exact computation for speed; this crate exists to
//! demonstrate that the model-construction pipeline itself is faithful,
//! and is exercised by the `npu_training` example on real scalar kernels.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
mod mlp;
mod quantized;
pub mod workflow;

pub use dataset::Dataset;
pub use mlp::{Activation, Dense, Mlp, TrainConfig};
pub use quantized::QuantizedMlp;
