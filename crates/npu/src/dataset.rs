use shmt_tensor::rng::Pcg32;

/// A supervised regression dataset: input vectors and target vectors.
///
/// Paper §4.2 step 1: datasets are built "by running the target
/// algorithm/function ... with randomly-generated input data and
/// collecting the output".
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl Dataset {
    /// Builds a dataset by evaluating `f` on `n` uniformly random inputs
    /// drawn from `[lo, hi)` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `in_dim == 0`, `lo >= hi`, or `f` returns
    /// vectors of inconsistent length.
    pub fn from_function<F>(f: F, n: usize, in_dim: usize, lo: f32, hi: f32, seed: u64) -> Self
    where
        F: Fn(&[f32]) -> Vec<f32>,
    {
        assert!(n > 0 && in_dim > 0, "degenerate dataset request");
        assert!(lo < hi, "input range must be non-empty");
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut out_dim = None;
        for _ in 0..n {
            let x: Vec<f32> = (0..in_dim).map(|_| rng.gen_range(lo..hi)).collect();
            let y = f(&x);
            match out_dim {
                None => out_dim = Some(y.len()),
                Some(d) => assert_eq!(d, y.len(), "target dimension must be consistent"),
            }
            inputs.push(x);
            targets.push(y);
        }
        Dataset { inputs, targets }
    }

    /// Wraps pre-computed pairs.
    ///
    /// # Panics
    ///
    /// Panics if the two sides differ in length or are empty.
    pub fn from_pairs(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Self {
        assert_eq!(inputs.len(), targets.len(), "inputs/targets must pair up");
        assert!(!inputs.is_empty(), "dataset must be non-empty");
        Dataset { inputs, targets }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when the dataset has no examples (never constructible).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target dimensionality.
    pub fn out_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// One example.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn example(&self, i: usize) -> (&[f32], &[f32]) {
        (&self.inputs[i], &self.targets[i])
    }

    /// Iterates over `(input, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], &[f32])> {
        self.inputs
            .iter()
            .map(Vec::as_slice)
            .zip(self.targets.iter().map(Vec::as_slice))
    }

    /// Splits into (train, validation) with `train_frac` of examples in
    /// the training half.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1` leaves both halves non-empty.
    pub fn split(&self, train_frac: f64) -> (Dataset, Dataset) {
        let k = ((self.len() as f64) * train_frac).round() as usize;
        assert!(
            k > 0 && k < self.len(),
            "split must leave both halves non-empty"
        );
        (
            Dataset {
                inputs: self.inputs[..k].to_vec(),
                targets: self.targets[..k].to_vec(),
            },
            Dataset {
                inputs: self.inputs[k..].to_vec(),
                targets: self.targets[k..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_function_evaluates_targets() {
        let d = Dataset::from_function(|x| vec![x[0] * 2.0], 10, 1, 0.0, 1.0, 1);
        assert_eq!(d.len(), 10);
        assert_eq!(d.in_dim(), 1);
        assert_eq!(d.out_dim(), 1);
        for (x, y) in d.iter() {
            assert_eq!(y[0], x[0] * 2.0);
        }
    }

    #[test]
    fn split_partitions_examples() {
        let d = Dataset::from_function(|x| vec![x[0]], 10, 1, 0.0, 1.0, 2);
        let (train, val) = d.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::from_function(|x| vec![x[0]], 5, 2, -1.0, 1.0, 3);
        let b = Dataset::from_function(|x| vec![x[0]], 5, 2, -1.0, 1.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_pairs_rejected() {
        Dataset::from_pairs(vec![vec![1.0]], vec![]);
    }
}
