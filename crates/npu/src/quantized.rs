use shmt_tensor::quant::QuantParams;

use crate::{Activation, Dataset, Mlp};

/// An int8-quantized MLP — what `edgetpu_compiler` produces from the
/// trained TensorFlow Lite model (paper §4.2 step 3).
///
/// Weights are stored as int8 codes with per-layer scales; activations are
/// re-quantized between layers using scales calibrated on a representative
/// dataset, mirroring TFLite post-training quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
}

#[derive(Debug, Clone, PartialEq)]
struct QuantLayer {
    codes: Vec<i8>,
    weight_params: QuantParams,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    /// Activation quantization for this layer's output.
    out_params: QuantParams,
}

impl QuantizedMlp {
    /// Post-training quantization: snap weights to int8 and calibrate
    /// activation ranges by running the fp32 model over `calibration`.
    ///
    /// # Panics
    ///
    /// Panics if the calibration set's input dimension mismatches.
    pub fn post_training(mlp: &Mlp, calibration: &Dataset) -> Self {
        // Calibrate per-layer output ranges.
        let n_layers = mlp.layers().len();
        let mut lo = vec![f32::INFINITY; n_layers];
        let mut hi = vec![f32::NEG_INFINITY; n_layers];
        for (x, _) in calibration.iter() {
            let mut v = x.to_vec();
            for (li, layer) in mlp.layers().iter().enumerate() {
                v = layer.forward(&v);
                for &o in &v {
                    lo[li] = lo[li].min(o);
                    hi[li] = hi[li].max(o);
                }
            }
        }
        let layers = mlp
            .layers()
            .iter()
            .enumerate()
            .map(|(li, layer)| {
                let weight_params = QuantParams::from_slice(layer.weights());
                let mut codes = vec![0i8; layer.weights().len()];
                weight_params.quantize_slice(layer.weights(), &mut codes);
                QuantLayer {
                    codes,
                    weight_params,
                    bias: layer.bias().to_vec(),
                    in_dim: layer.in_dim(),
                    out_dim: layer.out_dim(),
                    activation: layer.activation(),
                    out_params: QuantParams::from_range(lo[li], hi[li]),
                }
            })
            .collect();
        QuantizedMlp { layers }
    }

    /// Forward pass through the quantized data path: dequantized int8
    /// weights, with each layer's activations snapped to its calibrated
    /// int8 grid.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        let mut weights: Vec<f32> = Vec::new();
        for layer in &self.layers {
            assert_eq!(v.len(), layer.in_dim, "input dimension mismatch");
            // Bulk-dequantize the layer's weights once instead of decoding
            // each code inside the dot products; each product and the sum
            // order are unchanged, so outputs are bit-identical.
            weights.resize(layer.codes.len(), 0.0);
            layer
                .weight_params
                .dequantize_slice(&layer.codes, &mut weights);
            let mut out = Vec::with_capacity(layer.out_dim);
            for o in 0..layer.out_dim {
                let row = &weights[o * layer.in_dim..(o + 1) * layer.in_dim];
                let z: f32 =
                    row.iter().zip(&v).map(|(&w, &inp)| w * inp).sum::<f32>() + layer.bias[o];
                let a = match layer.activation {
                    Activation::Relu => z.max(0.0),
                    Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
                    Activation::Identity => z,
                };
                out.push(layer.out_params.snap(a));
            }
            v = out;
        }
        v
    }

    /// Mean squared error over a dataset through the quantized path.
    pub fn mse(&self, data: &Dataset) -> f64 {
        let mut acc = 0.0f64;
        let mut count = 0usize;
        for (x, y) in data.iter() {
            let out = self.forward(x);
            for (o, t) in out.iter().zip(y) {
                acc += ((o - t) as f64).powi(2);
                count += 1;
            }
        }
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;

    fn trained_pair() -> (Mlp, Dataset, Dataset) {
        let data = Dataset::from_function(|x| vec![x[0] * 0.5 + 0.2], 96, 1, -1.0, 1.0, 4);
        let (train, val) = data.split(0.75);
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Relu, 9);
        mlp.train(
            &train,
            TrainConfig {
                epochs: 200,
                learning_rate: 0.03,
                ..Default::default()
            },
        );
        (mlp, train, val)
    }

    #[test]
    fn ptq_tracks_the_float_model() {
        let (mlp, train, val) = trained_pair();
        let q = QuantizedMlp::post_training(&mlp, &train);
        let fp = mlp.mse(&val);
        let quant = q.mse(&val);
        assert!(quant < fp + 0.01, "fp {fp} vs quant {quant}");
    }

    #[test]
    fn quantization_is_lossy_but_bounded() {
        let (mlp, train, _) = trained_pair();
        let q = QuantizedMlp::post_training(&mlp, &train);
        let x = [0.3f32];
        let fp = mlp.forward(&x)[0];
        let qo = q.forward(&x)[0];
        assert!((fp - qo).abs() < 0.05, "fp {fp} vs quant {qo}");
        // Outputs land on the calibrated int8 grid, so tiny input changes
        // can map to the same output code.
        let qo2 = q.forward(&[0.3001])[0];
        assert!((qo - qo2).abs() < 0.05);
    }
}
