//! The §4.2 NPU model construction workflow.
//!
//! The paper's four steps: (1) build datasets from the target function,
//! (2) train the NPU-HLOP model, (3) post-training-quantize it for the
//! Edge TPU, (4) if the quantized model's accuracy is "significantly
//! lower", retrain with quantization-aware training. Topologies are tried
//! simplest-first and the search stops at "the first found and the
//! simplest topology" whose learning curve meets the target.

use crate::{Activation, Dataset, Mlp, QuantizedMlp, TrainConfig};

/// The outcome of the model-construction workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct NpuModel {
    /// The trained fp32 model.
    pub float_model: Mlp,
    /// The deployed int8 model.
    pub quantized: QuantizedMlp,
    /// Hidden widths of the chosen topology (empty = linear).
    pub topology: Vec<usize>,
    /// Validation MSE of the fp32 model.
    pub float_mse: f64,
    /// Validation MSE of the deployed int8 model.
    pub quantized_mse: f64,
    /// Whether quantization-aware retraining was needed.
    pub used_qat: bool,
}

/// Configuration of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowConfig {
    /// Candidate hidden-layer topologies, simplest first.
    pub topologies: Vec<Vec<usize>>,
    /// Validation MSE at which a float model is accepted.
    pub target_mse: f64,
    /// Factor by which the quantized model may exceed the float model's
    /// MSE before QAT retraining kicks in ("significantly lower" accuracy).
    pub qat_trigger: f64,
    /// Training hyperparameters.
    pub train: TrainConfig,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            topologies: vec![vec![], vec![8], vec![16], vec![16, 16]],
            target_mse: 1e-3,
            qat_trigger: 4.0,
            train: TrainConfig::default(),
        }
    }
}

/// Runs the §4.2 workflow against a scalar target function.
///
/// Returns the first (simplest) topology whose trained model reaches the
/// MSE target — or, if none does, the best model found. PTQ is applied,
/// and QAT retraining is used when PTQ degrades accuracy beyond the
/// configured trigger.
///
/// # Panics
///
/// Panics if `config.topologies` is empty or the dataset is degenerate.
pub fn build_npu_model(data: &Dataset, config: &WorkflowConfig) -> NpuModel {
    assert!(
        !config.topologies.is_empty(),
        "need at least one candidate topology"
    );
    let (train, val) = data.split(0.8);

    let mut best: Option<(Mlp, Vec<usize>, f64)> = None;
    for hidden in &config.topologies {
        let mut widths = vec![train.in_dim()];
        widths.extend_from_slice(hidden);
        widths.push(train.out_dim());
        let mut mlp = Mlp::new(&widths, Activation::Relu, config.train.seed);
        mlp.train(&train, config.train);
        let val_mse = mlp.mse(&val);
        // (`Option::is_none_or` needs Rust 1.82; the workspace MSRV is 1.75.)
        let better = best.as_ref().map_or(true, |(_, _, b)| val_mse < *b);
        if better {
            best = Some((mlp, hidden.clone(), val_mse));
        }
        if val_mse <= config.target_mse {
            // "The first found and the simplest topology" that trains well.
            break;
        }
    }
    let (mut float_model, topology, float_mse) = best.expect("at least one topology tried");

    // Step 3: post-training quantization; step 4: QAT if it degraded.
    let mut quantized = QuantizedMlp::post_training(&float_model, &train);
    let mut quantized_mse = quantized.mse(&val);
    let mut used_qat = false;
    if quantized_mse > float_mse.max(1e-9) * config.qat_trigger {
        float_model.train_quant_aware(&train, config.train);
        quantized = QuantizedMlp::post_training(&float_model, &train);
        quantized_mse = quantized.mse(&val);
        used_qat = true;
    }

    NpuModel {
        float_model,
        quantized,
        topology,
        float_mse,
        quantized_mse,
        used_qat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_picks_simplest_sufficient_topology() {
        // A linear target: the empty (linear) topology should suffice and
        // be chosen first.
        let data = Dataset::from_function(|x| vec![3.0 * x[0] + 0.5], 100, 1, -1.0, 1.0, 11);
        let model = build_npu_model(&data, &WorkflowConfig::default());
        assert!(model.topology.is_empty(), "chose {:?}", model.topology);
        assert!(model.float_mse < 1e-3, "mse {}", model.float_mse);
    }

    #[test]
    fn workflow_escalates_for_nonlinear_targets() {
        let data = Dataset::from_function(|x| vec![(3.0 * x[0]).sin()], 160, 1, -1.0, 1.0, 12);
        let config = WorkflowConfig {
            target_mse: 5e-3,
            train: TrainConfig {
                epochs: 300,
                learning_rate: 0.02,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = build_npu_model(&data, &config);
        assert!(!model.topology.is_empty(), "a sine needs hidden units");
        assert!(model.float_mse < 0.05, "mse {}", model.float_mse);
    }

    #[test]
    fn quantized_model_is_usable() {
        let data = Dataset::from_function(|x| vec![x[0].abs()], 120, 1, -1.0, 1.0, 13);
        let model = build_npu_model(&data, &WorkflowConfig::default());
        assert!(model.quantized_mse < model.float_mse + 0.05);
        let y = model.quantized.forward(&[0.5]);
        assert!((y[0] - 0.5).abs() < 0.2, "quantized |0.5| = {}", y[0]);
    }
}
