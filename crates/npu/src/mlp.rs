use shmt_tensor::rng::Pcg32;

use crate::Dataset;

/// Activation functions supported by the Edge TPU-compatible topologies
/// (paper §4.2: "sigmoid or relu as activation functions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation (output layers of regressors).
    Identity,
}

impl Activation {
    fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation, given the
    /// post-activation value.
    fn grad_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense (fully connected) layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Row-major weights: `out_dim x in_dim`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with Xavier-style uniform initialization.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Pcg32) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate layer");
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        Dense {
            weights: (0..in_dim * out_dim)
                .map(|_| rng.gen_range(-limit..limit))
                .collect(),
            bias: vec![0.0; out_dim],
            in_dim,
            out_dim,
            activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Borrows the weight matrix (row-major `out_dim x in_dim`).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        (0..self.out_dim)
            .map(|o| {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                let z: f32 = row.iter().zip(x).map(|(w, v)| w * v).sum::<f32>() + self.bias[o];
                self.activation.apply(z)
            })
            .collect()
    }
}

/// Training hyperparameters for [`Mlp::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Seed for example shuffling.
    pub seed: u64,
    /// Fake-quantize weights in the forward pass (quantization-aware
    /// training, §4.2 step 4).
    pub quant_aware: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            learning_rate: 0.05,
            seed: 7,
            quant_aware: false,
        }
    }
}

/// A multilayer perceptron — the NPU-HLOP model topology of §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths; hidden layers use
    /// `hidden` activation, the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = Pcg32::seed_from_u64(seed);
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    Activation::Identity
                } else {
                    hidden
                };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Mlp { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.bias.len())
            .sum()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        for layer in &self.layers {
            v = layer.forward(&v);
        }
        v
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &Dataset) -> f64 {
        let mut acc = 0.0f64;
        let mut count = 0usize;
        for (x, y) in data.iter() {
            let out = self.forward(x);
            for (o, t) in out.iter().zip(y) {
                acc += ((o - t) as f64).powi(2);
                count += 1;
            }
        }
        acc / count as f64
    }

    /// Trains with per-example SGD and backpropagation; returns the final
    /// training MSE. With `config.quant_aware`, the forward pass sees
    /// int8-snapped weights while gradients update the latent fp32 weights
    /// (the standard straight-through fake-quantization scheme).
    pub fn train(&mut self, data: &Dataset, config: TrainConfig) -> f64 {
        assert_eq!(
            data.in_dim(),
            self.layers[0].in_dim,
            "dataset/input mismatch"
        );
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = Pcg32::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &i in &order {
                let (x, y) = data.example(i);
                self.sgd_step(x, y, config.learning_rate, config.quant_aware);
            }
        }
        self.mse(data)
    }

    fn effective_weights(layer: &Dense, quant_aware: bool) -> Vec<f32> {
        if quant_aware {
            let params = shmt_tensor::quant::QuantParams::from_slice(&layer.weights);
            layer.weights.iter().map(|&w| params.snap(w)).collect()
        } else {
            layer.weights.clone()
        }
    }

    fn sgd_step(&mut self, x: &[f32], y: &[f32], lr: f32, quant_aware: bool) {
        // Forward, keeping every layer's post-activation.
        let mut activations: Vec<Vec<f32>> = vec![x.to_vec()];
        let mut effective: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let w = Self::effective_weights(layer, quant_aware);
            let input = activations.last().expect("non-empty");
            let out: Vec<f32> = (0..layer.out_dim)
                .map(|o| {
                    let row = &w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    let z: f32 =
                        row.iter().zip(input).map(|(wv, v)| wv * v).sum::<f32>() + layer.bias[o];
                    layer.activation.apply(z)
                })
                .collect();
            activations.push(out);
            effective.push(w);
        }

        // Backward: delta = dL/dz per layer (L = 0.5 * sum (out - y)^2).
        let mut delta: Vec<f32> = activations
            .last()
            .expect("output exists")
            .iter()
            .zip(y)
            .map(|(o, t)| o - t)
            .collect();
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            let out = &activations[li + 1];
            for (d, &o) in delta.iter_mut().zip(out) {
                *d *= layer.activation.grad_from_output(o);
            }
            let input = &activations[li];
            // Gradient wrt inputs (for the next iteration down) uses the
            // effective (possibly fake-quantized) weights; updates apply
            // to the latent weights (straight-through estimator).
            let mut next_delta = vec![0.0f32; layer.in_dim];
            for (o, &d) in delta.iter().enumerate() {
                let row = &effective[li][o * layer.in_dim..(o + 1) * layer.in_dim];
                for (nd, &w) in next_delta.iter_mut().zip(row) {
                    *nd += d * w;
                }
            }
            for (o, &d) in delta.iter().enumerate() {
                let row = &mut layer.weights[o * layer.in_dim..(o + 1) * layer.in_dim];
                for (w, &v) in row.iter_mut().zip(input) {
                    *w -= lr * d * v;
                }
                layer.bias[o] -= lr * d;
            }
            delta = next_delta;
        }
    }

    /// Quantization-aware retraining (paper §4.2 step 4): same SGD but the
    /// forward pass sees int8-snapped weights.
    pub fn train_quant_aware(&mut self, data: &Dataset, config: TrainConfig) -> f64 {
        self.train(
            data,
            TrainConfig {
                quant_aware: true,
                ..config
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset() -> Dataset {
        Dataset::from_function(|x| vec![2.0 * x[0] - 1.0], 64, 1, -1.0, 1.0, 1)
    }

    #[test]
    fn mlp_learns_a_linear_function() {
        let data = linear_dataset();
        let mut mlp = Mlp::new(&[1, 1], Activation::Relu, 42);
        let before = mlp.mse(&data);
        let after = mlp.train(
            &data,
            TrainConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        assert!(after < before * 0.05, "before {before}, after {after}");
        assert!(after < 1e-3, "after {after}");
    }

    #[test]
    fn mlp_learns_a_nonlinear_function() {
        let data = Dataset::from_function(|x| vec![(x[0] * 2.0).tanh()], 128, 1, -1.5, 1.5, 2);
        let mut mlp = Mlp::new(&[1, 16, 1], Activation::Relu, 3);
        let after = mlp.train(
            &data,
            TrainConfig {
                epochs: 400,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert!(after < 5e-3, "mse {after}");
    }

    #[test]
    fn forward_respects_topology() {
        let mlp = Mlp::new(&[3, 5, 2], Activation::Sigmoid, 1);
        assert_eq!(mlp.layers().len(), 2);
        assert_eq!(mlp.forward(&[0.1, 0.2, 0.3]).len(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn output_layer_is_linear() {
        let mlp = Mlp::new(&[1, 4, 1], Activation::Relu, 1);
        assert_eq!(mlp.layers()[0].activation(), Activation::Relu);
        assert_eq!(mlp.layers()[1].activation(), Activation::Identity);
    }

    #[test]
    fn activations_behave() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert_eq!(Activation::Relu.grad_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.grad_from_output(1.0), 1.0);
    }

    #[test]
    fn quant_aware_training_converges() {
        let data = linear_dataset();
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Relu, 5);
        let mse = mlp.train_quant_aware(
            &data,
            TrainConfig {
                epochs: 150,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert!(mse < 0.05, "QAT mse {mse}");
    }
}
