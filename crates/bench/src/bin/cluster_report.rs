//! Machine-readable cluster-robustness report.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin cluster_report
//! cargo run --release -p shmt-bench --bin cluster_report -- --smoke
//! ```
//!
//! Drives a simulated SHMT fleet ([`shmt_cluster`]) open-loop through a
//! battery of chaos scenarios and certifies the router's robustness
//! contract:
//!
//! * **steady / bursty / diurnal** — seeded arrival processes against a
//!   healthy fleet: every request resolves (nothing lost, nothing
//!   hangs), latency percentiles and throughput recorded.
//! * **node_crash** — one node crashes mid-run with requests in flight.
//!   Failover + retries must resolve *every* offered request: zero lost,
//!   zero failed.
//! * **slow_node (hedge off vs on)** — one node delivers 30 ms late;
//!   affinity keeps a third of the traffic pinned to it. With hedging
//!   off, that tail pollutes p99; with hedging on (p95-derived delay,
//!   loser canceled), p99 must improve materially and hedges must win.
//! * **overload_shed** — 2x the fleet's measured capacity. Admission
//!   must shed BestEffort first (never Interactive), and the Interactive
//!   p95 must hold its SLO while overloaded.
//! * **flapping** — a node flaps down twice; the breaker must
//!   quarantine, probe, and reintegrate it, losing nothing.
//! * **dual_failure** — a crash *and* an overlapping down-window leave
//!   one node standing; the fleet keeps serving on it.
//!
//! The default output is `BENCH_cluster.json` at the repository root;
//! `--smoke` shrinks every scenario and writes
//! `results/BENCH_cluster_smoke.json` (the CI gate). The artifact is
//! re-read with the workspace's own JSON parser and the bin aborts on
//! any violated flag, so CI's grep never sees a half-true file.

use std::time::Duration;

use shmt_cluster::loadgen::{arrival_times, drive, ArrivalProcess, DriveReport, RequestSpec};
use shmt_cluster::{
    ClusterConfig, ClusterRouter, NodeConfig, NodeFaultPlan, RetryBudgetConfig, RetryConfig,
    RouteOptions, ScoreWeights, ShedConfig,
};
use shmt_kernels::Benchmark;
use shmt_serve::{Priority, ServerConfig};
use shmt_trace::json::{JsonValue, ObjectBuilder};

/// Interactive p95 SLO under 2x overload, seconds.
const INTERACTIVE_SLO_S: f64 = 0.050;
/// The slow node's extra delivery latency.
const SLOW_EXTRA: Duration = Duration::from_millis(30);
/// No request may take longer than this end to end, in any scenario —
/// the "no hangs" bound (attempt timeouts are 2 s; retries are bounded).
const HANG_BOUND_S: f64 = 10.0;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

/// The workload every scenario offers: a small Sobel the virtual devices
/// finish in well under a millisecond.
fn base_spec(seed: u64) -> RequestSpec {
    let mut spec = RequestSpec::new(Benchmark::Sobel, 32, seed);
    spec.partitions = 2;
    spec
}

/// `n` healthy nodes with single executors and deep admission queues
/// (the router's shedding, not node bounce, is the overload control).
fn fleet(n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|_| {
            NodeConfig::new(ServerConfig {
                executors: 1,
                queue_capacity: 64,
                ..ServerConfig::default()
            })
        })
        .collect()
}

fn base_config(nodes: Vec<NodeConfig>) -> ClusterConfig {
    let mut cfg = ClusterConfig::with_nodes(1);
    cfg.nodes = nodes;
    cfg.attempt_timeout = Duration::from_secs(2);
    cfg.retry = RetryConfig {
        max_attempts: 5,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
    };
    cfg.budget = RetryBudgetConfig {
        initial: 50.0,
        deposit_per_request: 0.5,
        cap: 5_000.0,
    };
    cfg.shed = ShedConfig {
        enabled: true,
        capacity: 256,
        batch_fraction: 0.75,
        best_effort_fraction: 0.5,
    };
    cfg.hedge.enabled = false;
    cfg
}

/// Measures the fleet's single-stream service rate (requests per
/// second): one node, sequential requests. Scenario rates derive from
/// it so the report is honest on any host speed.
fn calibrate() -> f64 {
    let router = ClusterRouter::new(base_config(fleet(1)));
    for i in 0..10 {
        let s = base_spec(i);
        router
            .route(RouteOptions::new(), &|| s.build())
            .expect("calibration request");
    }
    let started = std::time::Instant::now();
    let n = 200u64;
    for i in 0..n {
        let s = base_spec(100 + i);
        router
            .route(RouteOptions::new(), &|| s.build())
            .expect("calibration request");
    }
    let rate = n as f64 / started.elapsed().as_secs_f64();
    // Clamp to keep arrival gaps above scheduler granularity and the
    // derived scenarios meaningful on absurdly fast or slow hosts.
    rate.clamp(200.0, 10_000.0)
}

/// One scenario's tallies plus the router-side state it ended with.
struct ScenarioResult {
    report: DriveReport,
    quarantines: usize,
    reintegrations: usize,
    budget_withdrawn: u64,
    budget_denied: u64,
}

fn run_scenario(
    cfg: ClusterConfig,
    specs: &[RequestSpec],
    arrivals: &[f64],
    workers: usize,
) -> ScenarioResult {
    let router = ClusterRouter::new(cfg);
    let report = drive(&router, specs, arrivals, workers);
    let health = router.node_health();
    let stats = router.budget_stats();
    ScenarioResult {
        report,
        quarantines: health.iter().map(|h| h.quarantines).sum(),
        reintegrations: health.iter().map(|h| h.reintegrations).sum(),
        budget_withdrawn: stats.withdrawn,
        budget_denied: stats.denied,
    }
}

fn scenario_json(r: &ScenarioResult) -> JsonValue {
    let rep = &r.report;
    let pct = |p: f64| JsonValue::Number(rep.latency_percentile(p).unwrap_or(0.0) * 1e3);
    ObjectBuilder::new()
        .field("offered", JsonValue::Number(rep.offered as f64))
        .field("ok", JsonValue::Number(rep.ok as f64))
        .field("lost", JsonValue::Number(rep.lost as f64))
        .field("shed", JsonValue::Number(rep.shed() as f64))
        .field(
            "shed_interactive",
            JsonValue::Number(rep.shed_by_class[Priority::Interactive.index()] as f64),
        )
        .field(
            "shed_batch",
            JsonValue::Number(rep.shed_by_class[Priority::Batch.index()] as f64),
        )
        .field(
            "shed_best_effort",
            JsonValue::Number(rep.shed_by_class[Priority::BestEffort.index()] as f64),
        )
        .field(
            "deadline_exceeded",
            JsonValue::Number(rep.deadline_exceeded as f64),
        )
        .field(
            "budget_exhausted",
            JsonValue::Number(rep.budget_exhausted as f64),
        )
        .field(
            "nodes_exhausted",
            JsonValue::Number(rep.nodes_exhausted as f64),
        )
        .field("other_failed", JsonValue::Number(rep.other_failed as f64))
        .field("retries", JsonValue::Number(rep.retries as f64))
        .field("hedged", JsonValue::Number(rep.hedged as f64))
        .field("hedge_wins", JsonValue::Number(rep.hedge_wins as f64))
        .field("p50_ms", pct(50.0))
        .field("p95_ms", pct(95.0))
        .field("p99_ms", pct(99.0))
        .field("p999_ms", pct(99.9))
        .field("max_latency_ms", JsonValue::Number(rep.max_latency_s * 1e3))
        .field("throughput_rps", JsonValue::Number(rep.throughput_rps()))
        .field("wall_s", JsonValue::Number(rep.wall_s))
        .field("quarantines", JsonValue::Number(r.quarantines as f64))
        .field("reintegrations", JsonValue::Number(r.reintegrations as f64))
        .field(
            "budget_withdrawn",
            JsonValue::Number(r.budget_withdrawn as f64),
        )
        .field("budget_denied", JsonValue::Number(r.budget_denied as f64))
        .build()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let default_out = if opts.smoke {
        "results/BENCH_cluster_smoke.json"
    } else {
        "BENCH_cluster.json"
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);

    let svc_rate = calibrate();
    // Scenario request counts: the full run offers 10^5+ requests total.
    let scale = |full: usize, smoke: usize| if opts.smoke { smoke } else { full };

    // --- steady / bursty / diurnal against a healthy 3-node fleet ---
    let steady_rate = 0.6 * svc_rate;
    let n_steady = scale(30_000, 600);
    let steady = run_scenario(
        base_config(fleet(3)),
        &[base_spec(1)],
        &arrival_times(ArrivalProcess::Poisson { rate: steady_rate }, n_steady, 11),
        16,
    );

    let n_bursty = scale(12_000, 400);
    let bursty = run_scenario(
        base_config(fleet(3)),
        &[base_spec(2)],
        &arrival_times(
            ArrivalProcess::Bursty {
                base_rate: 0.3 * svc_rate,
                burst_rate: 1.2 * svc_rate,
                mean_on_s: 0.2,
                mean_off_s: 0.6,
            },
            n_bursty,
            13,
        ),
        24,
    );

    let n_diurnal = scale(12_000, 400);
    let diurnal = run_scenario(
        base_config(fleet(3)),
        &[base_spec(3)],
        &arrival_times(
            ArrivalProcess::Diurnal {
                mean_rate: 0.5 * svc_rate,
                period_s: (n_diurnal as f64 / (0.5 * svc_rate)).max(0.5),
                depth: 0.8,
            },
            n_diurnal,
            17,
        ),
        16,
    );

    // --- node_crash: node 0 dies a quarter of the way in, mid-flight ---
    let n_crash = scale(12_000, 500);
    let crash_rate = 0.5 * svc_rate;
    let crash_at = 0.25 * n_crash as f64 / crash_rate;
    let mut crash_cfg = base_config(fleet(3));
    crash_cfg.nodes[0] = crash_cfg.nodes[0]
        .clone()
        .with_faults(NodeFaultPlan::none().with_crash_at(crash_at));
    let crash = run_scenario(
        crash_cfg,
        &[base_spec(4)],
        &arrival_times(ArrivalProcess::Poisson { rate: crash_rate }, n_crash, 19),
        16,
    );

    // --- slow_node A/B: hedging off vs on, same fleet, same load ---
    let n_slow = scale(8_000, 400);
    let slow_rate = (0.15 * svc_rate).min(1_200.0);
    let slow_cfg = || {
        let mut cfg = base_config(fleet(3));
        cfg.nodes[1] = cfg.nodes[1]
            .clone()
            .with_faults(NodeFaultPlan::none().with_slow_window(0.0, 3600.0, SLOW_EXTRA));
        // Sticky affinity routing with performance steering off: the slow
        // node keeps its third of the traffic in both arms, so the A/B
        // isolates exactly what hedging buys.
        cfg.score = ScoreWeights {
            load: 0.2,
            perf: 0.0,
            locality: 5.0,
            quality: 0.0,
            pressure: 2.0,
        };
        cfg.hedge.quantile = 0.95;
        cfg.hedge.min_samples = 64;
        cfg.hedge.min_delay = Duration::from_millis(2);
        cfg.hedge.max_delay = SLOW_EXTRA / 3;
        cfg
    };
    let slow_specs: Vec<RequestSpec> = (0..3)
        .map(|k| base_spec(5).with_options(RouteOptions::new().with_affinity(k)))
        .collect();
    let slow_arrivals = arrival_times(ArrivalProcess::Poisson { rate: slow_rate }, n_slow, 23);
    let hedge_off = run_scenario(slow_cfg(), &slow_specs, &slow_arrivals, 32);
    let mut on_cfg = slow_cfg();
    on_cfg.hedge.enabled = true;
    let hedge_on = run_scenario(on_cfg, &slow_specs, &slow_arrivals, 32);

    // --- overload_shed: 2x capacity, mixed classes ---
    let n_overload = scale(14_000, 600);
    let overload_rate = 2.0 * svc_rate;
    let mut overload_cfg = base_config(fleet(3));
    overload_cfg.shed = ShedConfig {
        enabled: true,
        capacity: 16,
        batch_fraction: 0.6,
        best_effort_fraction: 0.25,
    };
    // 30% Interactive, 40% Batch, 30% BestEffort.
    let overload_specs: Vec<RequestSpec> = (0..10)
        .map(|i| {
            let class = match i {
                0..=2 => Priority::Interactive,
                3..=6 => Priority::Batch,
                _ => Priority::BestEffort,
            };
            base_spec(6).with_options(RouteOptions::new().with_priority(class))
        })
        .collect();
    let overload = run_scenario(
        overload_cfg,
        &overload_specs,
        &arrival_times(
            ArrivalProcess::Poisson {
                rate: overload_rate,
            },
            n_overload,
            29,
        ),
        12,
    );

    // --- flapping: node 2 drops out twice and must come back ---
    let n_flap = scale(8_000, 400);
    let flap_rate = 0.5 * svc_rate;
    let flap_d = n_flap as f64 / flap_rate;
    let mut flap_cfg = base_config(fleet(3));
    flap_cfg.nodes[2] = flap_cfg.nodes[2].clone().with_faults(
        NodeFaultPlan::none()
            .with_down_window(0.20 * flap_d, 0.40 * flap_d)
            .with_down_window(0.60 * flap_d, 0.70 * flap_d),
    );
    flap_cfg.breaker.quarantine_after = 2;
    flap_cfg.breaker.probe_after = 8;
    let flapping = run_scenario(
        flap_cfg,
        &[base_spec(7)],
        &arrival_times(ArrivalProcess::Poisson { rate: flap_rate }, n_flap, 31),
        16,
    );

    // --- dual_failure: a crash and an overlapping down-window leave one
    // node standing ---
    let n_dual = scale(8_000, 400);
    let dual_rate = 0.4 * svc_rate;
    let dual_d = n_dual as f64 / dual_rate;
    let mut dual_cfg = base_config(fleet(3));
    dual_cfg.nodes[0] = dual_cfg.nodes[0]
        .clone()
        .with_faults(NodeFaultPlan::none().with_crash_at(0.3 * dual_d));
    dual_cfg.nodes[1] = dual_cfg.nodes[1]
        .clone()
        .with_faults(NodeFaultPlan::none().with_down_window(0.3 * dual_d, 0.6 * dual_d));
    let dual = run_scenario(
        dual_cfg,
        &[base_spec(8)],
        &arrival_times(ArrivalProcess::Poisson { rate: dual_rate }, n_dual, 37),
        16,
    );

    // --- the robustness flags CI gates on ---
    let scenarios: [(&str, &ScenarioResult); 9] = [
        ("steady_poisson", &steady),
        ("bursty", &bursty),
        ("diurnal", &diurnal),
        ("node_crash", &crash),
        ("slow_node_hedge_off", &hedge_off),
        ("slow_node_hedge_on", &hedge_on),
        ("overload_shed", &overload),
        ("flapping", &flapping),
        ("dual_failure", &dual),
    ];
    let total_offered: usize = scenarios.iter().map(|(_, s)| s.report.offered).sum();
    let zero_lost_everywhere = scenarios.iter().all(|(_, s)| s.report.lost == 0);
    let no_hangs = scenarios
        .iter()
        .all(|(_, s)| s.report.max_latency_s < HANG_BOUND_S);
    let crash_zero_lost = crash.report.lost == 0 && crash.report.ok == crash.report.offered;
    let off_p99 = hedge_off.report.latency_percentile(99.0).unwrap_or(0.0);
    let on_p99 = hedge_on.report.latency_percentile(99.0).unwrap_or(f64::MAX);
    let hedging_improves_p99 = on_p99 < 0.9 * off_p99
        && hedge_on.report.hedge_wins > 0
        && hedge_on.report.lost == 0
        && hedge_off.report.lost == 0;
    let interactive_p95 = overload
        .report
        .class_percentile(Priority::Interactive, 95.0)
        .unwrap_or(f64::MAX);
    let interactive_slo_held = interactive_p95 <= INTERACTIVE_SLO_S
        && overload.report.shed_by_class[Priority::Interactive.index()] == 0;
    let besteffort_shed_first = overload.report.shed_by_class[Priority::BestEffort.index()] > 0
        && overload.report.shed_by_class[Priority::BestEffort.index()]
            >= overload.report.shed_by_class[Priority::Batch.index()];
    let flapping_reintegrated =
        flapping.quarantines >= 1 && flapping.reintegrations >= 1 && flapping.report.lost == 0;
    let dual_failure_served =
        dual.report.lost == 0 && dual.report.ok as f64 >= 0.98 * dual.report.offered as f64;

    let mut root = ObjectBuilder::new()
        .field("smoke", JsonValue::Bool(opts.smoke))
        .field("service_rate_rps", JsonValue::Number(svc_rate))
        .field("total_offered", JsonValue::Number(total_offered as f64))
        .field(
            "interactive_slo_ms",
            JsonValue::Number(INTERACTIVE_SLO_S * 1e3),
        )
        .field("no_hangs", JsonValue::Bool(no_hangs))
        .field(
            "zero_lost_everywhere",
            JsonValue::Bool(zero_lost_everywhere),
        )
        .field("crash_zero_lost", JsonValue::Bool(crash_zero_lost))
        .field(
            "hedging_improves_p99",
            JsonValue::Bool(hedging_improves_p99),
        )
        .field(
            "interactive_slo_held",
            JsonValue::Bool(interactive_slo_held),
        )
        .field(
            "besteffort_shed_first",
            JsonValue::Bool(besteffort_shed_first),
        )
        .field(
            "flapping_reintegrated",
            JsonValue::Bool(flapping_reintegrated),
        )
        .field("dual_failure_served", JsonValue::Bool(dual_failure_served));
    for (name, s) in &scenarios {
        root = root.field(&format!("scenario/{name}"), scenario_json(s));
    }
    let json = root.build().to_string();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write cluster report");

    // Re-read and self-validate with the workspace's own parser.
    let written = std::fs::read_to_string(out_path).expect("re-read cluster report");
    let report = JsonValue::parse(&written).expect("cluster report is valid JSON");
    for flag in [
        "no_hangs",
        "zero_lost_everywhere",
        "crash_zero_lost",
        "hedging_improves_p99",
        "interactive_slo_held",
        "besteffort_shed_first",
        "flapping_reintegrated",
        "dual_failure_served",
    ] {
        assert_eq!(
            report.get(flag),
            Some(&JsonValue::Bool(true)),
            "robustness flag {flag} did not hold (hedge p99 {:.2} ms -> {:.2} ms, \
             interactive p95 {:.2} ms)",
            off_p99 * 1e3,
            on_p99 * 1e3,
            interactive_p95 * 1e3,
        );
    }
    if !opts.smoke {
        assert!(
            total_offered >= 100_000,
            "full run offers 10^5+ requests, got {total_offered}"
        );
    }

    for (name, s) in &scenarios {
        let rep = &s.report;
        println!(
            "{name}: offered {} ok {} lost {} shed {} | p50 {:.2} ms p99 {:.2} ms | \
             {:.0} rps | hedges {} wins {} retries {}",
            rep.offered,
            rep.ok,
            rep.lost,
            rep.shed(),
            rep.latency_percentile(50.0).unwrap_or(0.0) * 1e3,
            rep.latency_percentile(99.0).unwrap_or(0.0) * 1e3,
            rep.throughput_rps(),
            rep.hedged,
            rep.hedge_wins,
            rep.retries,
        );
    }
    println!(
        "hedging: p99 {:.2} ms -> {:.2} ms; interactive p95 under 2x overload: {:.2} ms",
        off_p99 * 1e3,
        on_p99 * 1e3,
        interactive_p95 * 1e3
    );
    println!("cluster report validated: {out_path}");
}
