//! Regenerates the paper's Fig 8: SSIM of the six image workloads.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig8(config).expect("fig8 experiment");
    let mut header: Vec<&str> = shmt_kernels::ALL_BENCHMARKS
        .iter()
        .filter(|b| b.is_image())
        .map(|b| b.name())
        .collect();
    header.push("GMEAN");
    let table: Vec<(String, Vec<f64>)> = rows
        .into_iter()
        .map(|r| {
            let mut v = r.values;
            v.push(r.gmean);
            (r.policy, v)
        })
        .collect();
    shmt_bench::print_table(
        &format!(
            "Fig 8: SSIM, higher is better ({}x{})",
            config.size, config.size
        ),
        &header,
        &table,
        4,
    );
}
