//! Regenerates the paper's Fig 7: MAPE (%) of every quality policy.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig7(config).expect("fig7 experiment");
    let header = shmt_bench::benchmark_header();
    let table: Vec<(String, Vec<f64>)> = rows
        .into_iter()
        .map(|r| {
            let mut v: Vec<f64> = r.values.iter().map(|m| m * 100.0).collect();
            v.push(r.gmean * 100.0);
            (r.policy, v)
        })
        .collect();
    shmt_bench::print_table(
        &format!(
            "Fig 7: MAPE %, lower is better ({}x{})",
            config.size, config.size
        ),
        &header,
        &table,
        2,
    );
}
