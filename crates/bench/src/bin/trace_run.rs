//! Dumps one Chrome trace per scheduling policy for a single benchmark.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin trace_run -- --size 1024
//! ```
//!
//! Runs the benchmark once under each policy with full trace capture,
//! writes `results/trace_<policy>.json` for every run (Perfetto-loadable
//! Chrome trace-event JSON), and prints the per-device timeline summary.
//! Every file is validated by re-reading it with the crate's own parser
//! before it is reported as written.

use shmt::sampling::SamplingMethod;
use shmt::trace::{chrome, summary};
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_bench::parse_config;
use shmt_kernels::Benchmark;

fn policy_slug(policy: Policy) -> String {
    policy
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn main() {
    let config = parse_config(std::env::args().skip(1));
    let benchmark = Benchmark::Sobel;
    let policies = [
        Policy::EvenDistribution,
        Policy::WorkStealing,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        },
        Policy::Qaws {
            assignment: QawsAssignment::DeviceLimits,
            sampling: SamplingMethod::UniformRandom,
        },
        Policy::IraSampling,
        Policy::Oracle,
    ];

    println!(
        "tracing {benchmark} at {0}x{0} with {1} partitions\n",
        config.size, config.partitions
    );
    std::fs::create_dir_all("results").expect("create results dir");

    let inputs = benchmark.generate_inputs(config.size, config.size, config.seed);
    let vop = Vop::from_benchmark(benchmark, inputs).expect("valid VOP");

    for policy in policies {
        let mut cfg = RuntimeConfig::new(policy);
        cfg.partitions = config.partitions;
        let runtime = ShmtRuntime::new(Platform::jetson(benchmark), cfg);
        let report = runtime.execute_traced(&vop).expect("run succeeds");
        let trace = report.trace.as_ref().expect("traced run carries a trace");

        let json = chrome::to_chrome_json(trace);
        // Smoke-check the export with our own reader before writing.
        let parsed = chrome::from_chrome_json(&json).expect("exporter emits valid JSON");
        assert!(
            parsed.complete_events().count() > 0,
            "{}: trace must contain spans",
            policy.name()
        );

        let path = format!("results/trace_{}.json", policy_slug(policy));
        std::fs::write(&path, &json).expect("write trace file");

        println!(
            "-- {} -- makespan {:.2} ms, {} events, {} steals -> {path}",
            policy.name(),
            report.makespan_s * 1e3,
            trace.len(),
            trace.steals()
        );
        print!("{}", summary::timeline_summary(trace, report.makespan_s));
        println!();
    }
}
