//! Regenerates the paper's Fig 6: end-to-end speedup of every scheduling
//! policy relative to the GPU baseline.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig6(config).expect("fig6 experiment");
    let header = shmt_bench::benchmark_header();
    let table: Vec<(String, Vec<f64>)> = rows
        .into_iter()
        .map(|r| {
            let mut v = r.speedups;
            v.push(r.gmean);
            (r.policy, v)
        })
        .collect();
    shmt_bench::print_table(
        &format!(
            "Fig 6: speedup over GPU baseline ({}x{})",
            config.size, config.size
        ),
        &header,
        &table,
        2,
    );
}
