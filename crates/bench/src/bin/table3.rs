//! Regenerates the paper's Table 3: communication overhead per benchmark.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig11_table3(config).expect("table3 experiment");
    let header: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    let table = vec![(
        "comm overhead %".to_string(),
        rows.iter()
            .map(|r| r.comm_overhead * 100.0)
            .collect::<Vec<_>>(),
    )];
    shmt_bench::print_table(
        &format!(
            "Table 3: communication overhead percent ({0}x{0})",
            config.size
        ),
        &header,
        &table,
        2,
    );
}
