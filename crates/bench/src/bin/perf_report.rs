//! Machine-readable kernel performance report.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin perf_report
//! cargo run --release -p shmt-bench --bin perf_report -- --smoke
//! ```
//!
//! Benches every benchmark kernel's exact and NPU paths at two dataset
//! sizes, the naive reference implementations of Mean Filter and Sobel
//! (to quantify the interior/halo fast-path speedup), and one end-to-end
//! `ShmtRuntime::execute`, then writes the results as JSON:
//!
//! ```text
//! { "<bench>": { "best_ns": N, "mean_ns": N, "iters": N }, ... }
//! ```
//!
//! Two non-timing sections ride along: a `kernel/<b>/npu_differs` flag
//! per benchmark (the exact and NPU paths may legitimately converge in
//! *time* — Histogram's NPU path is a full exact accumulation plus a
//! 256-bin snap — so the report proves the paths are really different by
//! comparing their *outputs*), and a `serve/rps` section measuring warm
//! `shmt_serve::Server` throughput over mixed requests, self-validated
//! against [`RPS_FLOOR`] via the `rps_above_floor` field that CI greps.
//!
//! The default output is `BENCH_kernels.json` at the repository root —
//! commit it alongside performance PRs so reports can be diffed across
//! commits. `--smoke` runs a small, fast configuration and writes to
//! `results/BENCH_kernels_smoke.json` instead (the CI gate); `--out PATH`
//! overrides either default. Every file is re-read and validated with the
//! workspace's own JSON parser before the run reports success.

use std::time::{Duration, Instant};

use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_bench::harness::{Group, Measurement};
use shmt_kernels::reference::naive_kernel;
use shmt_kernels::{Benchmark, ALL_BENCHMARKS};
use shmt_serve::{Request, Server, ServerConfig};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;
use shmt_trace::json::{JsonValue, ObjectBuilder};

/// Minimum warm-server throughput (mixed Sobel / Mean Filter / FFT
/// requests) the report will certify. Deliberately conservative — the
/// gate exists to catch serve-path regressions of an order of
/// magnitude, not to flake on a loaded CI host.
const RPS_FLOOR: f64 = 2.0;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

fn full_tile(n: usize) -> Tile {
    Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows: n,
        cols: n,
    }
}

/// Warm-server requests-per-second over a mixed workload.
struct ServeRps {
    requests: usize,
    wall_s: f64,
    requests_per_s: f64,
}

fn to_json(
    measurements: &[Measurement],
    npu_flags: &[(Benchmark, bool)],
    rps: &ServeRps,
) -> JsonValue {
    let mut root = ObjectBuilder::new();
    for m in measurements {
        root = root.field(
            &m.name,
            ObjectBuilder::new()
                .field("best_ns", JsonValue::Number(m.best_ns as f64))
                .field("mean_ns", JsonValue::Number(m.mean_ns as f64))
                .field("iters", JsonValue::Number(f64::from(m.iters)))
                .build(),
        );
    }
    for (b, differs) in npu_flags {
        root = root.field(
            &format!("kernel/{b}/npu_differs"),
            JsonValue::Bool(*differs),
        );
    }
    root.field(
        "serve/rps",
        ObjectBuilder::new()
            .field("requests", JsonValue::Number(rps.requests as f64))
            .field("wall_s", JsonValue::Number(rps.wall_s))
            .field("requests_per_s", JsonValue::Number(rps.requests_per_s))
            .field("floor", JsonValue::Number(RPS_FLOOR))
            .field(
                "rps_above_floor",
                JsonValue::Bool(rps.requests_per_s > RPS_FLOOR),
            )
            .build(),
    )
    .build()
}

/// Times the serve path end to end: a warm [`Server`] handling mixed
/// Sobel / Mean Filter / FFT requests sequentially through the public
/// `submit_blocking` API. Warm-up requests (which grow the arenas and
/// spin up executors) run before the clock starts; timed requests are
/// pre-built so construction cost stays outside the window.
fn serve_rps(smoke: bool) -> ServeRps {
    let (requests, warmup, n, partitions) = if smoke {
        (6, 3, 128, 8)
    } else {
        (24, 6, 256, 16)
    };
    let server = Server::new(ServerConfig {
        executors: 4,
        queue_capacity: requests,
        ..ServerConfig::default()
    });
    let benches = [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft];
    let make = |i: usize| {
        let b = benches[i % benches.len()];
        let vop =
            Vop::from_benchmark(b, b.generate_inputs(n, n, 40 + i as u64)).expect("valid VOP");
        let mut config = RuntimeConfig::new(Policy::WorkStealing);
        config.partitions = partitions;
        Request::new(vop, Platform::jetson(b), config)
    };
    for i in 0..warmup {
        server
            .submit_blocking(make(i))
            .expect("server running")
            .wait()
            .expect("warm-up request succeeds");
    }
    let timed: Vec<Request> = (0..requests).map(make).collect();
    let started = Instant::now();
    for req in timed {
        server
            .submit_blocking(req)
            .expect("server running")
            .wait()
            .expect("timed request succeeds");
    }
    let wall_s = started.elapsed().as_secs_f64();
    ServeRps {
        requests,
        wall_s,
        requests_per_s: requests as f64 / wall_s,
    }
}

/// Best-time lookup in the serialized report.
fn best_ns(report: &JsonValue, key: &str) -> Option<f64> {
    report.get(key)?.get("best_ns")?.as_f64()
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (sizes, batch, samples, default_out): (&[usize], _, _, _) = if opts.smoke {
        (
            &[128],
            Duration::from_millis(5),
            2,
            "results/BENCH_kernels_smoke.json",
        )
    } else {
        (
            &[1024, 2048],
            Duration::from_millis(200),
            5,
            "BENCH_kernels.json",
        )
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);
    let big = *sizes.last().expect("at least one size");

    let group = Group::with_budget("kernel", batch, samples);
    for &n in sizes {
        let tile = full_tile(n);
        for b in ALL_BENCHMARKS {
            let kernel = b.kernel();
            let inputs = b.generate_inputs(n, n, 1);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let shape = kernel.shape();
            group.bench(&format!("{b}/exact/{n}"), || {
                let mut out = shape.allocate_output(n, n);
                kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
                out
            });
            group.bench(&format!("{b}/npu/{n}"), || {
                let mut out = shape.allocate_output(n, n);
                kernel.run_npu(std::hint::black_box(&refs), tile, &mut out);
                out
            });
        }
    }

    // The seed-era naive loops, preserved in shmt_kernels::reference:
    // best(reference) / best(exact) is the interior/halo speedup.
    for b in [Benchmark::MeanFilter, Benchmark::Sobel] {
        let kernel = naive_kernel(b);
        let inputs = b.generate_inputs(big, big, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let shape = kernel.shape();
        let tile = full_tile(big);
        group.bench(&format!("{b}/reference/{big}"), || {
            let mut out = shape.allocate_output(big, big);
            kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
            out
        });
    }

    // One end-to-end runtime execution: partitioning, QAWS scheduling,
    // all device paths, and aggregation.
    {
        let benchmark = Benchmark::Sobel;
        let inputs = benchmark.generate_inputs(big, big, 1);
        let vop = Vop::from_benchmark(benchmark, inputs).expect("valid VOP");
        let mut cfg = RuntimeConfig::new(Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        });
        cfg.partitions = if opts.smoke { 8 } else { 64 };
        let runtime = ShmtRuntime::new(Platform::jetson(benchmark), cfg);
        group.bench(&format!("e2e/{benchmark}/{big}"), || {
            runtime
                .execute(std::hint::black_box(&vop))
                .expect("run succeeds")
        });
    }

    // Output-difference audit (not a timing): run both paths once at the
    // small size and record whether the NPU output actually diverges.
    // Timings alone can't tell the paths apart — Histogram's converge.
    let small = sizes[0];
    let npu_flags: Vec<(Benchmark, bool)> = ALL_BENCHMARKS
        .iter()
        .map(|&b| {
            let kernel = b.kernel();
            let inputs = b.generate_inputs(small, small, 1);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let shape = kernel.shape();
            let tile = full_tile(small);
            let mut exact = shape.allocate_output(small, small);
            kernel.run_exact(&refs, tile, &mut exact);
            let mut npu = shape.allocate_output(small, small);
            kernel.run_npu(&refs, tile, &mut npu);
            (b, exact.as_slice() != npu.as_slice())
        })
        .collect();

    let rps = serve_rps(opts.smoke);

    let measurements = group.take_measurements();
    let json = to_json(&measurements, &npu_flags, &rps).to_string();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write perf report");

    // Validate the artifact with the workspace's own parser: it must
    // parse, and it must cover every benchmark on both paths.
    let written = std::fs::read_to_string(out_path).expect("re-read perf report");
    let report = JsonValue::parse(&written).expect("perf report is valid JSON");
    for b in ALL_BENCHMARKS {
        for path in ["exact", "npu"] {
            for &n in sizes {
                let key = format!("kernel/{b}/{path}/{n}");
                let best =
                    best_ns(&report, &key).unwrap_or_else(|| panic!("report is missing {key}"));
                assert!(best > 0.0, "{key} has non-positive best time");
            }
        }
        // The NPU path must really be a different computation, whatever
        // its timing row says.
        let differs = report
            .get(&format!("kernel/{b}/npu_differs"))
            .and_then(|v| match v {
                JsonValue::Bool(x) => Some(*x),
                _ => None,
            })
            .unwrap_or_else(|| panic!("report is missing kernel/{b}/npu_differs"));
        assert!(differs, "{b}: npu output is identical to exact output");
    }

    // Serve-path throughput: the section must exist, be positive, and
    // clear the recorded floor — `rps_above_floor` is what CI greps.
    let serve = report.get("serve/rps").expect("serve/rps section present");
    let rps_value = serve
        .get("requests_per_s")
        .and_then(JsonValue::as_f64)
        .expect("requests_per_s present");
    assert!(
        rps_value > RPS_FLOOR,
        "serve path ran at {rps_value:.2} req/s, below the {RPS_FLOOR} floor"
    );
    assert_eq!(
        serve.get("rps_above_floor"),
        Some(&JsonValue::Bool(true)),
        "rps_above_floor must self-validate"
    );
    println!(
        "serve path: {rps_value:.2} req/s over {} warm mixed requests",
        rps.requests
    );

    for b in [Benchmark::MeanFilter, Benchmark::Sobel] {
        let naive = best_ns(&report, &format!("kernel/{b}/reference/{big}"))
            .expect("reference entry present");
        let fast =
            best_ns(&report, &format!("kernel/{b}/exact/{big}")).expect("exact entry present");
        println!(
            "{b}: naive/optimized best-time ratio at {big}x{big}: {:.2}x",
            naive / fast
        );
    }
    println!(
        "perf report written and validated: {out_path} ({} entries)",
        measurements.len()
    );
}
