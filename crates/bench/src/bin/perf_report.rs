//! Machine-readable kernel performance report.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin perf_report
//! cargo run --release -p shmt-bench --bin perf_report -- --smoke
//! ```
//!
//! Benches every benchmark kernel's exact and NPU paths at two dataset
//! sizes, the naive reference implementations of Mean Filter and Sobel
//! (to quantify the interior/halo fast-path speedup), and one end-to-end
//! `ShmtRuntime::execute`, then writes the results as JSON:
//!
//! ```text
//! { "<bench>": { "best_ns": N, "mean_ns": N, "iters": N }, ... }
//! ```
//!
//! The default output is `BENCH_kernels.json` at the repository root —
//! commit it alongside performance PRs so reports can be diffed across
//! commits. `--smoke` runs a small, fast configuration and writes to
//! `results/BENCH_kernels_smoke.json` instead (the CI gate); `--out PATH`
//! overrides either default. Every file is re-read and validated with the
//! workspace's own JSON parser before the run reports success.

use std::time::Duration;

use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_bench::harness::{Group, Measurement};
use shmt_kernels::reference::naive_kernel;
use shmt_kernels::{Benchmark, ALL_BENCHMARKS};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;
use shmt_trace::json::{JsonValue, ObjectBuilder};

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

fn full_tile(n: usize) -> Tile {
    Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows: n,
        cols: n,
    }
}

fn to_json(measurements: &[Measurement]) -> JsonValue {
    let mut root = ObjectBuilder::new();
    for m in measurements {
        root = root.field(
            &m.name,
            ObjectBuilder::new()
                .field("best_ns", JsonValue::Number(m.best_ns as f64))
                .field("mean_ns", JsonValue::Number(m.mean_ns as f64))
                .field("iters", JsonValue::Number(f64::from(m.iters)))
                .build(),
        );
    }
    root.build()
}

/// Best-time lookup in the serialized report.
fn best_ns(report: &JsonValue, key: &str) -> Option<f64> {
    report.get(key)?.get("best_ns")?.as_f64()
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (sizes, batch, samples, default_out): (&[usize], _, _, _) = if opts.smoke {
        (
            &[128],
            Duration::from_millis(5),
            2,
            "results/BENCH_kernels_smoke.json",
        )
    } else {
        (
            &[1024, 2048],
            Duration::from_millis(200),
            5,
            "BENCH_kernels.json",
        )
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);
    let big = *sizes.last().expect("at least one size");

    let group = Group::with_budget("kernel", batch, samples);
    for &n in sizes {
        let tile = full_tile(n);
        for b in ALL_BENCHMARKS {
            let kernel = b.kernel();
            let inputs = b.generate_inputs(n, n, 1);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let shape = kernel.shape();
            group.bench(&format!("{b}/exact/{n}"), || {
                let mut out = shape.allocate_output(n, n);
                kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
                out
            });
            group.bench(&format!("{b}/npu/{n}"), || {
                let mut out = shape.allocate_output(n, n);
                kernel.run_npu(std::hint::black_box(&refs), tile, &mut out);
                out
            });
        }
    }

    // The seed-era naive loops, preserved in shmt_kernels::reference:
    // best(reference) / best(exact) is the interior/halo speedup.
    for b in [Benchmark::MeanFilter, Benchmark::Sobel] {
        let kernel = naive_kernel(b);
        let inputs = b.generate_inputs(big, big, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let shape = kernel.shape();
        let tile = full_tile(big);
        group.bench(&format!("{b}/reference/{big}"), || {
            let mut out = shape.allocate_output(big, big);
            kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
            out
        });
    }

    // One end-to-end runtime execution: partitioning, QAWS scheduling,
    // all device paths, and aggregation.
    {
        let benchmark = Benchmark::Sobel;
        let inputs = benchmark.generate_inputs(big, big, 1);
        let vop = Vop::from_benchmark(benchmark, inputs).expect("valid VOP");
        let mut cfg = RuntimeConfig::new(Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        });
        cfg.partitions = if opts.smoke { 8 } else { 64 };
        let runtime = ShmtRuntime::new(Platform::jetson(benchmark), cfg);
        group.bench(&format!("e2e/{benchmark}/{big}"), || {
            runtime
                .execute(std::hint::black_box(&vop))
                .expect("run succeeds")
        });
    }

    let measurements = group.take_measurements();
    let json = to_json(&measurements).to_string();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write perf report");

    // Validate the artifact with the workspace's own parser: it must
    // parse, and it must cover every benchmark on both paths.
    let written = std::fs::read_to_string(out_path).expect("re-read perf report");
    let report = JsonValue::parse(&written).expect("perf report is valid JSON");
    for b in ALL_BENCHMARKS {
        for path in ["exact", "npu"] {
            for &n in sizes {
                let key = format!("kernel/{b}/{path}/{n}");
                let best =
                    best_ns(&report, &key).unwrap_or_else(|| panic!("report is missing {key}"));
                assert!(best > 0.0, "{key} has non-positive best time");
            }
        }
    }

    for b in [Benchmark::MeanFilter, Benchmark::Sobel] {
        let naive = best_ns(&report, &format!("kernel/{b}/reference/{big}"))
            .expect("reference entry present");
        let fast =
            best_ns(&report, &format!("kernel/{b}/exact/{big}")).expect("exact entry present");
        println!(
            "{b}: naive/optimized best-time ratio at {big}x{big}: {:.2}x",
            naive / fast
        );
    }
    println!(
        "perf report written and validated: {out_path} ({} entries)",
        measurements.len()
    );
}
