//! Sweeps the fault-injection scenarios across all six QAWS variants.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin fault_sweep -- --size 1024
//! ```
//!
//! Runs Sobel under each QAWS variant against six fault scenarios — none,
//! a GPU slowdown window, transient transfer failures, the Edge TPU absent
//! from the start, a mid-run GPU dropout, and a double dropout where a
//! second device dies during the first dropout's re-dispatch — and writes
//! `results/faults_<policy>.json` with makespan, output MAPE, and the
//! fault counters per scenario. Every file is validated by re-reading it
//! with the crate's own JSON parser before it is reported as written, and
//! the degraded flag is asserted to fire exactly for the dropout
//! scenarios.

use shmt::quality::mape;
use shmt::sched::{GPU, TPU};
use shmt::{FaultPlan, Platform, Policy, RuntimeConfig, ShmtRuntime, Vop};
use shmt_bench::parse_config;
use shmt_kernels::Benchmark;
use shmt_tensor::Tensor;
use shmt_trace::json::{JsonValue, ObjectBuilder};

fn policy_slug(policy: Policy) -> String {
    policy
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// The sweep's fault schedules. The GPU dropout lands a quarter of the way
/// into the healthy run so its queue still holds work to re-dispatch.
fn scenarios(healthy_makespan_s: f64, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "gpu_slowdown",
            FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0),
        ),
        (
            "transfer_faults",
            FaultPlan::none()
                .with_seed(seed)
                .with_transfer_failures(0.25),
        ),
        ("tpu_dropout", FaultPlan::none().with_unavailable(TPU)),
        (
            "gpu_dropout",
            FaultPlan::none().with_dropout(GPU, healthy_makespan_s * 0.25),
        ),
        // A second device dies while the orphans of the first dropout are
        // still being re-dispatched — recovery must be idempotent.
        (
            "double_dropout",
            FaultPlan::none()
                .with_dropout(TPU, healthy_makespan_s * 0.2)
                .with_dropout(GPU, healthy_makespan_s * 0.45),
        ),
    ]
}

fn scenario_row(name: &str, makespan_s: f64, err: f64, faults: &shmt::FaultReport) -> JsonValue {
    ObjectBuilder::new()
        .field("name", JsonValue::String(name.into()))
        .field("makespan_s", JsonValue::Number(makespan_s))
        .field("mape", JsonValue::Number(err))
        .field("injected", JsonValue::Number(faults.injected as f64))
        .field("retried", JsonValue::Number(faults.retried as f64))
        .field(
            "redispatched",
            JsonValue::Number(faults.redispatched as f64),
        )
        .field(
            "devices_lost",
            JsonValue::Number(faults.devices_lost as f64),
        )
        .field("degraded", JsonValue::Bool(faults.degraded))
        .build()
}

/// Re-reads a written document and checks the invariant the sweep exists
/// to demonstrate: `degraded` fires exactly for the dropout scenarios.
fn validate(json: &str, policy: &str) {
    let doc = JsonValue::parse(json).expect("sweep output must parse");
    let rows = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("scenarios array");
    assert_eq!(rows.len(), 6, "{policy}: six scenarios");
    for row in rows {
        let name = row.get("name").and_then(JsonValue::as_str).expect("name");
        let degraded = matches!(row.get("degraded"), Some(JsonValue::Bool(true)));
        assert_eq!(
            degraded,
            name.ends_with("dropout"),
            "{policy}/{name}: degraded must be set iff a dropout was injected"
        );
    }
}

fn main() {
    let config = parse_config(std::env::args().skip(1));
    let benchmark = Benchmark::Sobel;

    println!(
        "fault sweep: {benchmark} at {0}x{0} with {1} partitions, seed {2}\n",
        config.size, config.partitions, config.seed
    );
    std::fs::create_dir_all("results").expect("create results dir");

    let inputs = benchmark.generate_inputs(config.size, config.size, config.seed);
    let vop = Vop::from_benchmark(benchmark, inputs).expect("valid VOP");
    let reference: Tensor = shmt::baseline::exact_reference(&vop);

    for policy in Policy::qaws_variants() {
        let mut cfg = RuntimeConfig::new(policy);
        cfg.partitions = config.partitions;
        let runtime = ShmtRuntime::new(Platform::jetson(benchmark), cfg);
        let healthy = runtime.execute(&vop).expect("healthy run succeeds");

        let mut rows: Vec<JsonValue> = Vec::new();
        for (name, plan) in scenarios(healthy.makespan_s, config.seed) {
            let report = runtime
                .execute_with_faults(&vop, &plan)
                .expect("faulted run succeeds");
            // Seeded plans must reproduce exactly; spot-check every
            // scenario with a second run.
            let again = runtime
                .execute_with_faults(&vop, &plan)
                .expect("rerun succeeds");
            assert_eq!(
                report.makespan_s, again.makespan_s,
                "{name}: reruns are bit-identical"
            );
            assert_eq!(report.output.as_slice(), again.output.as_slice());
            assert_eq!(report.faults, again.faults);

            let err = mape(&reference, &report.output);
            if name == "tpu_dropout" {
                assert_eq!(err, 0.0, "a dead TPU degrades to an all-exact run");
            }
            println!(
                "  {:<10} {:<16} makespan {:>8.3} ms  mape {:>9.5}  injected {:>3}  \
                 redispatched {:>2}  degraded {}",
                policy.name(),
                name,
                report.makespan_s * 1e3,
                err,
                report.faults.injected,
                report.faults.redispatched,
                report.faults.degraded
            );
            rows.push(scenario_row(name, report.makespan_s, err, &report.faults));
        }

        let doc = ObjectBuilder::new()
            .field("policy", JsonValue::String(policy.name().to_string()))
            .field("benchmark", JsonValue::String(benchmark.name().into()))
            .field("size", JsonValue::Number(config.size as f64))
            .field("partitions", JsonValue::Number(config.partitions as f64))
            .field("seed", JsonValue::Number(config.seed as f64))
            .field("healthy_makespan_s", JsonValue::Number(healthy.makespan_s))
            .field("scenarios", JsonValue::Array(rows))
            .build()
            .to_string();
        validate(&doc, policy.name());

        let path = format!("results/faults_{}.json", policy_slug(policy));
        std::fs::write(&path, &doc).expect("write sweep file");
        println!("  -> {path}\n");
    }
}
