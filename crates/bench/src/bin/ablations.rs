//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Partition granularity** — the §3.4 page-granular tiling vs finer
//!    and coarser partitions.
//! 2. **Steal restriction** — QAWS's accuracy-ordered stealing vs
//!    unrestricted stealing.
//! 3. **Criticality metric** — sampled range vs stddev vs combined.
//! 4. **Transfer overlap** — double buffering vs synchronous transfers.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin ablations [--size N]
//! ```

use shmt::baseline::{exact_reference, gpu_baseline};
use shmt::criticality::CriticalityMetric;
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;

fn qaws_ts() -> Policy {
    Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    }
}

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    for b in [Benchmark::Sobel, Benchmark::Fft] {
        run_benchmark(b, config);
    }
}

fn run_benchmark(b: Benchmark, config: shmt::experiments::ExperimentConfig) {
    println!(
        "Ablations on {b} at {0}x{0} (speedup over GPU baseline / MAPE %)\n",
        config.size
    );
    let vop = Vop::from_benchmark(b, b.generate_inputs(config.size, config.size, config.seed))
        .expect("valid vop");
    let platform = Platform::jetson(b);
    let reference = exact_reference(&vop);
    let baseline = gpu_baseline(&platform, &vop, config.partitions).expect("baseline");

    let eval = |cfg: RuntimeConfig| {
        let r = ShmtRuntime::new(platform.clone(), cfg)
            .execute(&vop)
            .expect("run");
        (
            baseline.makespan_s / r.makespan_s,
            mape(&reference, &r.output) * 100.0,
        )
    };

    println!("-- partition granularity (QAWS-TS) --");
    for parts in [4usize, 16, 64, 256] {
        let mut cfg = RuntimeConfig::new(qaws_ts());
        cfg.partitions = parts;
        let (s, m) = eval(cfg);
        println!("  {parts:>4} partitions: {s:5.2}x  MAPE {m:5.2}%");
    }

    println!("\n-- steal restriction (QAWS-TS) --");
    for (label, unrestricted) in [("accuracy-ordered", false), ("unrestricted", true)] {
        let mut cfg = RuntimeConfig::new(qaws_ts());
        cfg.partitions = config.partitions;
        cfg.quality.unrestricted_steal = unrestricted;
        let (s, m) = eval(cfg);
        println!("  {label:<18}: {s:5.2}x  MAPE {m:5.2}%");
    }

    println!("\n-- criticality metric (QAWS-TS) --");
    for (label, metric) in [
        ("range", CriticalityMetric::Range),
        ("stddev", CriticalityMetric::StdDev),
        ("range + 2*stddev", CriticalityMetric::Combined),
    ] {
        let mut cfg = RuntimeConfig::new(qaws_ts());
        cfg.partitions = config.partitions;
        cfg.quality.metric = metric;
        let (s, m) = eval(cfg);
        println!("  {label:<18}: {s:5.2}x  MAPE {m:5.2}%");
    }

    println!("\n-- transfer overlap (work stealing) --");
    for (label, sync) in [("double-buffered", false), ("synchronous", true)] {
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.partitions = config.partitions;
        cfg.force_synchronous = sync;
        let (s, m) = eval(cfg);
        println!("  {label:<18}: {s:5.2}x  MAPE {m:5.2}%");
    }
}
