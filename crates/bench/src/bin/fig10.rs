//! Regenerates the paper's Fig 10: energy breakdown and EDP of SHMT with
//! QAWS-TS, normalized to the GPU baseline.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig10(config).expect("fig10 experiment");
    let header: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    let table = vec![
        (
            "base active".to_string(),
            rows.iter().map(|r| r.baseline_active).collect::<Vec<_>>(),
        ),
        (
            "base idle".to_string(),
            rows.iter().map(|r| r.baseline_idle).collect(),
        ),
        (
            "SHMT active".to_string(),
            rows.iter().map(|r| r.shmt_active).collect(),
        ),
        (
            "SHMT idle".to_string(),
            rows.iter().map(|r| r.shmt_idle).collect(),
        ),
        (
            "SHMT energy".to_string(),
            rows.iter().map(|r| r.shmt_active + r.shmt_idle).collect(),
        ),
        (
            "SHMT EDP".to_string(),
            rows.iter().map(|r| r.shmt_edp).collect(),
        ),
    ];
    shmt_bench::print_table(
        &format!(
            "Fig 10: energy vs GPU baseline, lower is better ({}x{})",
            config.size, config.size
        ),
        &header,
        &table,
        3,
    );
}
