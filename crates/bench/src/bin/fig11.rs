//! Regenerates the paper's Fig 11: memory footprint of SHMT relative to
//! the GPU baseline.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig11_table3(config).expect("fig11 experiment");
    let header: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    let table = vec![(
        "memory ratio".to_string(),
        rows.iter().map(|r| r.memory_ratio).collect::<Vec<_>>(),
    )];
    shmt_bench::print_table(
        &format!(
            "Fig 11: memory footprint ratio over GPU baseline ({0}x{0})",
            config.size
        ),
        &header,
        &table,
        3,
    );
}
