//! Regenerates the paper's Fig 12: QAWS-TS speedup vs problem size
//! (4K .. 64M elements; pass --size to bound the largest edge).

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    // Edges 64 (4K) doubling up to the configured size (default 2048; the
    // paper's 64M point is --size 8192).
    let mut edges = Vec::new();
    let mut e = 64usize;
    while e <= config.size {
        edges.push(e);
        e *= 2;
    }
    let rows = shmt::experiments::fig12(config, &edges).expect("fig12 experiment");
    let header = shmt_bench::benchmark_header();
    let table: Vec<(String, Vec<f64>)> = rows
        .into_iter()
        .map(|r| {
            let label = if r.elements >= 1 << 20 {
                format!("{}M", r.elements >> 20)
            } else {
                format!("{}K", r.elements >> 10)
            };
            let mut v = r.speedups;
            v.push(r.gmean);
            (label, v)
        })
        .collect();
    shmt_bench::print_table(
        "Fig 12: QAWS-TS speedup vs problem size",
        &header,
        &table,
        2,
    );
}
