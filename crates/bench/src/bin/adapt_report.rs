//! Adaptive-scheduling self-validation: does closing the loop from
//! Observatory profiles back to the planner actually pay?
//!
//! ```text
//! cargo run --release -p shmt-bench --bin adapt_report
//! cargo run --release -p shmt-bench --bin adapt_report -- --smoke
//! ```
//!
//! Two scenarios, each of which aborts the bin on failure:
//!
//! 1. **Throughput under slowdown** — a stream of Sobel requests runs
//!    under an injected 4× GPU slowdown, static planner vs the adaptive
//!    loop (each request recalibrated from the EWMA profiles the
//!    previous requests fed). Adaptive must strictly beat static on
//!    end-to-end virtual-time throughput. The first (cold-observatory)
//!    request and a full adaptation-*disabled* replay must stay
//!    bit-identical to the static arm, and re-running the adaptive arm
//!    must reproduce it bit for bit.
//! 2. **Quality SLO under TPU miscalibration** — the same stream under
//!    a 1.5× TPU gain error with a monitoring guard measuring the
//!    delivered error. The static QAWS plan breaches a 0.10 MAPE SLO;
//!    the adaptive loop must squeeze TPU admission from the measured
//!    MAPE EWMA until post-warmup requests hold the SLO.
//!
//! The default artifact is `BENCH_adapt.json` at the repository root;
//! `--smoke` writes `results/BENCH_adapt_smoke.json` (the CI gate).
//! Either file is re-read and validated with the workspace's own JSON
//! parser before the run reports success.

use shmt::calibration::{bench_profile, AdaptiveConfig, Calibration};
use shmt::quality::mape;
use shmt::sampling::SamplingMethod;
use shmt::sched::{CPU, GPU, TPU};
use shmt::{
    AdaptiveCalibration, FaultPlan, GuardConfig, Platform, Policy, QawsAssignment, RunReport,
    RuntimeConfig, ShmtRuntime, Vop,
};
use shmt_kernels::Benchmark;
use shmt_trace::json::{JsonValue, ObjectBuilder};
use shmt_trace::Observatory;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

/// A compute-dominant platform (slow GPU) so the injected slowdown and
/// the decision-side estimates dominate fixed launch overheads.
fn slow_platform(b: Benchmark) -> Platform {
    Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Calibration::default()
        },
        bench_profile(b),
    )
}

fn vop(b: Benchmark, n: usize, seed: u64) -> Vop {
    Vop::from_benchmark(b, b.generate_inputs(n, n, seed)).expect("valid VOP")
}

/// Static per-device element rates for this kernel — the denominator
/// `calibrate` compares observed EWMA throughput against.
fn modeled_elems_per_s(platform: &Platform, v: &Vop) -> [f64; 3] {
    let work = v.kernel().work_per_element();
    let profiles = platform.device_profiles();
    [
        profiles[GPU].throughput / work,
        profiles[CPU].throughput / work,
        profiles[TPU].throughput / work,
    ]
}

/// Feeds a finished report into the observatory exactly the way the
/// serving layer does.
fn feed(obs: &mut Observatory, report: &RunReport, opcode: &str) {
    for (d, (_, elems)) in report.device_elements().into_iter().enumerate() {
        let busy = report.devices[d].busy_s;
        if busy > 0.0 && elems > 0 {
            obs.observe_span(d, opcode, elems, busy);
        }
    }
    if report.quality.enabled && report.quality.checked_hlops > 0 {
        obs.observe_mape(TPU, report.quality.true_mape);
    }
}

struct ArmResult {
    reports: Vec<RunReport>,
    calibrations: Vec<AdaptiveCalibration>,
}

/// One scenario's fixed shape: the request stream and the fault plan it
/// runs under. Arms differ only in the adaptive config.
struct Scenario<'a> {
    platform: &'a Platform,
    base: RuntimeConfig,
    requests: usize,
    n: usize,
    seed0: u64,
    faults: &'a FaultPlan,
    slo: Option<f64>,
}

impl Scenario<'_> {
    /// Runs the request stream, recalibrating each request from the
    /// observations of the previous ones under `adapt` (the disabled
    /// config reproduces the static arm bit for bit).
    fn run_arm(&self, adapt: &AdaptiveConfig) -> ArmResult {
        let mut obs = Observatory::new();
        let mut reports = Vec::with_capacity(self.requests);
        let mut calibrations = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            let v = vop(Benchmark::Sobel, self.n, self.seed0 + i as u64);
            let cal = adapt.calibrate(
                obs.profiles(),
                modeled_elems_per_s(self.platform, &v),
                "Sobel",
                self.slo,
            );
            let mut config = self.base;
            config.adapt = cal;
            let report = ShmtRuntime::new(self.platform.clone(), config)
                .execute_with_faults(&v, self.faults)
                .expect("request succeeds");
            feed(&mut obs, &report, "Sobel");
            calibrations.push(cal);
            reports.push(report);
        }
        ArmResult {
            reports,
            calibrations,
        }
    }
}

fn bit_identical(a: &ArmResult, b: &ArmResult) -> bool {
    a.reports.len() == b.reports.len()
        && a.reports.iter().zip(&b.reports).all(|(x, y)| {
            x.output.as_slice() == y.output.as_slice() && x.makespan_s == y.makespan_s
        })
}

/// End-to-end virtual-time throughput of an arm: total elements over
/// total makespan.
fn throughput(arm: &ArmResult, n: usize) -> f64 {
    let elements = (arm.reports.len() * n * n) as f64;
    let makespan: f64 = arm.reports.iter().map(|r| r.makespan_s).sum();
    elements / makespan
}

fn number_array(values: impl IntoIterator<Item = f64>) -> JsonValue {
    JsonValue::Array(values.into_iter().map(JsonValue::Number).collect())
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (n, requests, default_out) = if opts.smoke {
        (96, 6, "results/BENCH_adapt_smoke.json")
    } else {
        (192, 10, "BENCH_adapt.json")
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);
    let partitions = 16;
    let platform = slow_platform(Benchmark::Sobel);
    let enabled = AdaptiveConfig::enabled();
    let disabled = AdaptiveConfig::default();

    // ---- 1. Throughput under an injected 4x GPU slowdown -------------
    let slowdown = FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0);
    let mut ws = RuntimeConfig::new(Policy::WorkStealing);
    ws.partitions = partitions;
    let scenario = Scenario {
        platform: &platform,
        base: ws,
        requests,
        n,
        seed0: 100,
        faults: &slowdown,
        slo: None,
    };
    let static_arm = scenario.run_arm(&disabled);
    let adaptive_arm = scenario.run_arm(&enabled);
    let replay_arm = scenario.run_arm(&enabled);
    let disabled_arm = scenario.run_arm(&disabled);

    assert!(
        static_arm
            .calibrations
            .iter()
            .all(AdaptiveCalibration::is_neutral),
        "the disabled config must never calibrate away from neutral"
    );
    let first_request_bit_identical = adaptive_arm.reports[0].output.as_slice()
        == static_arm.reports[0].output.as_slice()
        && adaptive_arm.reports[0].makespan_s == static_arm.reports[0].makespan_s;
    assert!(
        first_request_bit_identical,
        "a cold observatory must leave the first request on the static path"
    );
    let disabled_bit_identical = bit_identical(&disabled_arm, &static_arm);
    assert!(
        disabled_bit_identical,
        "adaptation off must be bit-identical to the static planner"
    );
    let replay_deterministic = bit_identical(&adaptive_arm, &replay_arm)
        && adaptive_arm.calibrations == replay_arm.calibrations;
    assert!(
        replay_deterministic,
        "the adaptive arm must replay bit for bit from the same stream"
    );
    assert!(
        !adaptive_arm
            .calibrations
            .last()
            .expect("non-empty arm")
            .is_neutral(),
        "a sustained 4x slowdown must drive the calibration off neutral"
    );
    let static_throughput = throughput(&static_arm, n);
    let adaptive_throughput = throughput(&adaptive_arm, n);
    let adaptive_beats_static = adaptive_throughput > static_throughput;
    assert!(
        adaptive_beats_static,
        "adaptive {adaptive_throughput:.0} elem/s must strictly beat static \
         {static_throughput:.0} elem/s under the slowdown"
    );
    let gpu_speed_factor_final = adaptive_arm
        .calibrations
        .last()
        .expect("non-empty arm")
        .speed_factors[GPU];
    println!(
        "slowdown: static {static_throughput:.0} elem/s, adaptive {adaptive_throughput:.0} \
         elem/s ({:+.1}%), final GPU factor {gpu_speed_factor_final:.3}",
        (adaptive_throughput / static_throughput - 1.0) * 100.0
    );

    // ---- 2. Quality SLO under a 1.5x TPU gain error ------------------
    let slo = 0.10;
    let miscal = FaultPlan::none().with_tpu_miscalibration(1.5, 0.1);
    let mut topk = RuntimeConfig::new(Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    });
    topk.partitions = partitions;
    topk.guard = GuardConfig::monitor(slo);
    let scenario = Scenario {
        platform: &platform,
        base: topk,
        requests,
        n,
        seed0: 200,
        faults: &miscal,
        slo: Some(slo),
    };
    let static_q = scenario.run_arm(&disabled);
    let adaptive_q = scenario.run_arm(&enabled);

    // Bench-side delivered quality: each output against an exact-devices
    // reference of the same request (the guard only *measures* here; a
    // monitoring guard never repairs).
    let reference = |i: usize| {
        let mut config = topk;
        config.guard = GuardConfig::default();
        config.device_mask = [true, true, false];
        ShmtRuntime::new(platform.clone(), config)
            .execute(&vop(Benchmark::Sobel, n, 200 + i as u64))
            .expect("exact reference succeeds")
            .output
    };
    let mape_of = |arm: &ArmResult| -> Vec<f64> {
        arm.reports
            .iter()
            .enumerate()
            .map(|(i, r)| mape(&reference(i), &r.output))
            .collect()
    };
    let static_mape = mape_of(&static_q);
    let adaptive_mape = mape_of(&adaptive_q);
    let warmup = enabled.min_mape_observations as usize;
    let static_breaches = static_mape.iter().any(|&m| m > slo);
    assert!(
        static_breaches,
        "the static plan must breach the {slo} SLO under miscalibration: {static_mape:?}"
    );
    let adaptive_holds =
        adaptive_mape.len() > warmup && adaptive_mape[warmup..].iter().all(|&m| m <= slo);
    assert!(
        adaptive_holds,
        "post-warmup adaptive requests must hold the {slo} SLO: {adaptive_mape:?}"
    );
    let final_admission = adaptive_q
        .calibrations
        .last()
        .expect("non-empty arm")
        .tpu_admission;
    let final_tpu_fraction = adaptive_q
        .reports
        .last()
        .expect("non-empty arm")
        .tpu_fraction;
    assert!(
        final_admission < 1.0,
        "measured error over target must have squeezed admission, got {final_admission}"
    );
    println!(
        "quality: static MAPE {:.3} (breach), adaptive final MAPE {:.4} (SLO {slo}), \
         final admission {final_admission:.4}, final TPU fraction {final_tpu_fraction:.3}",
        static_mape.last().expect("non-empty"),
        adaptive_mape.last().expect("non-empty"),
    );

    // ---- Artifact ----------------------------------------------------
    let json = ObjectBuilder::new()
        .field(
            "workload",
            ObjectBuilder::new()
                .field("requests", JsonValue::Number(requests as f64))
                .field("dataset", JsonValue::Number(n as f64))
                .field("partitions", JsonValue::Number(partitions as f64))
                .field("benchmark", JsonValue::String("Sobel".to_owned()))
                .build(),
        )
        .field(
            "slowdown",
            ObjectBuilder::new()
                .field("injected_gpu_factor", JsonValue::Number(4.0))
                .field("static_elems_per_s", JsonValue::Number(static_throughput))
                .field(
                    "adaptive_elems_per_s",
                    JsonValue::Number(adaptive_throughput),
                )
                .field(
                    "speedup",
                    JsonValue::Number(adaptive_throughput / static_throughput),
                )
                .field(
                    "gpu_speed_factor_final",
                    JsonValue::Number(gpu_speed_factor_final),
                )
                .field(
                    "adaptive_beats_static",
                    JsonValue::Bool(adaptive_beats_static),
                )
                .field(
                    "first_request_bit_identical",
                    JsonValue::Bool(first_request_bit_identical),
                )
                .field(
                    "disabled_bit_identical",
                    JsonValue::Bool(disabled_bit_identical),
                )
                .field(
                    "replay_deterministic",
                    JsonValue::Bool(replay_deterministic),
                )
                .build(),
        )
        .field(
            "quality",
            ObjectBuilder::new()
                .field("slo_mape", JsonValue::Number(slo))
                .field("warmup_requests", JsonValue::Number(warmup as f64))
                .field("static_mape", number_array(static_mape.iter().copied()))
                .field("adaptive_mape", number_array(adaptive_mape.iter().copied()))
                .field("final_admission", JsonValue::Number(final_admission))
                .field("final_tpu_fraction", JsonValue::Number(final_tpu_fraction))
                .field("static_breaches", JsonValue::Bool(static_breaches))
                .field("adaptive_holds", JsonValue::Bool(adaptive_holds))
                .build(),
        )
        .build()
        .to_string();

    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write adapt report");

    // Validate the artifact with the workspace's own parser.
    let written = std::fs::read_to_string(out_path).expect("re-read adapt report");
    let report = JsonValue::parse(&written).expect("adapt report is valid JSON");
    let flag = |section: &str, name: &str| {
        matches!(
            report.get(section).and_then(|o| o.get(name)),
            Some(JsonValue::Bool(true))
        )
    };
    for (section, name) in [
        ("slowdown", "adaptive_beats_static"),
        ("slowdown", "first_request_bit_identical"),
        ("slowdown", "disabled_bit_identical"),
        ("slowdown", "replay_deterministic"),
        ("quality", "static_breaches"),
        ("quality", "adaptive_holds"),
    ] {
        assert!(flag(section, name), "missing flag {section}.{name}");
    }
    let speedup = report
        .get("slowdown")
        .and_then(|s| s.get("speedup"))
        .and_then(JsonValue::as_f64)
        .expect("speedup field present");
    assert!(speedup > 1.0, "artifact must record a real speedup");

    println!(
        "adapt report written and validated: {out_path} \
         (speedup {speedup:.3}, SLO held with admission {final_admission:.4})"
    );
}
