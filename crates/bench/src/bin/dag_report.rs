//! Machine-readable DAG-composition report.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin dag_report
//! cargo run --release -p shmt-bench --bin dag_report -- --smoke
//! ```
//!
//! Runs three pipelines through [`shmt::VopDag`] and certifies the DAG
//! layer's contract:
//!
//! * **vision** — Sobel → Histogram, a linear benchmark chain. Must be
//!   bit-identical to [`shmt::pipeline::Program`] (same output, same
//!   per-stage makespans and bus bytes: the degenerate linear case *is*
//!   the Program), and its resident composition must strictly beat the
//!   naive host round-trip model.
//! * **dwt** — DWT → ReLU → Sqrt, an element-wise tail. The unary pair
//!   must fuse into one stage; the unfused DAG must be bit-identical to
//!   the same VOPs chained by hand through the runtime (the sequential
//!   reference); the fused run — which quantizes once around the chain
//!   on the int8 path, as a real fused device kernel does — must compute
//!   the right function (MAPE against the exact fp32 tail bounded by a
//!   wrong-function ceiling, with the measured error recorded); and
//!   resident must again strictly beat naive.
//! * **chain** — ReLU → Sqrt → Tanh with fusion off: three
//!   identically-shaped element-wise stages whose Edge-TPU placements
//!   coincide, so every interior edge must be *fully* resident (zero
//!   staged input elements) — the all-resident scenario.
//!
//! The default output is `BENCH_dag.json` at the repository root;
//! `--smoke` runs smaller datasets and writes to
//! `results/BENCH_dag_smoke.json` (the CI gate); `--out PATH` overrides
//! either default. The artifact is re-read and validated with the
//! workspace's own JSON parser before the run reports success, and the
//! bin aborts on any contract violation.

use shmt::dag::{DagConfig, DagNode, VopDag};
use shmt::pipeline::{Program, Stage};
use shmt::sampling::SamplingMethod;
use shmt::{NodeOp, Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::primitives::UnaryOp;
use shmt_kernels::Benchmark;
use shmt_tensor::gen;
use shmt_trace::json::{JsonValue, ObjectBuilder};

/// Ceiling on the fused chain's MAPE against the exact fp32 tail. This
/// is a catastrophic-wrongness bound, not a quality claim: a dropped or
/// reordered op in the fused kernel lands orders of magnitude above it
/// (a missing `sqrt` alone is ~2000% MAPE on DWT coefficients), while
/// legitimate int8 approximation error on this near-zero-dense data
/// stays well under it. The exact fused/sequential MAPEs are recorded
/// in the artifact for cross-commit diffing — they are placement
/// decisions (a fused stage is heavier, so QAWS plans it differently),
/// not a fusion correctness statement.
const FUSION_MAPE_CEILING: f64 = 0.5;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

fn dag_config(partitions: usize) -> DagConfig {
    let mut rt = RuntimeConfig::new(Policy::WorkStealing);
    rt.partitions = partitions;
    DagConfig::new(rt)
}

/// One pipeline's measured summary plus its self-validation flags.
struct PipelineRow {
    name: &'static str,
    makespan_s: f64,
    naive_makespan_s: f64,
    speedup: f64,
    stages: usize,
    fused: usize,
    resident_edges: usize,
    resident_bus_bytes: u64,
    naive_bus_bytes: u64,
    resident_beats_naive: bool,
    bit_identical: bool,
}

fn row_json(r: &PipelineRow) -> JsonValue {
    ObjectBuilder::new()
        .field("makespan_s", JsonValue::Number(r.makespan_s))
        .field("naive_makespan_s", JsonValue::Number(r.naive_makespan_s))
        .field("residency_speedup", JsonValue::Number(r.speedup))
        .field("stages", JsonValue::Number(r.stages as f64))
        .field("fused_stages", JsonValue::Number(r.fused as f64))
        .field("resident_edges", JsonValue::Number(r.resident_edges as f64))
        .field(
            "resident_bus_bytes",
            JsonValue::Number(r.resident_bus_bytes as f64),
        )
        .field(
            "naive_bus_bytes",
            JsonValue::Number(r.naive_bus_bytes as f64),
        )
        .field(
            "resident_beats_naive",
            JsonValue::Bool(r.resident_beats_naive),
        )
        .field("bit_identical", JsonValue::Bool(r.bit_identical))
        .build()
}

/// Sobel → Histogram as a DAG vs the same chain as a [`Program`]: the
/// degenerate linear case must reproduce the Program exactly.
fn vision_pipeline(n: usize, partitions: usize) -> (PipelineRow, bool) {
    let stages = [
        Stage {
            benchmark: Benchmark::Sobel,
            aux_seed: 1,
        },
        Stage {
            benchmark: Benchmark::Histogram,
            aux_seed: 2,
        },
    ];
    let input = gen::image8(n, n, 7);
    let cfg = dag_config(partitions);
    let dag = VopDag::linear(&stages).expect("valid linear DAG");
    let d = dag.run(&input, &cfg).expect("vision DAG runs");
    let program = Program::new(stages.to_vec()).expect("valid program");
    let p = program
        .run_shmt(input, cfg.runtime)
        .expect("vision program runs");
    let bit_identical = d.output.as_slice() == p.output.as_slice();
    let degenerate_matches_program = bit_identical
        && d.total_latency_s == p.total_latency_s
        && d.stages.len() == p.stages.len()
        && d.stages.iter().zip(&p.stages).all(|(ds, ps)| {
            ds.report.makespan_s == ps.makespan_s && ds.report.bus_bytes == ps.bus_bytes
        });
    let row = PipelineRow {
        name: "vision",
        makespan_s: d.makespan_s,
        naive_makespan_s: d.naive_makespan_s,
        speedup: d.residency_speedup(),
        stages: d.stages.len(),
        fused: d.fused,
        resident_edges: d.resident_edges,
        resident_bus_bytes: d.resident_bus_bytes,
        naive_bus_bytes: d.naive_bus_bytes,
        resident_beats_naive: d.makespan_s < d.naive_makespan_s,
        bit_identical,
    };
    (row, degenerate_matches_program)
}

/// The flowing-data clamp between stages, mirroring the pipeline
/// layer's. The bench reimplements it independently: if the runtime's
/// ever drifts, the `bit_identical` flag below trips.
fn clamp_flowing(mut t: shmt::Tensor) -> shmt::Tensor {
    t.map_inplace(|v| {
        if v.is_finite() {
            v.clamp(-1.0e6, 1.0e6)
        } else {
            0.0
        }
    });
    t
}

/// DWT → ReLU → Sqrt. The sequential reference is the same three VOPs
/// chained by hand through [`ShmtRuntime`] — the unfused DAG must match
/// it bit for bit (the DAG machinery adds nothing numerically). The
/// fused run collapses the unary tail into one kernel that quantizes
/// *once* around the chain on the int8 path — exactly what a fused
/// device kernel does — so bitwise equality is the wrong bar for it.
/// Its contract: measured against the *exact* fp32 element-wise tail
/// applied to the shared DWT stage output, the fused run must compute
/// the right function (MAPE under [`FUSION_MAPE_CEILING`]); the exact
/// fused and sequential MAPEs are recorded for cross-commit diffing.
fn dwt_pipeline(n: usize, partitions: usize) -> (PipelineRow, f64, f64) {
    let dag = VopDag::new(vec![
        DagNode::benchmark(Benchmark::Dwt, 3, vec![]),
        DagNode::unary(UnaryOp::Relu, 0),
        DagNode::unary(UnaryOp::Sqrt, 1),
    ])
    .expect("valid DWT DAG");
    let input = gen::image8(n, n, 9);
    // Quality-aware placement: DWT detail subbands cluster near zero and
    // `sqrt` amplifies int8 snap error exactly there, so the unguarded
    // work-stealing policy would let wide-range partitions reach the TPU
    // and the fused-vs-sequential comparison would measure placement
    // luck, not fusion. QAWS routes high-criticality partitions to exact
    // devices — the paper's own answer to this pipeline.
    let mut rt = RuntimeConfig::new(Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    });
    rt.partitions = partitions;
    let cfg = DagConfig::new(rt);

    // Sequential reference: each stage through the ordinary runtime.
    let mut flowing = input.clone();
    let mut dwt_output = None;
    for step in 0..3 {
        let (vop, platform) = match step {
            0 => (
                Vop::from_benchmark(Benchmark::Dwt, vec![flowing.clone()]).expect("valid DWT VOP"),
                Platform::jetson(Benchmark::Dwt),
            ),
            1 => (
                Vop::unary(UnaryOp::Relu, flowing.clone()).expect("valid relu VOP"),
                Platform::generic(),
            ),
            _ => (
                Vop::unary(UnaryOp::Sqrt, flowing.clone()).expect("valid sqrt VOP"),
                Platform::generic(),
            ),
        };
        let report = ShmtRuntime::new(platform, cfg.runtime)
            .execute(&vop)
            .expect("sequential stage runs");
        flowing = clamp_flowing(report.output);
        if step == 0 {
            dwt_output = Some(flowing.clone());
        }
    }

    // Exact fp32 element-wise tail over the shared DWT stage output —
    // the quality yardstick both compositions are measured against.
    let dwt_output = dwt_output.expect("DWT stage ran");
    let tail_exact =
        clamp_flowing(UnaryOp::Sqrt.map(&clamp_flowing(UnaryOp::Relu.map(&dwt_output))));

    let fused = dag.run(&input, &cfg).expect("fused DWT DAG runs");
    let mut seq_cfg = cfg;
    seq_cfg.fuse_elementwise = false;
    let unfused = dag.run(&input, &seq_cfg).expect("unfused DWT DAG runs");
    let sequential_mape = shmt::quality::mape(&tail_exact, &flowing);
    let fused_mape = shmt::quality::mape(&tail_exact, &fused.output);
    let row = PipelineRow {
        name: "dwt",
        makespan_s: fused.makespan_s,
        naive_makespan_s: fused.naive_makespan_s,
        speedup: fused.residency_speedup(),
        stages: fused.stages.len(),
        fused: fused.fused,
        resident_edges: fused.resident_edges,
        resident_bus_bytes: fused.resident_bus_bytes,
        naive_bus_bytes: fused.naive_bus_bytes,
        resident_beats_naive: fused.makespan_s < fused.naive_makespan_s,
        bit_identical: unfused.output.as_slice() == flowing.as_slice(),
    };
    (row, fused_mape, sequential_mape)
}

/// ReLU → Sqrt → Tanh unfused: identical element-wise stages place their
/// Edge-TPU tiles identically, so the interior edges must be entirely
/// resident — zero input elements staged over the interconnect.
fn all_resident_chain(n: usize, partitions: usize) -> (PipelineRow, bool) {
    let root = DagNode {
        op: NodeOp::Unary(UnaryOp::Relu),
        deps: vec![],
        max_mape: None,
    };
    let dag = VopDag::new(vec![
        root,
        DagNode::unary(UnaryOp::Sqrt, 0),
        DagNode::unary(UnaryOp::Tanh, 1),
    ])
    .expect("valid chain");
    let input = gen::image8(n, n, 5);
    let mut cfg = dag_config(partitions);
    cfg.fuse_elementwise = false;
    let d = dag.run(&input, &cfg).expect("chain runs");
    let zero_staged_interior = d.stages.iter().skip(1).all(|s| s.staged_in_elements == 0)
        && d.stages.iter().skip(1).all(|s| s.resident_in_elements > 0);
    let row = PipelineRow {
        name: "chain",
        makespan_s: d.makespan_s,
        naive_makespan_s: d.naive_makespan_s,
        speedup: d.residency_speedup(),
        stages: d.stages.len(),
        fused: d.fused,
        resident_edges: d.resident_edges,
        resident_bus_bytes: d.resident_bus_bytes,
        naive_bus_bytes: d.naive_bus_bytes,
        resident_beats_naive: d.makespan_s < d.naive_makespan_s,
        bit_identical: true,
    };
    (row, zero_staged_interior)
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (n, partitions, default_out) = if opts.smoke {
        (96, 8, "results/BENCH_dag_smoke.json")
    } else {
        (512, 16, "BENCH_dag.json")
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);

    let (vision, degenerate_matches_program) = vision_pipeline(n, partitions);
    let (dwt, fused_mape, sequential_mape) = dwt_pipeline(n, partitions);
    let (chain, zero_staged_interior) = all_resident_chain(n, partitions);

    let mut root = ObjectBuilder::new()
        .field(
            "degenerate_matches_program",
            JsonValue::Bool(degenerate_matches_program),
        )
        .field(
            "zero_staged_interior",
            JsonValue::Bool(zero_staged_interior),
        )
        .field("fused_mape", JsonValue::Number(fused_mape))
        .field("sequential_mape", JsonValue::Number(sequential_mape))
        .field(
            "fusion_computes_chain",
            JsonValue::Bool(fused_mape < FUSION_MAPE_CEILING),
        );
    for r in [&vision, &dwt, &chain] {
        root = root.field(&format!("pipeline/{}", r.name), row_json(r));
    }
    let json = root.build().to_string();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write dag report");

    // Re-read and validate the artifact with the workspace's own parser;
    // abort on any contract violation so CI's grep gate never sees a
    // half-true file.
    let written = std::fs::read_to_string(out_path).expect("re-read dag report");
    let report = JsonValue::parse(&written).expect("dag report is valid JSON");
    assert_eq!(
        report.get("degenerate_matches_program"),
        Some(&JsonValue::Bool(true)),
        "linear DAG must reproduce Program results exactly"
    );
    assert_eq!(
        report.get("zero_staged_interior"),
        Some(&JsonValue::Bool(true)),
        "identical element-wise stages must leave interior edges fully resident"
    );
    assert_eq!(
        report.get("fusion_computes_chain"),
        Some(&JsonValue::Bool(true)),
        "fused chain is {fused_mape} MAPE from the exact tail (sequential: \
         {sequential_mape}) — above the {FUSION_MAPE_CEILING} wrong-function ceiling"
    );
    for r in [&vision, &dwt, &chain] {
        let row = report
            .get(&format!("pipeline/{}", r.name))
            .unwrap_or_else(|| panic!("report is missing pipeline/{}", r.name));
        assert_eq!(
            row.get("resident_beats_naive"),
            Some(&JsonValue::Bool(true)),
            "{}: resident composition must strictly beat naive round-tripping",
            r.name
        );
        assert_eq!(
            row.get("bit_identical"),
            Some(&JsonValue::Bool(true)),
            "{}: DAG output must match its sequential reference bit for bit",
            r.name
        );
        let speedup = row
            .get("residency_speedup")
            .and_then(JsonValue::as_f64)
            .expect("residency_speedup present");
        assert!(speedup > 1.0, "{}: speedup {speedup} not > 1", r.name);
    }
    let dwt_fused = report
        .get("pipeline/dwt")
        .and_then(|r| r.get("fused_stages"))
        .and_then(JsonValue::as_f64)
        .expect("fused_stages present");
    assert!(
        dwt_fused >= 1.0,
        "the DWT pipeline's unary tail must fuse ({dwt_fused} fused)"
    );

    for r in [&vision, &dwt, &chain] {
        println!(
            "{}: resident {:.3} ms vs naive {:.3} ms ({:.2}x), {} stages ({} fused), {} resident edges",
            r.name,
            r.makespan_s * 1e3,
            r.naive_makespan_s * 1e3,
            r.speedup,
            r.stages,
            r.fused,
            r.resident_edges
        );
    }
    println!("dag report validated: {out_path}");
}
