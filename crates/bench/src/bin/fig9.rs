//! Regenerates the paper's Fig 9: QAWS-TS quality and speedup across
//! sampling rates 2^-21 .. 2^-14 (the paper uses 2048x2048 inputs here).

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rates: Vec<i32> = (-21..=-14).collect();
    let rows = shmt::experiments::fig9(config, &rates).expect("fig9 experiment");
    let header = shmt_bench::benchmark_header();
    let mape_rows: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            let mut v: Vec<f64> = r.mape.iter().map(|m| m * 100.0).collect();
            v.push(r.mape_gmean * 100.0);
            (format!("rate 2^{}", r.log2_rate), v)
        })
        .collect();
    shmt_bench::print_table(
        &format!(
            "Fig 9(a): MAPE % vs QAWS-TS sampling rate ({0}x{0})",
            config.size
        ),
        &header,
        &mape_rows,
        2,
    );
    let speed_rows: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            let mut v = r.speedup.clone();
            v.push(r.speedup_gmean);
            (format!("rate 2^{}", r.log2_rate), v)
        })
        .collect();
    shmt_bench::print_table(
        &format!(
            "Fig 9(b): speedup vs QAWS-TS sampling rate ({0}x{0})",
            config.size
        ),
        &header,
        &speed_rows,
        2,
    );
}
