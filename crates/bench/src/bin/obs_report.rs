//! Telemetry self-validation for the serving layer (`shmt-serve`).
//!
//! ```text
//! cargo run --release -p shmt-bench --bin obs_report
//! cargo run --release -p shmt-bench --bin obs_report -- --smoke
//! ```
//!
//! Four checks, each of which aborts the bin on failure:
//!
//! 1. **Overhead budget** — the serve workload (mixed Sobel / Mean
//!    Filter / FFT across two policies, closed-loop clients) runs with
//!    telemetry fully off (the `NullSink` path: no observatory, no
//!    flight recorder) and fully on, interleaved, min-of-N wall clock
//!    per mode. Telemetry-on must finish within **5%** of telemetry-off.
//! 2. **Exporter round-trip** — the telemetry-on server's OpenMetrics
//!    exposition must parse with the workspace's own parser and
//!    re-render byte-identically, and its counters must agree with the
//!    served request count.
//! 3. **Flight dumps under faults** — a server with a dump directory
//!    serves seeded dropout and miscalibration requests; at least one
//!    `results/flight_obs_*.json` anomaly dump must appear and parse.
//! 4. **Profile convergence** — per-device EWMA throughput from
//!    [`shmt_serve::Server::observatory`] must visibly track an
//!    injected 4× GPU slowdown (served-throughput ratio well below 1).
//!
//! The default artifact is `BENCH_obs.json` at the repository root;
//! `--smoke` writes `results/BENCH_obs_smoke.json` (the CI gate).
//! Either file is re-read and validated with the workspace's own JSON
//! parser before the run reports success.

use std::sync::Arc;
use std::time::Instant;

use shmt::calibration::{bench_profile, Calibration};
use shmt::sampling::SamplingMethod;
use shmt::sched::{GPU, TPU};
use shmt::{FaultPlan, Platform, Policy, QawsAssignment, RuntimeConfig, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{FlightConfig, HealthConfig, Request, Server, ServerConfig, TelemetryConfig};
use shmt_trace::json::{JsonValue, ObjectBuilder};
use shmt_trace::openmetrics::Exposition;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

/// One request of the mixed workload (same shape as `serve_bench`).
#[derive(Clone, Copy)]
struct Case {
    benchmark: Benchmark,
    seed: u64,
    policy: Policy,
}

fn workload(requests: usize) -> Vec<Case> {
    let benches = [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft];
    let policies = [
        Policy::WorkStealing,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        },
    ];
    (0..requests)
        .map(|i| Case {
            benchmark: benches[i % benches.len()],
            seed: 500 + i as u64,
            policy: policies[i % policies.len()],
        })
        .collect()
}

fn make_request(case: Case, n: usize, partitions: usize) -> Request {
    let vop = Vop::from_benchmark(
        case.benchmark,
        case.benchmark.generate_inputs(n, n, case.seed),
    )
    .expect("valid VOP");
    let mut config = RuntimeConfig::new(case.policy);
    config.partitions = partitions;
    Request::new(vop, Platform::jetson(case.benchmark), config)
}

fn telemetry_off() -> TelemetryConfig {
    TelemetryConfig {
        observatory: false,
        flight: FlightConfig {
            enabled: false,
            ..FlightConfig::default()
        },
        gauge_cap: None,
    }
}

/// Serves the whole workload with closed-loop clients; returns the wall
/// time and the server (for telemetry inspection).
fn serve_workload(
    cases: &[Case],
    n: usize,
    partitions: usize,
    clients: usize,
    telemetry: TelemetryConfig,
) -> (f64, Server) {
    let server = Arc::new(Server::new(ServerConfig {
        executors: 4,
        queue_capacity: cases.len().max(1),
        telemetry,
        ..ServerConfig::default()
    }));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                for (_, case) in cases
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == client)
                {
                    let ticket = server
                        .submit_blocking(make_request(*case, n, partitions))
                        .expect("server running");
                    ticket.wait().expect("request succeeds");
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let server = Arc::into_inner(server).expect("all clients joined");
    (wall_s, server)
}

/// Serves `count` copies of one case on a fresh server under `faults`
/// and returns the GPU's EWMA throughput for that opcode.
///
/// The platform is recalibrated to a deliberately slow GPU (1M work
/// units/s) so per-partition compute dwarfs the fixed launch overhead —
/// otherwise a slowdown window barely moves elements-per-busy-second and
/// the convergence check would be testing launch costs, not profiles.
fn gpu_ewma_under(case: Case, n: usize, partitions: usize, count: usize, faults: FaultPlan) -> f64 {
    let platform = Platform::with_profiles(
        Calibration {
            gpu_throughput: 1.0e6,
            ..Calibration::default()
        },
        bench_profile(case.benchmark),
    );
    let server = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        // Slowdowns are not strikes, but keep the breaker out of the
        // measurement entirely: this phase profiles throughput only.
        health: HealthConfig {
            enabled: false,
            ..HealthConfig::default()
        },
        ..ServerConfig::default()
    });
    for _ in 0..count {
        let vop = Vop::from_benchmark(
            case.benchmark,
            case.benchmark.generate_inputs(n, n, case.seed),
        )
        .expect("valid VOP");
        let mut config = RuntimeConfig::new(case.policy);
        config.partitions = partitions;
        let req = Request::new(vop, platform.clone(), config).with_faults(faults.clone());
        server
            .submit_blocking(req)
            .expect("server running")
            .wait()
            .expect("request succeeds");
    }
    let obs = server.observatory();
    let profile = obs.profile(GPU).expect("GPU profile exists");
    *profile
        .ewma_throughput
        .get("Sobel")
        .unwrap_or_else(|| panic!("GPU profile has no Sobel EWMA: {profile:?}"))
}

fn remove_stale_dumps(dir: &str, prefix: &str) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().starts_with(prefix) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (n, partitions, requests, trials, converge_runs, default_out) = if opts.smoke {
        (128, 8, 16, 3, 6, "results/BENCH_obs_smoke.json")
    } else {
        (256, 16, 24, 5, 12, "BENCH_obs.json")
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);
    let clients = 4;
    let cases = workload(requests);

    // ---- 1. Overhead budget: telemetry on vs the NullSink path -------
    // Interleaved trials, min wall per mode: additive system noise can
    // only inflate a trial, so the min is the honest per-mode estimate.
    let mut off_wall = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    for trial in 0..trials {
        let (off, _) = serve_workload(&cases, n, partitions, clients, telemetry_off());
        let (on, _) = serve_workload(&cases, n, partitions, clients, TelemetryConfig::default());
        off_wall = off_wall.min(off);
        on_wall = on_wall.min(on);
        println!(
            "overhead trial {trial}: off {:.1}ms on {:.1}ms",
            off * 1e3,
            on * 1e3
        );
    }
    let budget = 1.05;
    let ratio = on_wall / off_wall;
    let within_budget = ratio <= budget;
    assert!(
        within_budget,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget (off {:.2}ms, on {:.2}ms)",
        (ratio - 1.0) * 100.0,
        (budget - 1.0) * 100.0,
        off_wall * 1e3,
        on_wall * 1e3
    );
    println!(
        "telemetry overhead: {:+.2}% (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (budget - 1.0) * 100.0
    );

    // ---- 2. Exporter round-trip --------------------------------------
    let (_, server) = serve_workload(&cases, n, partitions, clients, TelemetryConfig::default());
    let text = server.export_openmetrics();
    let parsed = Exposition::parse(&text).expect("own exporter output must parse");
    let round_trip = parsed.render() == text;
    assert!(round_trip, "OpenMetrics re-render must be byte-identical");
    let completed = parsed
        .sample_value("serve_completed_total", &[])
        .expect("exporter must carry serve.completed");
    assert_eq!(completed as usize, cases.len(), "exporter counter agrees");
    assert!(
        parsed
            .sample_value("serve_service_seconds_count", &[])
            .is_some(),
        "service-latency histogram must be exported"
    );
    let obs = server.observatory();
    assert!(
        obs.profiles().iter().any(|p| p.spans > 0),
        "observatory must hold live device profiles"
    );
    println!(
        "exporter: {} bytes, {} families, round-trips byte-identical",
        text.len(),
        parsed.families.len()
    );

    // ---- 3. Flight dumps under injected faults -----------------------
    let dump_dir = "results";
    let dump_prefix = "flight_obs";
    remove_stale_dumps(dump_dir, dump_prefix);
    let faulted = Server::new(ServerConfig {
        executors: 1,
        queue_capacity: 4,
        telemetry: TelemetryConfig {
            flight: FlightConfig {
                dump_dir: Some(dump_dir.into()),
                file_prefix: dump_prefix.to_owned(),
                ..FlightConfig::default()
            },
            ..TelemetryConfig::default()
        },
        ..ServerConfig::default()
    });
    let sobel = Case {
        benchmark: Benchmark::Sobel,
        seed: 900,
        policy: Policy::WorkStealing,
    };
    // A TPU dropout (re-dispatch anomaly) and a miscalibration under a
    // quality SLO (repair anomaly).
    let scenarios: [FaultPlan; 2] = [
        FaultPlan::none().with_dropout(TPU, 1e-9),
        FaultPlan::none().with_tpu_miscalibration(1.5, 0.1),
    ];
    for (i, faults) in scenarios.iter().enumerate() {
        let mut req = make_request(sobel, n, partitions).with_faults(faults.clone());
        if i == 1 {
            req = req.with_max_mape(0.05);
        }
        faulted
            .submit_blocking(req)
            .expect("server running")
            .wait()
            .expect("faulted requests still complete");
    }
    let flight_dumps = faulted.flight_dumps();
    assert!(
        flight_dumps >= 1,
        "injected faults must produce at least one flight dump"
    );
    let mut dump_files: Vec<String> = std::fs::read_dir(dump_dir)
        .expect("results dir exists")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(dump_prefix))
        .map(|e| e.path().to_string_lossy().into_owned())
        .collect();
    dump_files.sort();
    assert!(!dump_files.is_empty(), "dump files must exist on disk");
    for f in &dump_files {
        let doc = std::fs::read_to_string(f).expect("read flight dump");
        let parsed = JsonValue::parse(&doc).expect("flight dump is valid JSON");
        assert!(
            parsed
                .get("trigger")
                .and_then(|t| t.get("anomalies"))
                .and_then(JsonValue::as_array)
                .is_some_and(|a| !a.is_empty()),
            "every dump names its triggering anomaly: {f}"
        );
    }
    assert_eq!(
        faulted.metrics().counter("serve.flight_dumps"),
        flight_dumps as f64,
        "dump counter agrees with the recorder"
    );
    println!("flight dumps: {flight_dumps} ({})", dump_files.join(", "));

    // ---- 4. EWMA profiles track an injected slowdown -----------------
    let healthy = gpu_ewma_under(sobel, n, partitions, converge_runs, FaultPlan::none());
    let slowed = gpu_ewma_under(
        sobel,
        n,
        partitions,
        converge_runs,
        FaultPlan::none().with_slowdown(GPU, 0.0, 1e9, 4.0),
    );
    let slowdown_ratio = slowed / healthy;
    assert!(
        slowdown_ratio < 0.6,
        "a 4x GPU slowdown must be visible in the EWMA profile \
         (healthy {healthy:.0} vs slowed {slowed:.0} elem/s, ratio {slowdown_ratio:.3})"
    );
    println!(
        "EWMA profile: healthy {healthy:.0} elem/s, 4x-slowed {slowed:.0} elem/s \
         (ratio {slowdown_ratio:.3})"
    );

    // ---- Artifact ----------------------------------------------------
    let json = ObjectBuilder::new()
        .field(
            "workload",
            ObjectBuilder::new()
                .field("requests", JsonValue::Number(requests as f64))
                .field("dataset", JsonValue::Number(n as f64))
                .field("partitions", JsonValue::Number(partitions as f64))
                .field("clients", JsonValue::Number(clients as f64))
                .field("trials", JsonValue::Number(trials as f64))
                .build(),
        )
        .field(
            "overhead",
            ObjectBuilder::new()
                .field("off_wall_s", JsonValue::Number(off_wall))
                .field("on_wall_s", JsonValue::Number(on_wall))
                .field("ratio", JsonValue::Number(ratio))
                .field("budget", JsonValue::Number(budget))
                .field("within_budget", JsonValue::Bool(within_budget))
                .build(),
        )
        .field(
            "exporter",
            ObjectBuilder::new()
                .field("bytes", JsonValue::Number(text.len() as f64))
                .field("families", JsonValue::Number(parsed.families.len() as f64))
                .field("round_trip", JsonValue::Bool(round_trip))
                .build(),
        )
        .field(
            "flight",
            ObjectBuilder::new()
                .field("flight_dumps", JsonValue::Number(flight_dumps as f64))
                .field(
                    "files",
                    JsonValue::Array(
                        dump_files
                            .iter()
                            .map(|f| JsonValue::String(f.clone()))
                            .collect(),
                    ),
                )
                .build(),
        )
        .field(
            "profiles",
            ObjectBuilder::new()
                .field("healthy_gpu_ewma", JsonValue::Number(healthy))
                .field("slowed_gpu_ewma", JsonValue::Number(slowed))
                .field("slowdown_ratio", JsonValue::Number(slowdown_ratio))
                .field("injected_factor", JsonValue::Number(4.0))
                .build(),
        )
        .build()
        .to_string();

    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write obs report");

    // Validate the artifact with the workspace's own parser.
    let written = std::fs::read_to_string(out_path).expect("re-read obs report");
    let report = JsonValue::parse(&written).expect("obs report is valid JSON");
    let flag = |path: [&str; 2]| {
        matches!(
            report.get(path[0]).and_then(|o| o.get(path[1])),
            Some(JsonValue::Bool(true))
        )
    };
    assert!(flag(["overhead", "within_budget"]), "budget flag missing");
    assert!(flag(["exporter", "round_trip"]), "round-trip flag missing");
    let dumps = report
        .get("flight")
        .and_then(|f| f.get("flight_dumps"))
        .and_then(JsonValue::as_f64)
        .expect("flight_dumps field present");
    assert!(dumps >= 1.0, "artifact must record at least one dump");
    let recorded_ratio = report
        .get("profiles")
        .and_then(|p| p.get("slowdown_ratio"))
        .and_then(JsonValue::as_f64)
        .expect("slowdown_ratio field present");
    assert!(recorded_ratio > 0.0 && recorded_ratio < 0.6);

    println!(
        "obs report written and validated: {out_path} \
         (overhead {:+.2}%, {flight_dumps} flight dumps, slowdown ratio {slowdown_ratio:.3})",
        (ratio - 1.0) * 100.0
    );
}
