//! Regenerates the paper's Fig 2: solo Edge TPU speedup per benchmark and
//! the theoretical gains of the conventional approach vs SHMT.

fn main() {
    let config = shmt_bench::parse_config(std::env::args().skip(1));
    let rows = shmt::experiments::fig2(config).expect("fig2 experiment");
    let header: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    let table = vec![
        (
            "edge TPU".to_string(),
            rows.iter().map(|r| r.edge_tpu).collect::<Vec<_>>(),
        ),
        (
            "conventional".to_string(),
            rows.iter().map(|r| r.conventional).collect(),
        ),
        (
            "SHMT (theor.)".to_string(),
            rows.iter().map(|r| r.shmt).collect(),
        ),
    ];
    shmt_bench::print_table(
        &format!(
            "Fig 2: potential speedup over GPU baseline ({}x{})",
            config.size, config.size
        ),
        &header,
        &table,
        2,
    );
}
