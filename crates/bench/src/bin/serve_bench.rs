//! Offered-load sweep for the serving layer (`shmt-serve`).
//!
//! ```text
//! cargo run --release -p shmt-bench --bin serve_bench
//! cargo run --release -p shmt-bench --bin serve_bench -- --smoke
//! ```
//!
//! A fixed mixed workload (Sobel / Mean Filter / FFT across two
//! scheduling policies) is served at 1, 2, 4, and 8 concurrent
//! **closed-loop clients**: each client submits a request, waits for the
//! response, *thinks* for a fixed interval, and submits its next request
//! — the Clockwork-style client model. Think time models the
//! request-preparation / post-processing gap every real client has; with
//! it, concurrency wins by overlapping one client's think with another's
//! service even on a single-core host, which is exactly the serving
//! effect the sweep measures (not a core-count artifact).
//!
//! Every response is checked **bit-identical** against a sequential
//! `ShmtRuntime::execute` reference, and the 4-client sweep point must
//! beat 1 client on aggregate VOPs/sec — the bin aborts otherwise. The
//! default artifact is `BENCH_serve.json` at the repository root;
//! `--smoke` writes a faster configuration to
//! `results/BENCH_serve_smoke.json` (the CI gate). Either file is
//! re-read and validated with the workspace's own JSON parser before the
//! run reports success.

use std::sync::Arc;
use std::time::{Duration, Instant};

use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;
use shmt_serve::{Request, Server, ServerConfig};
use shmt_tensor::Tensor;
use shmt_trace::json::{JsonValue, ObjectBuilder};

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

/// One request of the mixed workload.
#[derive(Clone, Copy)]
struct Case {
    benchmark: Benchmark,
    seed: u64,
    policy: Policy,
}

fn workload(requests: usize) -> Vec<Case> {
    let benches = [Benchmark::Sobel, Benchmark::MeanFilter, Benchmark::Fft];
    let policies = [
        Policy::WorkStealing,
        Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        },
    ];
    (0..requests)
        .map(|i| Case {
            benchmark: benches[i % benches.len()],
            seed: 100 + i as u64,
            policy: policies[i % policies.len()],
        })
        .collect()
}

fn make_request(case: Case, n: usize, partitions: usize) -> Request {
    let vop = Vop::from_benchmark(
        case.benchmark,
        case.benchmark.generate_inputs(n, n, case.seed),
    )
    .expect("valid VOP");
    let mut config = RuntimeConfig::new(case.policy);
    config.partitions = partitions;
    Request::new(vop, Platform::jetson(case.benchmark), config)
}

/// One sweep point's outcome.
struct SweepPoint {
    clients: usize,
    wall_s: f64,
    vops_per_s: f64,
    service_p50_s: f64,
    service_p95_s: f64,
    service_p99_s: f64,
    queue_wait_p95_s: f64,
    completed: f64,
}

/// Serves the whole workload with `clients` closed-loop clients and
/// verifies every output against its sequential reference.
fn run_sweep_point(
    cases: &[Case],
    references: &[Tensor],
    clients: usize,
    n: usize,
    partitions: usize,
    think: Duration,
    executors: usize,
) -> SweepPoint {
    let server = Arc::new(Server::new(ServerConfig {
        executors,
        queue_capacity: cases.len().max(1),
        ..ServerConfig::default()
    }));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                // Client `c` owns cases c, c+clients, c+2*clients, ...
                let mut first = true;
                for (i, case) in cases
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == client)
                {
                    if !first {
                        std::thread::sleep(think);
                    }
                    first = false;
                    let ticket = server
                        .submit_blocking(make_request(*case, n, partitions))
                        .expect("server running");
                    let response = ticket.wait().expect("request succeeds");
                    assert_eq!(
                        response.report.output.as_slice(),
                        references[i].as_slice(),
                        "served output diverged from sequential execution \
                         (case {i}, {} clients)",
                        clients
                    );
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let metrics = server.metrics();
    let completed = metrics.counter("serve.completed");
    assert_eq!(completed as usize, cases.len(), "every request completes");

    // Worst-case (max over policies) percentiles: a serving SLO is only
    // as good as its slowest policy.
    let summaries = server.latency_summaries();
    assert!(!summaries.is_empty(), "summaries cover the served requests");
    let max_over =
        |f: &dyn Fn(&shmt_serve::PolicySummary) -> f64| summaries.iter().map(f).fold(0.0, f64::max);
    SweepPoint {
        clients,
        wall_s,
        vops_per_s: cases.len() as f64 / wall_s,
        service_p50_s: max_over(&|s| s.service.p50_s),
        service_p95_s: max_over(&|s| s.service.p95_s),
        service_p99_s: max_over(&|s| s.service.p99_s),
        queue_wait_p95_s: max_over(&|s| s.queue_wait.p95_s),
        completed,
    }
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let (n, partitions, requests, think, default_out) = if opts.smoke {
        (
            128,
            8,
            8,
            Duration::from_millis(15),
            "results/BENCH_serve_smoke.json",
        )
    } else {
        (256, 16, 24, Duration::from_millis(25), "BENCH_serve.json")
    };
    let out_path = opts.out.as_deref().unwrap_or(default_out);
    let executors = 4;
    let client_counts = [1usize, 2, 4, 8];

    let cases = workload(requests);

    // Sequential references: the ground truth every served response must
    // match bit-for-bit.
    let references: Vec<Tensor> = cases
        .iter()
        .map(|&case| {
            let req = make_request(case, n, partitions);
            ShmtRuntime::new(req.platform.clone(), req.config)
                .execute(req.vop().expect("single-VOP request"))
                .expect("sequential reference run succeeds")
                .output
        })
        .collect();

    let mut points = Vec::new();
    for &clients in &client_counts {
        let p = run_sweep_point(
            &cases,
            &references,
            clients,
            n,
            partitions,
            think,
            executors,
        );
        println!(
            "{:>2} clients: {:>6.2} VOPs/s (wall {:.3}s, service p95 {:.1}ms, queue-wait p95 {:.1}ms)",
            p.clients,
            p.vops_per_s,
            p.wall_s,
            p.service_p95_s * 1e3,
            p.queue_wait_p95_s * 1e3,
        );
        points.push(p);
    }

    // Acceptance: ≥4 concurrent clients must beat sequential submission
    // on aggregate throughput, with the bit-identity asserts above.
    let seq = points
        .iter()
        .find(|p| p.clients == 1)
        .expect("1-client point");
    let four = points
        .iter()
        .find(|p| p.clients == 4)
        .expect("4-client point");
    assert!(
        four.vops_per_s > seq.vops_per_s,
        "4 concurrent clients ({:.2} VOPs/s) must beat sequential ({:.2} VOPs/s)",
        four.vops_per_s,
        seq.vops_per_s
    );
    let scaling = four.vops_per_s / seq.vops_per_s;

    let mut sweep = ObjectBuilder::new();
    for p in &points {
        sweep = sweep.field(
            &p.clients.to_string(),
            ObjectBuilder::new()
                .field("wall_s", JsonValue::Number(p.wall_s))
                .field("vops_per_s", JsonValue::Number(p.vops_per_s))
                .field("service_p50_s", JsonValue::Number(p.service_p50_s))
                .field("service_p95_s", JsonValue::Number(p.service_p95_s))
                .field("service_p99_s", JsonValue::Number(p.service_p99_s))
                .field("queue_wait_p95_s", JsonValue::Number(p.queue_wait_p95_s))
                .field("completed", JsonValue::Number(p.completed))
                .build(),
        );
    }
    let json = ObjectBuilder::new()
        .field(
            "workload",
            ObjectBuilder::new()
                .field("requests", JsonValue::Number(requests as f64))
                .field("dataset", JsonValue::Number(n as f64))
                .field("partitions", JsonValue::Number(partitions as f64))
                .field("think_ms", JsonValue::Number(think.as_secs_f64() * 1e3))
                .field("executors", JsonValue::Number(executors as f64))
                .build(),
        )
        .field("sweep", sweep.build())
        .field("scaling_4_vs_1", JsonValue::Number(scaling))
        .field("bit_identical", JsonValue::Bool(true))
        .build()
        .to_string();

    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(out_path, &json).expect("write serve report");

    // Validate the artifact with the workspace's own parser.
    let written = std::fs::read_to_string(out_path).expect("re-read serve report");
    let report = JsonValue::parse(&written).expect("serve report is valid JSON");
    for &clients in &client_counts {
        let key = clients.to_string();
        let vops = report
            .get("sweep")
            .and_then(|s| s.get(&key))
            .and_then(|p| p.get("vops_per_s"))
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("report is missing sweep point {key}"));
        assert!(vops > 0.0, "sweep point {key} has non-positive throughput");
    }
    assert!(
        report
            .get("scaling_4_vs_1")
            .and_then(JsonValue::as_f64)
            .expect("scaling field present")
            > 1.0
    );

    println!(
        "serve report written and validated: {out_path} (4-vs-1 scaling {scaling:.2}x, outputs bit-identical)"
    );
}
