//! Chaos suite for the quality guard: seeded fault plans × guard on/off
//! × QAWS variants.
//!
//! ```text
//! cargo run --release -p shmt-bench --bin chaos_sweep
//! cargo run --release -p shmt-bench --bin chaos_sweep -- --smoke
//! ```
//!
//! Every scenario is played twice per scheduling policy — once unguarded
//! and once with the guard enforcing a budget derived from the policy's
//! healthy accuracy (`clamp(1.25 · healthy_mape + 0.02, 0.05, 0.35)`) —
//! and the suite asserts the robustness contract the guard exists for:
//!
//! * guarded runs **never** ship output over budget (both the guard's own
//!   verified-page accounting and the true end-to-end MAPE against the
//!   exact reference);
//! * unguarded miscalibrated runs **do** exceed that budget — the chaos
//!   is real, not decorative;
//! * a disabled guard is bit-identical to an unguarded run even with its
//!   other knobs set to exotic values;
//! * verification and repair cost virtual time (`quality.overhead_s > 0`
//!   wherever approximate output was checked);
//! * every guarded run feeds a [`shmt_serve::FlightRecorder`], and the
//!   failing scenarios (repairs, dropouts) must leave
//!   `results/flight_chaos_*.json` anomaly dumps behind — the black box
//!   works under chaos, not just in its unit tests.
//!
//! The default artifact is `results/BENCH_quality.json`; `--smoke` writes
//! a faster configuration to `results/BENCH_quality_smoke.json` (the CI
//! gate). Either file is re-read and validated with the workspace's own
//! JSON parser before the run reports success.

use shmt::quality::mape;
use shmt::sched::{GPU, TPU};
use shmt::{
    FaultPlan, GuardConfig, Platform, Policy, QualityBudget, RuntimeConfig, ShmtRuntime, Vop,
};
use shmt_serve::{Anomaly, FlightConfig, FlightRecord, FlightRecorder};
use shmt_tensor::Tensor;
use shmt_trace::json::{JsonValue, ObjectBuilder};

use shmt_kernels::Benchmark;

struct Opts {
    smoke: bool,
    out: Option<String>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: None,
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| panic!("--out needs a path")));
            }
            other => panic!("unknown flag {other}; accepted: --smoke --out"),
        }
    }
    opts
}

/// A drifted quantization calibration strong enough that every TPU
/// partition lands far over any budget the sweep derives: the guard must
/// catch and repair all of it, and an unguarded run must fail the budget.
const MISCAL: (f32, f32) = (2.0, 0.5);

/// The chaos schedules. Most combine TPU miscalibration with a second
/// fault so verification and repair run *while* the platform is degraded.
fn scenarios(healthy_makespan_s: f64, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let miscal = |p: FaultPlan| p.with_tpu_miscalibration(MISCAL.0, MISCAL.1);
    vec![
        ("none", FaultPlan::none()),
        ("tpu_miscal", miscal(FaultPlan::none())),
        (
            "gpu_slowdown_miscal",
            miscal(FaultPlan::none().with_slowdown(GPU, 0.0, 1.0e9, 4.0)),
        ),
        (
            "transfer_faults_miscal",
            miscal(
                FaultPlan::none()
                    .with_seed(seed)
                    .with_transfer_failures(0.25),
            ),
        ),
        (
            "gpu_dropout_miscal",
            miscal(FaultPlan::none().with_dropout(GPU, healthy_makespan_s * 0.25)),
        ),
        ("tpu_dropout", FaultPlan::none().with_unavailable(TPU)),
    ]
}

fn has_miscal(plan: &FaultPlan) -> bool {
    plan.tpu_miscalibration.is_some()
}

struct SweepConfig {
    size: usize,
    partitions: usize,
    seed: u64,
    policies: Vec<Policy>,
}

fn sweep_config(smoke: bool) -> SweepConfig {
    let policies = if smoke {
        // Two variants keep the CI gate fast while still crossing both
        // assignment algorithms.
        Policy::qaws_variants().into_iter().take(2).collect()
    } else {
        Policy::qaws_variants().into_iter().collect()
    };
    SweepConfig {
        size: if smoke { 128 } else { 512 },
        partitions: if smoke { 16 } else { 32 },
        seed: 42,
        policies,
    }
}

fn config(policy: Policy, partitions: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(policy);
    cfg.partitions = partitions;
    cfg
}

#[allow(clippy::too_many_arguments)]
fn scenario_row(
    name: &str,
    budget: f64,
    unguarded: &shmt::RunReport,
    unguarded_mape: f64,
    guarded: &shmt::RunReport,
    guarded_mape: f64,
) -> JsonValue {
    let q = &guarded.quality;
    ObjectBuilder::new()
        .field("name", JsonValue::String(name.into()))
        .field("budget_mape", JsonValue::Number(budget))
        .field(
            "unguarded",
            ObjectBuilder::new()
                .field("makespan_s", JsonValue::Number(unguarded.makespan_s))
                .field("mape", JsonValue::Number(unguarded_mape))
                .field("exceeds_budget", JsonValue::Bool(unguarded_mape > budget))
                .build(),
        )
        .field(
            "guarded",
            ObjectBuilder::new()
                .field("makespan_s", JsonValue::Number(guarded.makespan_s))
                .field("mape", JsonValue::Number(guarded_mape))
                .field("within_budget", JsonValue::Bool(guarded_mape <= budget))
                .field("checked_hlops", JsonValue::Number(q.checked_hlops as f64))
                .field("sampled_pages", JsonValue::Number(q.sampled_pages as f64))
                .field("repaired", JsonValue::Number(q.repairs.len() as f64))
                .field("estimated_mape", JsonValue::Number(q.estimated_mape))
                .field("true_mape", JsonValue::Number(q.true_mape))
                .field("overhead_s", JsonValue::Number(q.overhead_s))
                .build(),
        )
        .build()
}

/// Black-boxes one guarded chaos run into the flight recorder: the same
/// anomaly taxonomy the serving layer records, derived from the report.
fn record_flight(
    recorder: &mut FlightRecorder,
    policy: &str,
    scenario: &str,
    report: &shmt::RunReport,
) {
    let mut record = FlightRecord::new(policy, &format!("Sobel/{scenario}"));
    record.makespan_s = report.makespan_s;
    record.degraded = report.faults.degraded;
    record.repairs = report.quality.repairs.len();
    record.redispatched = report.faults.redispatched;
    record.devices_lost = report.faults.lost;
    if !report.quality.repairs.is_empty() {
        record.anomalies.push(Anomaly::QualityRepair);
    }
    if report.faults.redispatched > 0 || report.faults.degraded {
        record.anomalies.push(Anomaly::Redispatch);
    }
    recorder.record(record);
}

/// One policy's full chaos pass. Panics on any contract violation.
fn run_policy(
    policy: Policy,
    cfg: &SweepConfig,
    vop: &Vop,
    reference: &Tensor,
    recorder: &mut FlightRecorder,
) -> JsonValue {
    let name = policy.name();
    let platform = Platform::jetson(Benchmark::Sobel);
    let unguarded_rt = ShmtRuntime::new(platform.clone(), config(policy, cfg.partitions));

    let healthy = unguarded_rt.execute(vop).expect("healthy run succeeds");
    let healthy_mape = mape(reference, &healthy.output);
    let budget = (healthy_mape * 1.25 + 0.02).clamp(0.05, 0.35);

    let mut guarded_cfg = config(policy, cfg.partitions);
    guarded_cfg.guard = GuardConfig::enforcing(budget);
    let guarded_rt = ShmtRuntime::new(platform.clone(), guarded_cfg);

    // Guard-off bit-identity: exotic knobs behind `enabled: false` must
    // not perturb a single bit of the report.
    let mut off_cfg = config(policy, cfg.partitions);
    off_cfg.guard = GuardConfig {
        enabled: false,
        repair: false,
        budget: QualityBudget { max_mape: 0.0 },
        page_rows: 3,
        pages_per_hlop: 7,
    };
    let off_rt = ShmtRuntime::new(platform, off_cfg);

    let mut rows: Vec<JsonValue> = Vec::new();
    let mut bit_identical = true;
    for (scenario, plan) in scenarios(healthy.makespan_s, cfg.seed) {
        let unguarded = unguarded_rt
            .execute_with_faults(vop, &plan)
            .expect("unguarded chaos run succeeds");
        let off = off_rt
            .execute_with_faults(vop, &plan)
            .expect("guard-off chaos run succeeds");
        bit_identical &= off.output.as_slice() == unguarded.output.as_slice()
            && off.makespan_s == unguarded.makespan_s
            && off.records == unguarded.records;
        assert!(
            bit_identical,
            "{name}/{scenario}: a disabled guard perturbed the run"
        );

        let guarded = guarded_rt
            .execute_with_faults(vop, &plan)
            .expect("guarded chaos run succeeds");
        record_flight(recorder, name, scenario, &guarded);
        let unguarded_mape = mape(reference, &unguarded.output);
        let guarded_mape = mape(reference, &guarded.output);

        // The contract, scenario by scenario.
        assert!(
            guarded_mape <= budget,
            "{name}/{scenario}: guarded output ships {guarded_mape} against budget {budget}"
        );
        assert!(
            guarded.quality.true_mape <= budget,
            "{name}/{scenario}: verified-page accounting over budget"
        );
        // Miscalibration only corrupts what the TPU actually produced; a
        // policy that kept everything exact has nothing to break.
        if has_miscal(&plan) && guarded.quality.approx_hlops > 0 {
            assert!(
                unguarded_mape > budget,
                "{name}/{scenario}: miscalibration must break the unguarded run \
                 ({unguarded_mape} <= {budget})"
            );
            assert!(
                !guarded.quality.repairs.is_empty(),
                "{name}/{scenario}: over-budget output must trigger repairs"
            );
        }
        if guarded.quality.checked_hlops > 0 {
            assert!(
                guarded.quality.overhead_s > 0.0,
                "{name}/{scenario}: verification must cost virtual time"
            );
            assert!(
                guarded.makespan_s > unguarded.makespan_s,
                "{name}/{scenario}: guard overhead must show in the makespan"
            );
        }
        if scenario == "tpu_dropout" {
            assert_eq!(
                unguarded_mape, 0.0,
                "{name}: a dead TPU degrades to an all-exact run"
            );
            assert_eq!(guarded.quality.approx_hlops, 0);
        }

        println!(
            "  {:<10} {:<22} budget {:>7.4}  unguarded {:>8.5}  guarded {:>8.5}  \
             repaired {:>2}/{:<2}  overhead {:>8.3} ms",
            name,
            scenario,
            budget,
            unguarded_mape,
            guarded_mape,
            guarded.quality.repairs.len(),
            guarded.quality.checked_hlops,
            guarded.quality.overhead_s * 1e3,
        );
        rows.push(scenario_row(
            scenario,
            budget,
            &unguarded,
            unguarded_mape,
            &guarded,
            guarded_mape,
        ));
    }

    ObjectBuilder::new()
        .field("policy", JsonValue::String(name.to_string()))
        .field("healthy_mape", JsonValue::Number(healthy_mape))
        .field("budget_mape", JsonValue::Number(budget))
        .field("guard_off_bit_identical", JsonValue::Bool(bit_identical))
        .field("scenarios", JsonValue::Array(rows))
        .build()
}

/// Re-reads the written artifact and re-checks the headline invariants
/// through the parser — the file must *say* what the asserts proved.
fn validate(json: &str, policies: usize) {
    let doc = JsonValue::parse(json).expect("chaos artifact must parse");
    let rows = doc
        .get("policies")
        .and_then(JsonValue::as_array)
        .expect("policies array");
    assert_eq!(rows.len(), policies, "one row per policy");
    for row in rows {
        let policy = row.get("policy").and_then(JsonValue::as_str).expect("name");
        assert!(
            matches!(
                row.get("guard_off_bit_identical"),
                Some(JsonValue::Bool(true))
            ),
            "{policy}: bit-identity flag must be recorded true"
        );
        let scenarios = row
            .get("scenarios")
            .and_then(JsonValue::as_array)
            .expect("scenarios array");
        assert_eq!(scenarios.len(), 6, "{policy}: six chaos scenarios");
        for s in scenarios {
            let name = s.get("name").and_then(JsonValue::as_str).expect("name");
            let within = s
                .get("guarded")
                .and_then(|g| g.get("within_budget"))
                .cloned();
            assert!(
                matches!(within, Some(JsonValue::Bool(true))),
                "{policy}/{name}: guarded run recorded over budget"
            );
            let exceeds = s
                .get("unguarded")
                .and_then(|g| g.get("exceeds_budget"))
                .cloned();
            let checked = s
                .get("guarded")
                .and_then(|g| g.get("checked_hlops"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if name.contains("miscal") && checked > 0.0 {
                assert!(
                    matches!(exceeds, Some(JsonValue::Bool(true))),
                    "{policy}/{name}: unguarded miscalibration must be over budget"
                );
            }
        }
    }
    let dumps = doc
        .get("flight_dumps")
        .and_then(JsonValue::as_f64)
        .expect("flight_dumps field");
    assert!(dumps >= 1.0, "artifact must record flight dumps");
}

fn main() {
    let opts = parse_opts(std::env::args().skip(1));
    let cfg = sweep_config(opts.smoke);
    let benchmark = Benchmark::Sobel;

    println!(
        "chaos sweep: {benchmark} at {0}x{0} with {1} partitions, seed {2}, {3} policies\n",
        cfg.size,
        cfg.partitions,
        cfg.seed,
        cfg.policies.len()
    );
    std::fs::create_dir_all("results").expect("create results dir");

    let inputs = benchmark.generate_inputs(cfg.size, cfg.size, cfg.seed);
    let vop = Vop::from_benchmark(benchmark, inputs).expect("valid VOP");
    let reference: Tensor = shmt::baseline::exact_reference(&vop);

    // Black-box the guarded runs: failing scenarios must leave dumps.
    let dump_prefix = "flight_chaos";
    if let Ok(entries) = std::fs::read_dir("results") {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with(dump_prefix) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    let mut recorder = FlightRecorder::new(FlightConfig {
        dump_dir: Some("results".into()),
        file_prefix: dump_prefix.to_owned(),
        ..FlightConfig::default()
    });

    let mut policy_rows: Vec<JsonValue> = Vec::new();
    for &policy in &cfg.policies {
        policy_rows.push(run_policy(policy, &cfg, &vop, &reference, &mut recorder));
        println!();
    }
    let flight_dumps = recorder.dumps_written();
    assert!(
        flight_dumps >= 1,
        "failing chaos scenarios must dump flight context"
    );

    let doc = ObjectBuilder::new()
        .field("benchmark", JsonValue::String(benchmark.name().into()))
        .field("size", JsonValue::Number(cfg.size as f64))
        .field("partitions", JsonValue::Number(cfg.partitions as f64))
        .field("seed", JsonValue::Number(cfg.seed as f64))
        .field("smoke", JsonValue::Bool(opts.smoke))
        .field(
            "miscalibration",
            ObjectBuilder::new()
                .field("gain", JsonValue::Number(MISCAL.0 as f64))
                .field("bias", JsonValue::Number(MISCAL.1 as f64))
                .build(),
        )
        .field("policies", JsonValue::Array(policy_rows))
        .field("flight_dumps", JsonValue::Number(flight_dumps as f64))
        .build()
        .to_string();

    let path = opts.out.unwrap_or_else(|| {
        if opts.smoke {
            "results/BENCH_quality_smoke.json".into()
        } else {
            "results/BENCH_quality.json".into()
        }
    });
    std::fs::write(&path, &doc).expect("write chaos artifact");
    let reread = std::fs::read_to_string(&path).expect("re-read chaos artifact");
    validate(&reread, cfg.policies.len());
    println!("-> {path} (validated)");
}
