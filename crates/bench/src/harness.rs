//! A minimal wall-clock micro-bench harness.
//!
//! The `benches/` targets are plain binaries (`harness = false`) built on
//! this module, so the workspace benches run with no registry
//! dependencies. Each measurement warms up, sizes an iteration batch to a
//! target duration, then reports the best and mean per-iteration time
//! over several samples — the best is the least noisy estimate on a
//! shared machine.

use std::time::{Duration, Instant};

/// Per-batch target; long enough to dwarf timer overhead, short enough
/// that a full bench suite stays interactive.
const TARGET_BATCH: Duration = Duration::from_millis(200);
/// Samples per measurement; the minimum is reported.
const SAMPLES: usize = 5;

/// A named group of measurements, printed criterion-style as
/// `group/name ... best <t> mean <t>`.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group with the given name.
    pub fn new(name: &str) -> Self {
        Group {
            name: name.to_owned(),
        }
    }

    /// Measures `f`, printing one result row. The closure's return value
    /// is passed through [`std::hint::black_box`] so the work is not
    /// optimized away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm up and size the batch.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let per_iter = start.elapsed() / iters;
            best = best.min(per_iter);
            total += per_iter;
        }
        let mean = total / SAMPLES as u32;
        println!(
            "{:<40} best {:>12} mean {:>12}  ({iters} iters x {SAMPLES})",
            format!("{}/{}", self.name, name),
            format_duration(best),
            format_duration(mean),
        );
    }
}

/// Renders a duration with an SI unit chosen by magnitude.
fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_pick_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(250)), "250.00 us");
        assert_eq!(format_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        Group::new("test").bench("noop", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }
}
