//! A minimal wall-clock micro-bench harness.
//!
//! The `benches/` targets are plain binaries (`harness = false`) built on
//! this module, so the workspace benches run with no registry
//! dependencies. Each measurement warms up, sizes an iteration batch to a
//! target duration, then reports the best and mean per-iteration time
//! over several samples — the best is the least noisy estimate on a
//! shared machine.
//!
//! Besides printing criterion-style rows, a [`Group`] collects every
//! result as a [`Measurement`], which the `perf_report` binary serializes
//! to `BENCH_kernels.json` for cross-commit comparison.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Per-batch target; long enough to dwarf timer overhead, short enough
/// that a full bench suite stays interactive.
const TARGET_BATCH: Duration = Duration::from_millis(200);
/// Samples per measurement; the minimum is reported.
const SAMPLES: usize = 5;

/// One completed measurement, in the shape `perf_report` serializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Full `group/name` label.
    pub name: String,
    /// Best per-iteration time over all samples, in nanoseconds.
    pub best_ns: u128,
    /// Mean of the per-sample per-iteration times, in nanoseconds.
    pub mean_ns: u128,
    /// Iterations per sample batch.
    pub iters: u32,
}

/// A named group of measurements, printed criterion-style as
/// `group/name ... best <t> mean <t>` and collected for serialization.
#[derive(Debug)]
pub struct Group {
    name: String,
    target_batch: Duration,
    samples: usize,
    collected: RefCell<Vec<Measurement>>,
}

impl Group {
    /// Starts a group with the given name and the default time budget.
    pub fn new(name: &str) -> Self {
        Self::with_budget(name, TARGET_BATCH, SAMPLES)
    }

    /// Starts a group with an explicit per-batch target duration and
    /// sample count — smoke runs shrink both to stay fast.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn with_budget(name: &str, target_batch: Duration, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        Group {
            name: name.to_owned(),
            target_batch,
            samples,
            collected: RefCell::new(Vec::new()),
        }
    }

    /// Measures `f`, printing one result row and recording it. The
    /// closure's return value is passed through [`std::hint::black_box`]
    /// so the work is not optimized away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // The first call is purely warm-up: it pays for cold caches, page
        // faults, and lazy allocations, and its time is discarded.
        std::hint::black_box(f());
        // A second, warm call sizes the batch; sizing from the cold call
        // would undercount iterations and make batches too short to
        // dwarf timer overhead.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_batch.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            // Integer division truncates: a batch faster than 1 ns/iter
            // (a trivial closure in release) would report 0 ns and trip
            // every downstream `best_ns > 0` gate. Clamp to the timer's
            // resolution floor instead.
            let per_iter = (start.elapsed() / iters).max(Duration::from_nanos(1));
            best = best.min(per_iter);
            total += per_iter;
        }
        let mean = total / self.samples as u32;
        println!(
            "{:<40} best {:>12} mean {:>12}  ({iters} iters x {})",
            format!("{}/{}", self.name, name),
            format_duration(best),
            format_duration(mean),
            self.samples,
        );
        self.collected.borrow_mut().push(Measurement {
            name: format!("{}/{}", self.name, name),
            best_ns: best.as_nanos(),
            mean_ns: mean.as_nanos(),
            iters,
        });
    }

    /// Drains the measurements recorded so far, in bench order.
    pub fn take_measurements(&self) -> Vec<Measurement> {
        std::mem::take(&mut self.collected.borrow_mut())
    }
}

/// Renders a duration with an SI unit chosen by magnitude.
fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_pick_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(250)), "250.00 us");
        assert_eq!(format_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        Group::new("test").bench("noop", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }

    #[test]
    fn bench_collects_measurements() {
        let group = Group::with_budget("grp", Duration::from_micros(100), 2);
        group.bench("a", || 1 + 1);
        group.bench("b", || 2 + 2);
        let ms = group.take_measurements();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "grp/a");
        assert_eq!(ms[1].name, "grp/b");
        assert!(ms.iter().all(|m| m.best_ns > 0 && m.iters >= 1));
        assert!(ms.iter().all(|m| m.mean_ns >= m.best_ns));
        assert!(group.take_measurements().is_empty(), "drained");
    }

    #[test]
    fn warmup_call_does_not_size_the_batch() {
        // The first (cold) call is two orders of magnitude slower than the
        // warm steady state. Sizing from the warm call must still pick a
        // large batch.
        let mut calls = 0u32;
        let group = Group::with_budget("warm", Duration::from_millis(2), 1);
        group.bench("skewed", || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
            calls
        });
        let m = group.take_measurements().pop().expect("one measurement");
        // Cold-call sizing would give 2ms / 20ms -> 1 iteration; warm
        // sizing gives far more.
        assert!(m.iters > 10, "iters = {}", m.iters);
    }
}
