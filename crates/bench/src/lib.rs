//! Experiment harness for the SHMT reproduction.
//!
//! Each `fig*`/`table*` binary regenerates one table or figure of the
//! paper's evaluation by calling the drivers in [`shmt::experiments`] and
//! printing the rows in the paper's layout. All binaries accept:
//!
//! ```text
//! --size N        dataset edge length (default 2048; paper uses 8192)
//! --partitions N  HLOP partition count (default 64)
//! --seed N        dataset seed
//! ```

use shmt::experiments::ExperimentConfig;

pub mod harness;

/// Parses the common `--size/--partitions/--seed` flags from `args`.
///
/// # Panics
///
/// Panics with a usage message on malformed flags.
pub fn parse_config(args: impl Iterator<Item = String>) -> ExperimentConfig {
    let mut config = ExperimentConfig::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a positive integer"))
        };
        match flag.as_str() {
            "--size" => config.size = take("--size"),
            "--partitions" => config.partitions = take("--partitions"),
            "--seed" => config.seed = take("--seed") as u64,
            other => panic!("unknown flag {other}; accepted: --size --partitions --seed"),
        }
    }
    config
}

/// Prints one formatted table: a header of benchmark names and one line per
/// row label with its values.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)], precision: usize) {
    println!("== {title} ==");
    print!("{:<18}", "");
    for h in header {
        print!("{h:>12}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<18}");
        for v in values {
            print!("{v:>12.precision$}");
        }
        println!();
    }
    println!();
}

/// The benchmark-name header used by most tables (plus GMEAN).
pub fn benchmark_header() -> Vec<&'static str> {
    let mut h: Vec<&'static str> = shmt_kernels::ALL_BENCHMARKS
        .iter()
        .map(|b| b.name())
        .collect();
    h.push("GMEAN");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse_config(std::iter::empty());
        assert_eq!(d.size, 2048);
        let c = parse_config(
            ["--size", "512", "--partitions", "16", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(c.size, 512);
        assert_eq!(c.partitions, 16);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn header_has_eleven_columns() {
        assert_eq!(benchmark_header().len(), 11);
    }
}
