//! Micro-benches of the scheduler-side costs: sampling mechanisms
//! (Algorithms 3-5) and the partitioner.

use shmt::partition::partition_tiles;
use shmt::sampling::{sample_partition, SamplingMethod};
use shmt_bench::harness::Group;
use shmt_kernels::Benchmark;
use shmt_tensor::gen;
use shmt_tensor::tile::Tile;

fn bench_sampling() {
    let t = gen::image8(1024, 1024, 1);
    let tile = Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows: 1024,
        cols: 1024,
    };
    let group = Group::new("sampling");
    for (name, method) in [
        ("striding", SamplingMethod::Striding),
        ("uniform", SamplingMethod::UniformRandom),
        ("reduction", SamplingMethod::Reduction),
    ] {
        group.bench(name, || {
            sample_partition(std::hint::black_box(&t), tile, method, 2.0f64.powi(-15), 42)
        });
    }
}

fn bench_partitioner() {
    let group = Group::new("partition");
    for b in [Benchmark::Sobel, Benchmark::Dct8x8, Benchmark::Fft] {
        let shape = b.kernel().shape();
        group.bench(&format!("{b}"), || {
            partition_tiles(std::hint::black_box(8192), 8192, 64, &shape)
        });
    }
}

fn main() {
    bench_sampling();
    bench_partitioner();
}
