//! Criterion micro-benches of the scheduler-side costs: sampling
//! mechanisms (Algorithms 3-5) and the partitioner.

use criterion::{criterion_group, criterion_main, Criterion};
use shmt::partition::partition_tiles;
use shmt::sampling::{sample_partition, SamplingMethod};
use shmt_kernels::Benchmark;
use shmt_tensor::tile::Tile;
use shmt_tensor::gen;

fn bench_sampling(c: &mut Criterion) {
    let t = gen::image8(1024, 1024, 1);
    let tile = Tile { index: 0, row0: 0, col0: 0, rows: 1024, cols: 1024 };
    let mut group = c.benchmark_group("sampling");
    for (name, method) in [
        ("striding", SamplingMethod::Striding),
        ("uniform", SamplingMethod::UniformRandom),
        ("reduction", SamplingMethod::Reduction),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                sample_partition(
                    std::hint::black_box(&t),
                    tile,
                    method,
                    2.0f64.powi(-15),
                    42,
                )
            })
        });
    }
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for b in [Benchmark::Sobel, Benchmark::Dct8x8, Benchmark::Fft] {
        let shape = b.kernel().shape();
        group.bench_function(format!("{b}"), |bench| {
            bench.iter(|| partition_tiles(std::hint::black_box(8192), 8192, 64, &shape))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_partitioner);
criterion_main!(benches);
