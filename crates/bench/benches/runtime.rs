//! Criterion micro-benches of the SHMT runtime itself: planning +
//! virtual-time scheduling + real computation per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_kernels::Benchmark;

fn bench_policies(c: &mut Criterion) {
    let b = Benchmark::Sobel;
    let n = 256;
    let platform = Platform::jetson(b);
    let mut group = c.benchmark_group("runtime");
    for (name, policy) in [
        ("even", Policy::EvenDistribution),
        ("ws", Policy::WorkStealing),
        (
            "qaws-ts",
            Policy::Qaws { assignment: QawsAssignment::TopK, sampling: SamplingMethod::Striding },
        ),
        (
            "qaws-lr",
            Policy::Qaws {
                assignment: QawsAssignment::DeviceLimits,
                sampling: SamplingMethod::Reduction,
            },
        ),
    ] {
        group.bench_function(name, |bench| {
            bench.iter_batched(
                || Vop::from_benchmark(b, b.generate_inputs(n, n, 1)).unwrap(),
                |vop| {
                    let mut cfg = RuntimeConfig::new(policy);
                    cfg.partitions = 16;
                    cfg.quality.sampling_rate = 0.01;
                    ShmtRuntime::new(platform.clone(), cfg).execute(&vop).unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(benches);
