//! Micro-benches of the SHMT runtime itself: planning + virtual-time
//! scheduling + real computation per policy.

use shmt::sampling::SamplingMethod;
use shmt::{Platform, Policy, QawsAssignment, RuntimeConfig, ShmtRuntime, Vop};
use shmt_bench::harness::Group;
use shmt_kernels::Benchmark;

fn main() {
    let b = Benchmark::Sobel;
    let n = 256;
    let platform = Platform::jetson(b);
    let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 1)).unwrap();
    let group = Group::new("runtime");
    for (name, policy) in [
        ("even", Policy::EvenDistribution),
        ("ws", Policy::WorkStealing),
        (
            "qaws-ts",
            Policy::Qaws {
                assignment: QawsAssignment::TopK,
                sampling: SamplingMethod::Striding,
            },
        ),
        (
            "qaws-lr",
            Policy::Qaws {
                assignment: QawsAssignment::DeviceLimits,
                sampling: SamplingMethod::Reduction,
            },
        ),
    ] {
        group.bench(name, || {
            let mut cfg = RuntimeConfig::new(policy);
            cfg.partitions = 16;
            cfg.quality.sampling_rate = 0.01;
            ShmtRuntime::new(platform.clone(), cfg)
                .execute(std::hint::black_box(&vop))
                .unwrap()
        });
    }
}
