//! Micro-benches: the real compute cost of each benchmark kernel's exact
//! and NPU paths (the hot loops the runtime executes).

use shmt_bench::harness::Group;
use shmt_kernels::{Benchmark, ALL_BENCHMARKS};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

fn bench_kernels() {
    let n = 256;
    let tile = Tile {
        index: 0,
        row0: 0,
        col0: 0,
        rows: n,
        cols: n,
    };
    let group = Group::new("kernel");
    for b in ALL_BENCHMARKS {
        let kernel = b.kernel();
        let inputs = b.generate_inputs(n, n, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let shape = kernel.shape();
        group.bench(&format!("{b}/exact"), || {
            let mut out = shape.allocate_output(n, n);
            kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
            out
        });
        group.bench(&format!("{b}/npu"), || {
            let mut out = shape.allocate_output(n, n);
            kernel.run_npu(std::hint::black_box(&refs), tile, &mut out);
            out
        });
    }
}

fn bench_one(b: Benchmark) {
    let kernel = b.kernel();
    let group = Group::new(&format!("{b}-scaling"));
    for n in [64usize, 128, 256] {
        let inputs = b.generate_inputs(n, n, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: n,
            cols: n,
        };
        group.bench(&format!("{n}"), || {
            let mut out = kernel.shape().allocate_output(n, n);
            kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
            out
        });
    }
}

fn main() {
    bench_kernels();
    bench_one(Benchmark::Sobel);
    bench_one(Benchmark::Fft);
}
