//! Criterion micro-benches: the real compute cost of each benchmark
//! kernel's exact and NPU paths (the hot loops the runtime executes).

use criterion::{criterion_group, criterion_main, Criterion};
use shmt_kernels::{Benchmark, ALL_BENCHMARKS};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

fn bench_kernels(c: &mut Criterion) {
    let n = 256;
    let tile = Tile { index: 0, row0: 0, col0: 0, rows: n, cols: n };
    let mut group = c.benchmark_group("kernel");
    for b in ALL_BENCHMARKS {
        let kernel = b.kernel();
        let inputs = b.generate_inputs(n, n, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let shape = kernel.shape();
        group.bench_function(format!("{b}/exact"), |bench| {
            bench.iter(|| {
                let mut out = shape.allocate_output(n, n);
                kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
                out
            })
        });
        group.bench_function(format!("{b}/npu"), |bench| {
            bench.iter(|| {
                let mut out = shape.allocate_output(n, n);
                kernel.run_npu(std::hint::black_box(&refs), tile, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn bench_one(b: Benchmark, c: &mut Criterion) {
    let kernel = b.kernel();
    let mut group = c.benchmark_group(format!("{b}-scaling"));
    for n in [64usize, 128, 256] {
        let inputs = b.generate_inputs(n, n, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let tile = Tile { index: 0, row0: 0, col0: 0, rows: n, cols: n };
        group.bench_function(format!("{n}"), |bench| {
            bench.iter(|| {
                let mut out = kernel.shape().allocate_output(n, n);
                kernel.run_exact(std::hint::black_box(&refs), tile, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    bench_one(Benchmark::Sobel, c);
    bench_one(Benchmark::Fft, c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels, bench_scaling
}
criterion_main!(benches);
