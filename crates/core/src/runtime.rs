//! The SHMT runtime system — the "driver" of the virtual hardware device
//! (paper §3.3).
//!
//! `ShmtRuntime::execute` takes a VOP through the full paper pipeline:
//! partition into HLOPs (§3.4), consult the scheduling policy for the
//! initial queue plan (§3.4–3.5), then play the queues out on the modeled
//! platform in virtual time — devices pull HLOPs from their incoming
//! queues, steal across queues under the policy's rules when they drain,
//! and every HLOP's data movement (int8 casting, PCIe transfer to the Edge
//! TPU, result restoration, §3.3.2) is charged on the shared bus. The
//! *computation is real*: GPU/CPU HLOPs run the exact kernel, Edge TPU
//! HLOPs run the int8 NPU path, and the assembled output is returned for
//! quality measurement.

use hetsim::{
    DeviceTimeline, EnergyMeter, FaultInjector, FaultPlan, FaultReport, Interconnect, QueuePair,
    SimTime, Transfer,
};
use shmt_tensor::Tensor;
use shmt_trace::{EventKind, NullSink, TraceRecorder, TraceSink};

use crate::calibration::AdaptiveCalibration;
use crate::error::{Result, ShmtError};
use crate::guard::{GuardConfig, QualityReport};
use crate::hlop::{Hlop, HlopRecord};
use crate::partition::partition_vop;
use crate::platform::Platform;
use crate::report::{DeviceStats, RunReport};
use crate::sched::{
    plan_traced, Plan, PlanContext, Policy, QualityConfig, ACCURACY_CLASS, CPU, GPU, TPU,
};
use crate::vop::Vop;

/// Gauge-series names for the per-device incoming-queue depths, indexed
/// by queue index.
const QUEUE_GAUGE: [&str; 3] = ["queue.GPU", "queue.CPU", "queue.EdgeTPU"];

/// Configuration of one runtime instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Scheduling policy.
    pub policy: Policy,
    /// Desired HLOP partition count (the partitioner may produce fewer for
    /// small datasets). Default 64, matching 1024-row bands on the paper's
    /// 8192x8192 default datasets.
    pub partitions: usize,
    /// Quality-policy tuning knobs.
    pub quality: QualityConfig,
    /// Which devices participate, in queue-index order (GPU, CPU, TPU).
    /// Disabled devices' initial assignments are redistributed.
    pub device_mask: [bool; 3],
    /// Output-verification quality guard (disabled by default; a
    /// disabled guard leaves reports bit-identical).
    pub guard: GuardConfig,
    /// Adaptive calibration resolved from observed device behavior
    /// ([`crate::calibration::AdaptiveConfig::calibrate`]). The neutral
    /// default is the exact identity: it scales decision-side cost
    /// estimates by 1.0 and leaves the planner's TPU admission at 1.0,
    /// so runs stay bit-identical to the static scheduler. Speed
    /// factors steer *decisions* (steal-profit, endgame withdrawal);
    /// virtual-time charging never sees them.
    pub adapt: AdaptiveCalibration,
    /// Ablation knob: force synchronous (non-double-buffered) casts and
    /// transfers regardless of policy.
    pub force_synchronous: bool,
    /// Fraction of this VOP's input already resident on the Edge TPU
    /// (set by the DAG layer under residency dispatch). The planner
    /// widens the TPU admission by `1 + hint`; the neutral 0.0 default
    /// multiplies by exactly 1.0 and stays bit-identical.
    pub tpu_residency_hint: f64,
    /// Host worker threads for the real HLOP computations (does not affect
    /// the modeled virtual time; results are bit-identical at any count).
    pub compute_threads: usize,
}

impl RuntimeConfig {
    /// A configuration with defaults for everything but the policy.
    pub fn new(policy: Policy) -> Self {
        RuntimeConfig {
            policy,
            partitions: 64,
            quality: QualityConfig::default(),
            guard: GuardConfig::default(),
            device_mask: [true; 3],
            adapt: AdaptiveCalibration::neutral(),
            force_synchronous: false,
            tpu_residency_hint: 0.0,
            compute_threads: crate::exec::default_threads(),
        }
    }

    /// Restricts execution to the Edge TPU (the paper's "edge TPU" solo
    /// reference rows).
    pub fn tpu_only(mut self) -> Self {
        self.device_mask = [false, false, true];
        self
    }
}

/// The SHMT virtual device runtime.
#[derive(Debug, Clone)]
pub struct ShmtRuntime {
    platform: Platform,
    config: RuntimeConfig,
}

impl ShmtRuntime {
    /// Creates a runtime for a platform and configuration.
    pub fn new(platform: Platform, config: RuntimeConfig) -> Self {
        ShmtRuntime { platform, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The platform being driven.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Executes a VOP end to end.
    ///
    /// # Errors
    ///
    /// Returns [`ShmtError::InvalidConfig`] for a zero partition count or
    /// an all-disabled device mask.
    pub fn execute(&self, vop: &Vop) -> Result<RunReport> {
        self.execute_with_sink(vop, &mut NullSink)
    }

    /// [`ShmtRuntime::execute`] with full trace capture: records every
    /// event into a fresh [`TraceRecorder`] and attaches the finalized
    /// [`shmt_trace::TraceData`] to the report's `trace` field.
    ///
    /// # Errors
    ///
    /// Same as [`ShmtRuntime::execute`].
    pub fn execute_traced(&self, vop: &Vop) -> Result<RunReport> {
        let mut recorder = TraceRecorder::new();
        let mut report = self.execute_with_sink(vop, &mut recorder)?;
        report.trace = Some(recorder.finish());
        Ok(report)
    }

    /// [`ShmtRuntime::execute`], streaming events into a caller-supplied
    /// sink (a [`shmt_trace::RingBufferSink`] for long sweeps, a
    /// [`TraceRecorder`] shared across runs, …). The untraced `execute`
    /// is exactly this method with a [`NullSink`]: one code path, so
    /// traced and untraced runs produce bit-identical reports.
    ///
    /// # Errors
    ///
    /// Same as [`ShmtRuntime::execute`].
    pub fn execute_with_sink(&self, vop: &Vop, sink: &mut dyn TraceSink) -> Result<RunReport> {
        self.execute_with_faults_sink(vop, &FaultPlan::none(), sink)
    }

    /// [`ShmtRuntime::execute`] under a deterministic fault schedule:
    /// slowed devices take proportionally longer, failed bus transfers
    /// retry with capped exponential backoff in virtual time, and a
    /// device dropout re-dispatches its pending HLOPs to surviving queues
    /// under the plan's steal matrix extended by the accuracy-class
    /// ordering — an exact device may absorb work planned for a
    /// same-or-less exact one, so a dead GPU's critical partitions fall
    /// back to the CPU, never the int8 Edge TPU, and a dead TPU degrades
    /// the run to all-exact output.
    ///
    /// [`FaultPlan::none`] is inert: the run is bit-identical to
    /// [`ShmtRuntime::execute`]. Any other plan is exactly reproducible
    /// for the same seed.
    ///
    /// # Errors
    ///
    /// Same as [`ShmtRuntime::execute`], plus
    /// [`ShmtError::NoCapableDevice`] when a device dies holding pending
    /// work and no eligible survivor remains.
    pub fn execute_with_faults(&self, vop: &Vop, faults: &FaultPlan) -> Result<RunReport> {
        self.execute_with_faults_sink(vop, faults, &mut NullSink)
    }

    /// [`ShmtRuntime::execute_with_faults`] with full trace capture, like
    /// [`ShmtRuntime::execute_traced`]: the report's `trace` additionally
    /// carries `FaultInjected`/`Retry`/`Redispatch`/`DeviceDown` events.
    ///
    /// # Errors
    ///
    /// Same as [`ShmtRuntime::execute_with_faults`].
    pub fn execute_with_faults_traced(&self, vop: &Vop, faults: &FaultPlan) -> Result<RunReport> {
        let mut recorder = TraceRecorder::new();
        let mut report = self.execute_with_faults_sink(vop, faults, &mut recorder)?;
        report.trace = Some(recorder.finish());
        Ok(report)
    }

    /// The single code path beneath every `execute*` variant: fault
    /// schedule and trace sink both explicit.
    ///
    /// # Errors
    ///
    /// Same as [`ShmtRuntime::execute_with_faults`].
    pub fn execute_with_faults_sink(
        &self,
        vop: &Vop,
        faults: &FaultPlan,
        sink: &mut dyn TraceSink,
    ) -> Result<RunReport> {
        if self.config.partitions == 0 {
            return Err(ShmtError::InvalidConfig(
                "partition count must be positive".into(),
            ));
        }
        if !self.config.device_mask.iter().any(|&m| m) {
            return Err(ShmtError::NoCapableDevice("all devices disabled".into()));
        }
        self.config.guard.validate()?;
        self.config.adapt.validate()?;

        if sink.enabled() {
            sink.record(
                0.0,
                EventKind::PartitionStart {
                    partitions: self.config.partitions,
                },
            );
        }
        let hlops = partition_vop(vop, self.config.partitions)?;
        if sink.enabled() {
            // Partitioning is host-side pointer arithmetic; it is not
            // charged virtual time, so the span collapses at the epoch.
            sink.record(0.0, EventKind::PartitionEnd { hlops: hlops.len() });
        }
        let profiles = self.platform.device_profiles();
        let mut the_plan = plan_traced(
            self.config.policy,
            vop,
            &hlops,
            &self.config.quality,
            PlanContext {
                gpu_throughput: profiles[GPU].throughput,
                tpu_admission: self.config.adapt.tpu_admission,
                tpu_residency: self.config.tpu_residency_hint,
            },
            sink,
        );
        self.apply_device_mask(&mut the_plan);
        if self.config.force_synchronous {
            the_plan.pipelined = false;
        }

        let report = self.play(vop, &hlops, the_plan, &mut FaultInjector::new(faults), sink);
        crate::arena::HLOPS.put(hlops);
        report
    }

    /// Moves HLOPs off disabled devices' queues and forbids stealing
    /// from/to disabled devices.
    ///
    /// Orphans are routed with the same accuracy-ordered rule dropout
    /// re-dispatch uses ([`kill_device`]): an enabled device is eligible
    /// when the plan already lets it steal from the disabled device, or
    /// when its accuracy class is no worse — so masking off the GPU never
    /// leaks QAWS-critical partitions onto the approximate TPU. Among
    /// eligible devices the least-loaded (ties to the lowest index) wins;
    /// if no device is eligible (e.g. only the TPU is enabled), any
    /// enabled device serves as the fallback, matching the seed's
    /// degraded-platform semantics.
    fn apply_device_mask(&self, plan: &mut Plan) {
        let mask = self.config.device_mask;
        for d in 0..3 {
            if mask[d] {
                continue;
            }
            let orphans = std::mem::take(&mut plan.queues[d]);
            for h in orphans {
                let eligible = |e: &usize| {
                    let e = *e;
                    e != d
                        && mask[e]
                        && (plan.steal[e][d] || ACCURACY_CLASS[e] <= ACCURACY_CLASS[d])
                };
                let target = (0..3)
                    .filter(eligible)
                    .min_by_key(|&e| (plan.queues[e].len(), e))
                    .or_else(|| {
                        (0..3)
                            .filter(|&e| e != d && mask[e])
                            .min_by_key(|&e| (plan.queues[e].len(), e))
                    });
                if let Some(target) = target {
                    plan.queues[target].push(h);
                }
            }
            for i in 0..3 {
                plan.steal[d][i] = false;
                plan.steal[i][d] = false;
            }
        }
    }

    /// Plays the plan out in virtual time, computing real outputs.
    fn play(
        &self,
        vop: &Vop,
        hlops: &[Hlop],
        the_plan: Plan,
        injector: &mut FaultInjector,
        sink: &mut dyn TraceSink,
    ) -> Result<RunReport> {
        let kernel = vop.kernel();
        let shape = kernel.shape();
        // Kernel inputs as a fixed-arity reference array on the stack —
        // the collect into a Vec here used to be one of the per-run
        // allocations the warm serve path now avoids.
        let input_tensors = vop.inputs();
        assert!(
            input_tensors.len() <= crate::exec::MAX_KERNEL_ARITY,
            "kernel arity exceeds MAX_KERNEL_ARITY"
        );
        let mut input_refs: [&Tensor; crate::exec::MAX_KERNEL_ARITY] =
            [&input_tensors[0]; crate::exec::MAX_KERNEL_ARITY];
        for (slot, t) in input_refs.iter_mut().zip(input_tensors) {
            *slot = t;
        }
        let inputs = &input_refs[..input_tensors.len()];
        let (rows, cols) = vop.partition_space();
        let mut output = shape.allocate_output(rows, cols);

        let cal = *self.platform.calibration();
        let bench = *self.platform.bench_profile();
        let profiles = self.platform.device_profiles();
        let t0 = SimTime::from_secs(the_plan.overhead_s);

        let mut timelines: [DeviceTimeline; 3] =
            profiles.map(|p| DeviceTimeline::starting_at(p, t0));
        let mut bus = self.platform.bus();
        // Queue pairs are pooled whole: their deques keep capacity across
        // runs, so a warm run's enqueues never touch the heap.
        let mut queues = crate::arena::QUEUE_PAIRS
            .take_or(|| [QueuePair::new(), QueuePair::new(), QueuePair::new()]);
        for (d, (pair, q)) in queues.iter_mut().zip(&the_plan.queues).enumerate() {
            pair.reset();
            for h in q {
                pair.enqueue_traced(t0, *h, QUEUE_GAUGE[d], sink);
                if sink.enabled() {
                    sink.record(
                        t0.as_secs(),
                        EventKind::Dispatch {
                            hlop: h.id,
                            device: d,
                        },
                    );
                }
            }
        }

        // A disabled device is born "done": it never acts. A device that
        // drops out is additionally "dead": it can never be woken by a
        // re-dispatch, unlike a device that merely retired.
        let mut done = self.config.device_mask.map(|enabled| !enabled);
        let mut dead = [false; 3];
        let mut faults = FaultReport::default();
        let mut prev_start = [t0; 3];
        let mut latest_completion = t0;
        let mut records: Vec<HlopRecord> = crate::arena::RECORDS.take();
        records.reserve(hlops.len());
        let mut stolen_ids: Vec<bool> = crate::arena::STOLEN.take();
        stolen_ids.resize(hlops.len(), false);
        let mut steals = 0usize;
        let mut tpu_elements = 0usize;
        let mut compute: Vec<crate::exec::ComputeTask> = crate::arena::COMPUTE.take();
        compute.reserve(hlops.len());

        let work_per_elem = kernel.work_per_element();
        // TPU miscalibration silently corrupts output values; it only has
        // something to corrupt for tile-aggregated kernels (reduction
        // partials fold into shared buffers and are not attributable).
        let miscal = injector
            .miscalibration()
            .filter(|_| matches!(shape.aggregation, shmt_kernels::Aggregation::Tile));
        // Kernels with native uint8 NPU models take 8-bit image data
        // without a host-side cast; everything else pays the fp32->int8
        // conversion on the way in and out (§3.3.2).
        let cast_s = if kernel.npu_native_u8() {
            0.0
        } else {
            cal.cast_s_per_elem
        };

        // Once every device has retired, any queue left non-empty holds
        // stranded work (e.g. a withdrawn victim whose expected thief
        // dropped out before stealing); the drain pass wakes the owners
        // and — crucially — disables further endgame withdrawal, so each
        // owner finishes its own remainder and the run cannot re-strand.
        let mut draining = false;

        // Adaptive speed factors scale the *decision-side* cost
        // estimates only: which queue looks worth stealing from, which
        // device wins the endgame. Virtual-time charging below stays on
        // the static model, so adaptation can never flatter the
        // makespan — and the neutral 1.0 divides bitwise-exactly,
        // keeping adaptation-off runs bit-identical.
        let speed = self.config.adapt.speed_factors;
        let est = |dev: usize, work: f64| profiles[dev].exec_time(work) / speed[dev];

        // The next device to act is always the earliest-free one with work
        // available (its own queue, or a queue it may steal from).
        loop {
            let Some(d) = (0..3)
                .filter(|&i| !done[i])
                .min_by(|&a, &b| timelines[a].free_at().cmp(&timelines[b].free_at()))
            else {
                let mut woke = false;
                for v in 0..3 {
                    if self.config.device_mask[v] && !dead[v] && !queues[v].is_idle() {
                        done[v] = false;
                        woke = true;
                    }
                }
                if !woke {
                    break;
                }
                draining = true;
                continue;
            };
            // Dropouts fire once the virtual-time frontier (the acting
            // device's free instant) passes their scheduled moment; a
            // dead device's pending HLOPs re-dispatch immediately, while
            // HLOPs it already completed stay aggregated.
            if injector.active() {
                let now = timelines[d].free_at();
                for v in 0..3 {
                    if dead[v] || !self.config.device_mask[v] {
                        continue;
                    }
                    if let Some(at) = injector.down_at(v) {
                        if at <= now {
                            kill_device(
                                v,
                                at.max(t0),
                                &mut queues,
                                &mut done,
                                &mut dead,
                                self.config.device_mask,
                                &the_plan.steal,
                                &mut faults,
                                sink,
                            )?;
                        }
                    }
                }
                if dead[d] {
                    continue;
                }
            }

            let pending_total: usize = queues.iter().map(QueuePair::pending).sum();
            if !draining && !queues[d].is_idle() && pending_total <= 6 {
                // §3.4: the runtime may *withdraw* unprocessed HLOPs from a
                // device's assignment. In the endgame (at most a couple of
                // pending partitions per device left), a device
                // retires from pulling its own queue when a still-active
                // device that may steal from it would finish the item
                // sooner even after draining its own backlog — otherwise a
                // slow device's final pull defines the makespan. The peer
                // must also pass the steal-profit filter below against
                // *this* queue's backlog, or it would never actually come
                // take the item and the HLOP would strand.
                let Some(front) = queues[d].peek_front() else {
                    return Err(ShmtError::Internal(
                        "endgame withdrawal peeked an idle queue".into(),
                    ));
                };
                let item_work = front.elements() as f64 * work_per_elem;
                let my_completion = timelines[d].free_at() + est(d, item_work);
                let my_backlog: f64 = queues[d]
                    .iter_pending()
                    .map(|h| est(d, h.elements() as f64 * work_per_elem))
                    .sum();
                let beaten = (0..3).any(|e| {
                    if e == d || done[e] || dead[e] || !the_plan.steal[e][d] {
                        return false;
                    }
                    if est(e, item_work) > my_backlog {
                        // e's own steal filter would reject this queue.
                        return false;
                    }
                    let backlog: f64 = queues[e]
                        .iter_pending()
                        .map(|h| est(e, h.elements() as f64 * work_per_elem))
                        .sum();
                    timelines[e].free_at() + backlog + est(e, item_work) <= my_completion
                });
                if beaten {
                    done[d] = true;
                    continue;
                }
            }

            if queues[d].is_idle() {
                // Work stealing (§3.4): take one pending HLOP from the most
                // loaded queue this device is allowed to steal from. A
                // steal is only worthwhile when the thief finishes the item
                // before the victim would get around to it — otherwise a
                // slow device becomes a schedule-defining straggler.
                let victim = (0..3)
                    .filter(|&v| the_plan.steal[d][v] && !queues[v].is_idle())
                    .filter(|&v| {
                        let Some(back) = queues[v].peek_back() else {
                            return false;
                        };
                        let item_work = back.elements() as f64 * work_per_elem;
                        let victim_backlog: f64 = queues[v]
                            .iter_pending()
                            .map(|h| est(v, h.elements() as f64 * work_per_elem))
                            .sum();
                        est(d, item_work) <= victim_backlog
                    })
                    .max_by_key(|&v| queues[v].pending());
                match victim {
                    Some(v) => {
                        // Stealing from the back takes the victim's most
                        // critical pending work under quality-aware plans.
                        let Some(h) = queues[v].steal_back() else {
                            return Err(ShmtError::Internal(
                                "steal victim's queue drained before the steal".into(),
                            ));
                        };
                        stolen_ids[h.id] = true;
                        let now = timelines[d].free_at();
                        queues[d].enqueue_traced(now, h, QUEUE_GAUGE[d], sink);
                        steals += 1;
                        if sink.enabled() {
                            sink.record(
                                now.as_secs(),
                                EventKind::Steal {
                                    hlop: h.id,
                                    from: v,
                                    to: d,
                                },
                            );
                            sink.counter("steals", 1.0);
                            sink.gauge(QUEUE_GAUGE[v], now.as_secs(), queues[v].pending() as f64);
                        }
                    }
                    None => {
                        done[d] = true;
                        continue;
                    }
                }
            }

            let Some(hlop) = queues[d].pop_front() else {
                return Err(ShmtError::Internal(
                    "acting device's queue empty after refill".into(),
                ));
            };
            if sink.enabled() {
                sink.gauge(
                    QUEUE_GAUGE[d],
                    timelines[d].free_at().as_secs(),
                    queues[d].pending() as f64,
                );
            }
            let elems = hlop.elements();
            let work = elems as f64 * work_per_elem;

            // Data distribution (§3.3.2). The CPU and GPU share the
            // system's main memory (zero-copy on the prototype); the Edge
            // TPU sits behind the PCIe bus and needs int8 casting both
            // ways.
            let (data_ready, is_tpu) = if d == TPU {
                let issue = if the_plan.pipelined {
                    // Double buffering: the next HLOP's cast/transfer
                    // overlaps the device's current compute.
                    prev_start[d].max(t0)
                } else {
                    timelines[d].free_at()
                };
                let cast_done = issue + elems as f64 * cast_s;
                if sink.enabled() && cast_s > 0.0 {
                    sink.record(
                        issue.as_secs(),
                        EventKind::CastStart {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                    sink.record(
                        cast_done.as_secs(),
                        EventKind::CastEnd {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                }
                let bytes_in = (elems as f64 * cal.tpu_bytes_per_elem_in) as usize;
                let xfer = transfer_with_retries(
                    &mut bus,
                    cast_done,
                    bytes_in,
                    hlop.id,
                    d,
                    injector,
                    &mut faults,
                    sink,
                );
                (xfer.end, true)
            } else {
                (t0, false)
            };

            // The Edge TPU's 8 MB device memory may force a large HLOP to
            // run as several sub-invocations (§3.4: "the runtime system may
            // need to further fuse or partition HLOPs").
            let extra_launches = if is_tpu {
                tpu_extra_launches(elems, profiles[TPU].device_memory_bytes) as f64
                    * profiles[TPU].launch_overhead
            } else {
                0.0
            };

            let start = timelines[d].free_at().max(data_ready);
            prev_start[d] = start;
            // A slowdown window scales the work charged, not the real
            // computation; multiplying by an exact 1.0 outside every
            // window keeps fault-free runs bit-identical.
            let slow = injector.slowdown_factor(d, start);
            if slow != 1.0 {
                faults.injected += 1;
                if sink.enabled() {
                    sink.record(
                        start.as_secs(),
                        EventKind::FaultInjected {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                    sink.counter("faults.injected", 1.0);
                }
            }
            // A miscalibrated TPU corrupts every HLOP it serves; the
            // values are damaged when the corruption is applied to the
            // computed output below.
            if is_tpu && miscal.is_some() {
                faults.injected += 1;
                if sink.enabled() {
                    sink.record(
                        start.as_secs(),
                        EventKind::FaultInjected {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                    sink.counter("faults.injected", 1.0);
                }
            }
            let mut end = timelines[d].execute_traced(data_ready, work * slow, hlop.id, d, sink);
            if extra_launches > 0.0 {
                timelines[d].stall_until(end + extra_launches);
                end += extra_launches;
            }

            // Result restoration (§3.3.2).
            let completion = if is_tpu {
                let bytes_out = (elems as f64 * cal.tpu_bytes_per_elem_out) as usize;
                let xfer = transfer_with_retries(
                    &mut bus,
                    end,
                    bytes_out,
                    hlop.id,
                    d,
                    injector,
                    &mut faults,
                    sink,
                );
                let restored = xfer.end + elems as f64 * cast_s;
                if sink.enabled() && cast_s > 0.0 {
                    sink.record(
                        xfer.end.as_secs(),
                        EventKind::CastStart {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                    sink.record(
                        restored.as_secs(),
                        EventKind::CastEnd {
                            hlop: hlop.id,
                            device: d,
                        },
                    );
                }
                if !the_plan.pipelined {
                    // Synchronous mode: the device blocks on the drain.
                    timelines[d].stall_until(restored);
                }
                restored
            } else {
                end
            };
            latest_completion = latest_completion.max(completion);

            // Real computation is deferred to the parallel compute phase
            // below; record which path this partition takes.
            compute.push(crate::exec::ComputeTask {
                tile: hlop.tile,
                npu: is_tpu,
            });
            if is_tpu {
                tpu_elements += elems;
            }

            // The device's monitor thread moves the finished HLOP to the
            // completion queue for aggregation (§3.3.1).
            queues[d].complete(completion, hlop);
            if sink.enabled() {
                sink.record(
                    completion.as_secs(),
                    EventKind::Aggregate {
                        hlop: hlop.id,
                        device: d,
                    },
                );
                sink.counter("hlops.completed", 1.0);
            }
            records.push(HlopRecord {
                id: hlop.id,
                device: profiles[d].kind,
                start_s: start.as_secs(),
                end_s: completion.as_secs(),
                stolen: stolen_ids[hlop.id],
                elements: elems,
            });
        }

        if records.len() != hlops.len() {
            // Every missing record is an output tile that was never
            // computed; surface it as a typed error instead of silently
            // returning zero-filled regions.
            return Err(ShmtError::StrandedHlop {
                executed: records.len(),
                total: hlops.len(),
            });
        }

        // Dropouts the scheduling loop never reached (the device had
        // already retired with an empty queue) still degrade the platform
        // when they fall inside the run window.
        if injector.active() {
            for (v, was_dead) in dead.iter_mut().enumerate() {
                if *was_dead || !self.config.device_mask[v] {
                    continue;
                }
                if let Some(at) = injector.down_at(v) {
                    if at <= latest_completion {
                        *was_dead = true;
                        faults.devices_lost += 1;
                        faults.injected += 1;
                        faults.degraded = true;
                        faults.lost[v] = true;
                        if sink.enabled() {
                            sink.record(at.max(t0).as_secs(), EventKind::DeviceDown { device: v });
                            sink.counter("faults.devices_lost", 1.0);
                        }
                    }
                }
            }
        }

        // Real computation: exact fp32 for CPU/GPU partitions, the int8
        // NPU path for Edge TPU partitions, fanned out over host threads.
        crate::exec::compute_tasks(
            kernel,
            inputs,
            &compute,
            &mut output,
            self.config.compute_threads,
        );

        // The miscalibrated TPU wrote `gain·v + bias` into every tile it
        // served; tiles are disjoint, so post-hoc corruption of the
        // aggregated output is equivalent to corrupting each HLOP result.
        if let Some(m) = miscal {
            for task in compute.iter().filter(|t| t.npu) {
                let t = task.tile;
                for r in 0..t.rows {
                    for v in &mut output.row_mut(t.row0 + r)[t.col0..t.col0 + t.cols] {
                        *v = m.gain * *v + m.bias;
                    }
                }
            }
        }

        // Output-side quality control (§3.6): sample pages of every
        // approximate partition, estimate the error, re-execute exactly
        // over budget. Charged on the exact devices' timelines, so the
        // makespan and energy below include the verification cost.
        let (quality, guard_end) = if self.config.guard.enabled {
            let alive = [
                self.config.device_mask[GPU] && !dead[GPU],
                self.config.device_mask[CPU] && !dead[CPU],
                self.config.device_mask[TPU] && !dead[TPU],
            ];
            crate::guard::run_guard(
                &self.config.guard,
                kernel,
                inputs,
                &compute,
                &mut output,
                &mut timelines,
                &alive,
                latest_completion,
                sink,
            )?
        } else {
            (QualityReport::disabled(), latest_completion)
        };

        kernel.finalize(&mut output);

        // Host-side chunk staging overlaps the multi-device execution (the
        // baseline pays it serially; see `baseline`).
        let total_elems: usize = hlops.iter().map(Hlop::elements).sum();
        let ideal_gpu_kernel_s = total_elems as f64 * work_per_elem / profiles[GPU].throughput;
        let staging_s = bench.host_staging_frac * ideal_gpu_kernel_s;
        let makespan = guard_end.max(t0 + staging_s).as_secs();

        // Energy (§5.5): platform idle floor over the makespan, plus each
        // device's active power over its busy time; the CPU also pays for
        // scheduling overhead and staging.
        let mut meter = EnergyMeter::new(self.platform.idle_power_w());
        for t in &timelines {
            meter.record_busy_traced(
                t.profile().kind,
                t.busy_time(),
                t.profile().active_power_w,
                sink,
            );
        }
        meter.record_busy_traced(
            profiles[CPU].kind,
            the_plan.overhead_s + staging_s,
            profiles[CPU].active_power_w,
            sink,
        );
        let energy = meter.finish(makespan);

        let mut devices: Vec<DeviceStats> = crate::arena::DEVICES.take();
        devices.extend(timelines.iter().zip(&mut queues).map(|(t, q)| {
            let completed_count = q.drain_completed().count();
            debug_assert_eq!(completed_count, t.completed());
            DeviceStats {
                kind: t.profile().kind,
                busy_s: t.busy_time(),
                wait_s: t.transfer_wait(),
                hlops: t.completed(),
                max_queue_depth: q.max_depth(),
                stolen_away: q.total_stolen_away(),
            }
        }));

        let tpu_fraction = tpu_elements as f64 / total_elems as f64;
        let peak_memory_bytes = self.memory_model(vop, hlops.len(), tpu_fraction, output.len());

        // Per-run scratch back to the arena; the report's own spines
        // (records, devices, repairs) recycle when the caller hands the
        // report to [`crate::arena::recycle_report`].
        let scheduling_overhead_s = the_plan.overhead_s;
        the_plan.recycle();
        for q in queues.iter_mut() {
            q.reset();
        }
        crate::arena::QUEUE_PAIRS.put(queues);
        crate::arena::STOLEN.put(stolen_ids);
        crate::arena::COMPUTE.put(compute);

        let output_shape = output.shape();
        Ok(RunReport {
            output,
            output_shape,
            makespan_s: makespan,
            scheduling_overhead_s,
            devices,
            energy,
            bus_bytes: bus.total_bytes(),
            records,
            tpu_fraction,
            steals,
            peak_memory_bytes,
            faults,
            quality,
            trace: None,
        })
    }

    /// The Fig 11 footprint model: shared input/output datasets, plus
    /// band-sized (not dataset-sized) GPU intermediates, plus the Edge
    /// TPU's staging buffers when it participates.
    fn memory_model(
        &self,
        vop: &Vop,
        hlop_count: usize,
        tpu_fraction: f64,
        out_elems: usize,
    ) -> u64 {
        let bench = self.platform.bench_profile();
        let (rows, cols) = vop.partition_space();
        let n = (rows * cols) as u64;
        let band_elems = n / hlop_count.max(1) as u64;
        // Alloc-only model: the peak is just the sum of the classes, so
        // plain arithmetic replaces the labeled `MemoryTracker` (whose
        // class strings were a per-run heap allocation).
        let mut mem: u64 = 0;
        mem += 4 * n * vop.inputs().len() as u64; // inputs
        mem += 4 * out_elems as u64; // output
        if self.config.device_mask[GPU] || self.config.device_mask[CPU] {
            // Per-HLOP GPU intermediates, double buffered.
            mem += (bench.gpu_intermediate * (band_elems * 4) as f64 * 2.0) as u64;
        }
        if self.config.device_mask[TPU] && tpu_fraction > 0.0 {
            // int8 in/out plus f32 snap staging, double buffered, plus the
            // resident compiled-model constant.
            mem += band_elems * 10 * 2;
            mem += 6 * 1024 * 1024;
        }
        mem += (hlop_count * 512) as u64; // runtime bookkeeping
        mem
    }
}

/// Extra kernel launches forced by the Edge TPU's finite device memory:
/// the int8 input+output footprint splits into device-memory-sized
/// sub-invocations, and the first launch is already charged by the
/// device's ordinary launch overhead — an HLOP that exactly fits pays
/// nothing extra.
fn tpu_extra_launches(elems: usize, device_memory_bytes: Option<usize>) -> u64 {
    let dev_mem = device_memory_bytes.unwrap_or(usize::MAX).max(1);
    let need = elems * 2; // int8 in + out
    need.div_ceil(dev_mem).saturating_sub(1) as u64
}

/// One bus transfer under fault injection. A failed attempt still
/// occupies the interconnect (the bytes moved but arrived corrupt), then
/// the device backs off in virtual time and re-issues; the last permitted
/// attempt is deemed delivered so runs always terminate. With an inactive
/// injector this is exactly one `transfer_traced` and no random draws.
#[allow(clippy::too_many_arguments)]
fn transfer_with_retries(
    bus: &mut Interconnect,
    ready: SimTime,
    bytes: usize,
    hlop: usize,
    device: usize,
    injector: &mut FaultInjector,
    faults: &mut FaultReport,
    sink: &mut dyn TraceSink,
) -> Transfer {
    let mut xfer = bus.transfer_traced(ready, bytes, hlop, device, sink);
    let mut attempt = 0usize;
    while injector.active()
        && attempt < injector.plan().max_transfer_retries
        && injector.transfer_fails()
    {
        attempt += 1;
        faults.injected += 1;
        faults.retried += 1;
        let resume = xfer.end + injector.backoff(attempt);
        if sink.enabled() {
            sink.record(
                xfer.end.as_secs(),
                EventKind::FaultInjected { hlop, device },
            );
            sink.counter("faults.injected", 1.0);
            sink.record(
                resume.as_secs(),
                EventKind::Retry {
                    hlop,
                    device,
                    attempt,
                },
            );
            sink.counter("faults.retries", 1.0);
        }
        xfer = bus.transfer_traced(resume, bytes, hlop, device, sink);
    }
    xfer
}

/// Kills device `d` at `now`: marks it dead and re-dispatches every HLOP
/// still pending on its incoming queue to the least-loaded eligible
/// survivor. A survivor is eligible when the plan already lets it steal
/// from `d`, or when the accuracy-class ordering allows it — an exact
/// device may absorb work planned for a same-or-less exact one, so a dead
/// GPU's critical partitions go to the CPU and never to the int8 TPU.
/// Retired (but alive) survivors are woken to drain the new work.
#[allow(clippy::too_many_arguments)]
fn kill_device(
    d: usize,
    now: SimTime,
    queues: &mut [QueuePair<Hlop>],
    done: &mut [bool; 3],
    dead: &mut [bool; 3],
    mask: [bool; 3],
    steal: &[[bool; 3]; 3],
    faults: &mut FaultReport,
    sink: &mut dyn TraceSink,
) -> Result<()> {
    dead[d] = true;
    done[d] = true;
    faults.devices_lost += 1;
    faults.injected += 1;
    faults.degraded = true;
    faults.lost[d] = true;
    if sink.enabled() {
        sink.record(now.as_secs(), EventKind::DeviceDown { device: d });
        sink.counter("faults.devices_lost", 1.0);
    }
    while let Some(h) = queues[d].pop_front() {
        let target = (0..3)
            .filter(|&e| {
                e != d
                    && mask[e]
                    && !dead[e]
                    && (steal[e][d] || ACCURACY_CLASS[e] <= ACCURACY_CLASS[d])
            })
            .min_by_key(|&e| (queues[e].pending(), e))
            .ok_or_else(|| {
                ShmtError::NoCapableDevice(format!(
                    "device {d} died holding pending HLOPs and no eligible survivor remains"
                ))
            })?;
        queues[target].enqueue_traced(now, h, QUEUE_GAUGE[target], sink);
        done[target] = false;
        faults.redispatched += 1;
        if sink.enabled() {
            sink.gauge(QUEUE_GAUGE[d], now.as_secs(), queues[d].pending() as f64);
            sink.record(
                now.as_secs(),
                EventKind::Redispatch {
                    hlop: h.id,
                    from: d,
                    to: target,
                },
            );
            sink.counter("faults.redispatched", 1.0);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::mape;
    use crate::sampling::SamplingMethod;
    use crate::sched::QawsAssignment;
    use shmt_kernels::Benchmark;

    /// A slowed-down virtual platform: at test-sized datasets the real
    /// prototype would be launch-overhead-bound (the Fig 12 small-size
    /// regime); dividing throughput keeps compute dominant so the
    /// policies' steady-state behaviour is observable.
    fn slow_platform(b: Benchmark) -> Platform {
        Platform::with_profiles(
            crate::calibration::Calibration {
                gpu_throughput: 1.0e6,
                ..Default::default()
            },
            crate::calibration::bench_profile(b),
        )
    }

    fn run(policy: Policy, b: Benchmark, n: usize) -> RunReport {
        let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
        let mut cfg = RuntimeConfig::new(policy);
        cfg.partitions = 16;
        cfg.quality.sampling_rate = 0.01;
        ShmtRuntime::new(slow_platform(b), cfg)
            .execute(&vop)
            .unwrap()
    }

    fn exact_reference(b: Benchmark, n: usize) -> Tensor {
        let vop = Vop::from_benchmark(b, b.generate_inputs(n, n, 7)).unwrap();
        let kernel = vop.kernel();
        let inputs: Vec<&Tensor> = vop.inputs().iter().collect();
        let mut out = kernel.shape().allocate_output(n, n);
        let tile = shmt_tensor::tile::Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: n,
            cols: n,
        };
        kernel.run_exact(&inputs, tile, &mut out);
        out
    }

    #[test]
    fn tpu_extra_launch_boundary() {
        let m = 8 * 1024 * 1024usize; // the Edge TPU's device memory
        let mem = Some(m);
        // An int8 footprint exactly filling device memory is one launch —
        // the truncating-division model used to charge a phantom extra.
        assert_eq!(
            tpu_extra_launches(m / 2, mem),
            0,
            "exact fit needs no extra launch"
        );
        assert_eq!(tpu_extra_launches(m / 2 - 1, mem), 0);
        assert_eq!(
            tpu_extra_launches(m / 2 + 1, mem),
            1,
            "one element over splits once"
        );
        assert_eq!(
            tpu_extra_launches(m, mem),
            1,
            "a 2x footprint splits exactly once"
        );
        assert_eq!(tpu_extra_launches(m + 1, mem), 2);
        assert_eq!(
            tpu_extra_launches(m, None),
            0,
            "unbounded memory never splits"
        );
        assert_eq!(tpu_extra_launches(0, mem), 0);
    }

    #[test]
    fn work_stealing_executes_all_hlops_and_beats_gpu_busy() {
        let r = run(Policy::WorkStealing, Benchmark::Fft, 128);
        assert_eq!(r.records.len(), 16);
        assert!(r.makespan_s > 0.0);
        // All three devices should have contributed for FFT (TPU fast).
        assert!(r.device(hetsim::DeviceKind::EdgeTpu).unwrap().hlops > 0);
        assert!(r.tpu_fraction > 0.0);
    }

    #[test]
    fn work_stealing_output_close_to_exact() {
        let r = run(Policy::WorkStealing, Benchmark::MeanFilter, 128);
        let reference = exact_reference(Benchmark::MeanFilter, 128);
        let e = mape(&reference, &r.output);
        assert!(
            e < 0.25,
            "WS output should be approximately right, mape={e}"
        );
        assert!(e > 0.0, "some partitions ran on the int8 TPU");
    }

    #[test]
    fn qaws_quality_beats_plain_work_stealing() {
        let b = Benchmark::Sobel;
        let reference = exact_reference(b, 256);
        let vop = Vop::from_benchmark(b, b.generate_inputs(256, 256, 7)).unwrap();
        let mk = |policy| {
            let mut cfg = RuntimeConfig::new(policy);
            cfg.partitions = 32;
            cfg.quality.sampling_rate = 0.02;
            ShmtRuntime::new(slow_platform(b), cfg)
                .execute(&vop)
                .unwrap()
        };
        let ws = mk(Policy::WorkStealing);
        let qaws = mk(Policy::Qaws {
            assignment: QawsAssignment::TopK,
            sampling: SamplingMethod::Striding,
        });
        assert!(
            ws.tpu_fraction > 0.1,
            "TPU must participate: {}",
            ws.tpu_fraction
        );
        let e_ws = mape(&reference, &ws.output);
        let e_qaws = mape(&reference, &qaws.output);
        assert!(
            e_qaws < e_ws,
            "criticality routing must improve quality: QAWS {e_qaws} vs WS {e_ws}"
        );
    }

    #[test]
    fn tpu_only_runs_everything_on_the_tpu() {
        let b = Benchmark::Histogram;
        let vop = Vop::from_benchmark(b, b.generate_inputs(128, 128, 7)).unwrap();
        let cfg = RuntimeConfig::new(Policy::WorkStealing).tpu_only();
        let r = ShmtRuntime::new(Platform::jetson(b), cfg)
            .execute(&vop)
            .unwrap();
        assert!((r.tpu_fraction - 1.0).abs() < 1e-9);
        assert_eq!(r.device(hetsim::DeviceKind::Gpu).unwrap().hlops, 0);
        // Histogram counts survive the int8 count regression approximately.
        let total: f32 = r.output.as_slice().iter().sum();
        let expect = 128.0 * 128.0;
        assert!((total - expect).abs() < 0.05 * expect, "total = {total}");
    }

    #[test]
    fn even_distribution_is_slower_than_work_stealing_for_slow_tpu() {
        // MF: TPU 0.31x — a forced 50/50 split is bounded by the TPU.
        let even = run(Policy::EvenDistribution, Benchmark::MeanFilter, 256);
        let ws = run(Policy::WorkStealing, Benchmark::MeanFilter, 256);
        assert!(
            even.makespan_s > ws.makespan_s,
            "even {} vs ws {}",
            even.makespan_s,
            ws.makespan_s
        );
    }

    #[test]
    fn rejects_empty_device_mask() {
        let b = Benchmark::Sobel;
        let vop = Vop::from_benchmark(b, b.generate_inputs(64, 64, 1)).unwrap();
        let mut cfg = RuntimeConfig::new(Policy::WorkStealing);
        cfg.device_mask = [false; 3];
        let err = ShmtRuntime::new(Platform::jetson(b), cfg)
            .execute(&vop)
            .unwrap_err();
        assert!(matches!(err, ShmtError::NoCapableDevice(_)));
    }

    #[test]
    fn energy_includes_idle_and_active_parts() {
        let r = run(Policy::WorkStealing, Benchmark::Srad, 128);
        assert!(r.energy.idle_j > 0.0);
        assert!(r.energy.active_j > 0.0);
        assert!(r.edp() > 0.0);
    }

    #[test]
    fn comm_overhead_is_small_under_pipelining() {
        let r = run(Policy::WorkStealing, Benchmark::Dct8x8, 256);
        assert!(
            r.comm_overhead() < 0.10,
            "comm overhead = {}",
            r.comm_overhead()
        );
    }
}
