use std::fmt;

/// Errors raised by the SHMT runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmtError {
    /// The VOP's inputs do not satisfy the kernel's arity or shape rules.
    InvalidVop(String),
    /// The runtime configuration is unusable (e.g. zero partitions).
    InvalidConfig(String),
    /// No device in the platform can execute the requested HLOPs.
    NoCapableDevice(String),
    /// The scheduler finished with HLOPs still pending — a correctness
    /// invariant violation that would otherwise surface as silently
    /// zero-filled output tiles.
    StrandedHlop {
        /// HLOPs that actually executed.
        executed: usize,
        /// HLOPs the VOP was partitioned into.
        total: usize,
    },
}

impl fmt::Display for ShmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmtError::InvalidVop(msg) => write!(f, "invalid VOP: {msg}"),
            ShmtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ShmtError::NoCapableDevice(msg) => write!(f, "no capable device: {msg}"),
            ShmtError::StrandedHlop { executed, total } => write!(
                f,
                "scheduler stranded {} of {total} HLOPs (executed {executed})",
                total - executed
            ),
        }
    }
}

impl std::error::Error for ShmtError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ShmtError>;
