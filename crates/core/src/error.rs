use std::fmt;

/// Errors raised by the SHMT runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ShmtError {
    /// The VOP's inputs do not satisfy the kernel's arity or shape rules.
    InvalidVop(String),
    /// The runtime configuration is unusable (e.g. zero partitions).
    InvalidConfig(String),
    /// No device in the platform can execute the requested HLOPs.
    NoCapableDevice(String),
    /// The scheduler finished with HLOPs still pending — a correctness
    /// invariant violation that would otherwise surface as silently
    /// zero-filled output tiles.
    StrandedHlop {
        /// HLOPs that actually executed.
        executed: usize,
        /// HLOPs the VOP was partitioned into.
        total: usize,
    },
    /// The quality guard found an over-budget partition but no exact
    /// (fp32) device survives to verify or repair it, so the budget
    /// cannot be honoured.
    QualityUnattainable {
        /// The guard's error estimate for the partition it could not fix.
        estimated_mape: f64,
        /// The budget that estimate exceeds.
        budget_mape: f64,
    },
    /// A cooperative cancellation hook fired between pipeline stages
    /// (the serve layer uses this for pipeline-level deadlines).
    Canceled,
    /// An internal scheduler invariant was violated — always a bug, never
    /// a consequence of user input, but surfaced as a typed error instead
    /// of a panic so servers degrade gracefully.
    Internal(String),
}

impl fmt::Display for ShmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmtError::InvalidVop(msg) => write!(f, "invalid VOP: {msg}"),
            ShmtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ShmtError::NoCapableDevice(msg) => write!(f, "no capable device: {msg}"),
            ShmtError::StrandedHlop { executed, total } => write!(
                f,
                "scheduler stranded {} of {total} HLOPs (executed {executed})",
                total - executed
            ),
            ShmtError::QualityUnattainable {
                estimated_mape,
                budget_mape,
            } => write!(
                f,
                "quality budget unattainable: estimated MAPE {estimated_mape:.4} exceeds \
                 budget {budget_mape:.4} with no exact device left to repair"
            ),
            ShmtError::Canceled => write!(f, "execution canceled between stages"),
            ShmtError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ShmtError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ShmtError>;
