//! Parallel execution of HLOP computations on the host.
//!
//! The SHMT runtime's virtual-time scheduler decides *where* each HLOP
//! runs and *when* it completes on the modeled platform; the actual
//! numerical work (exact fp32 for CPU/GPU HLOPs, the int8 NPU path for
//! Edge TPU HLOPs) is host computation. This module fans that computation
//! out over worker threads — the software analogue of the paper's
//! per-device monitor threads (§3.3.1) — while keeping results bit-exact
//! and deterministic:
//!
//! * Tile-aggregated kernels write disjoint output tiles, so workers
//!   compute each task into a tile-sized scratch buffer (inputs localized
//!   to the tile's halo-extended footprint) that is stitched in one pass.
//! * Reduction kernels (Histogram, reduce_*) produce per-HLOP partial
//!   buffers that are folded in task order, so float accumulation order
//!   never changes regardless of which worker ran which task.

use std::sync::atomic::{AtomicUsize, Ordering};

use shmt_kernels::{Aggregation, Kernel};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::pool::ComputePool;

/// Maximum kernel arity the executor supports — lets per-task input
/// reference lists live in fixed stack arrays instead of heap vectors.
/// Every benchmark kernel takes 1 or 2 inputs; 4 leaves headroom.
pub const MAX_KERNEL_ARITY: usize = 4;

/// Pre-sized per-slot result collection: each claimed task index is
/// written by exactly one worker, so the slots need no lock.
///
/// Safety contract: index `i` is written at most once (claimants obtain
/// indices from a shared `fetch_add` cursor, so claims are unique), the
/// backing `Vec` is pre-sized and never reallocated while workers hold
/// this pointer, and the pool's batch barrier orders every write before
/// the submitting thread reads the slots back.
struct SlotWriter {
    ptr: *mut Option<Tensor>,
    len: usize,
}

// SAFETY: concurrent `write` calls touch disjoint slots per the
// contract above; the raw pointer itself is freely sendable.
unsafe impl Sync for SlotWriter {}

impl SlotWriter {
    /// Deposits `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be a unique claim below `len` (see the struct contract).
    unsafe fn write(&self, i: usize, value: Tensor) {
        debug_assert!(i < self.len);
        // The pre-sized slot holds `None` (trivial drop), so a plain
        // store through the pointer is enough.
        unsafe { *self.ptr.add(i) = Some(value) };
    }
}

/// One unit of host compute: which partition, and through which path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeTask {
    /// The partition to compute.
    pub tile: Tile,
    /// `true` for the Edge TPU's int8 NPU path.
    pub npu: bool,
}

/// Number of worker threads to use by default.
///
/// The `SHMT_THREADS` environment variable overrides the detected
/// parallelism (clamped to at least 1); unset or unparsable values fall
/// back to `available_parallelism`, capped at 16.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("SHMT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
}

/// Computes every task and assembles the results into `output`.
///
/// With `threads <= 1` the tasks run inline; otherwise up to `threads`
/// claimant jobs are submitted to the shared [`ComputePool`] — concurrent
/// runs interleave on the same persistent workers. The assembled output
/// is identical either way, at any pool size.
///
/// # Panics
///
/// Panics if a worker panics (kernel contract violations).
pub fn compute_tasks(
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    tasks: &[ComputeTask],
    output: &mut Tensor,
    threads: usize,
) {
    compute_tasks_on(
        ComputePool::global(),
        kernel,
        inputs,
        tasks,
        output,
        threads,
    );
}

/// [`compute_tasks`] on an explicit pool (dedicated pools are useful in
/// tests and for callers that want isolated capacity).
pub fn compute_tasks_on(
    pool: &ComputePool,
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    tasks: &[ComputeTask],
    output: &mut Tensor,
    threads: usize,
) {
    if tasks.is_empty() {
        return;
    }
    let aggregation = kernel.shape().aggregation;
    if threads <= 1 || tasks.len() == 1 {
        for task in tasks {
            run_one(kernel, inputs, *task, output);
        }
        return;
    }

    assert!(
        inputs.len() <= MAX_KERNEL_ARITY,
        "kernel arity {} exceeds executor maximum {MAX_KERNEL_ARITY}",
        inputs.len()
    );

    let (out_rows, out_cols) = output.shape();
    // Claimant jobs pull task indices through a shared atomic cursor —
    // the software analogue of pulling from a shared incoming queue — and
    // deposit each result into its task's pre-sized slot, so assembly
    // order is independent of which worker ran what and collection needs
    // no lock (the seed's `Mutex<Vec<(usize, Tensor)>>` serialized every
    // deposit). Slot spines and all scratch tensors come from the arena,
    // so a warm call allocates nothing.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Tensor>> = crate::arena::SLOTS.take();
    slots.resize_with(tasks.len(), || None);
    let writer = SlotWriter {
        ptr: slots.as_mut_ptr(),
        len: slots.len(),
    };

    let n_claims = threads.min(tasks.len());
    match aggregation {
        Aggregation::Tile => {
            // Each task is computed into a tile-sized result: inputs are
            // localized to the tile's halo-extended footprint and the
            // kernel runs in local coordinates, so scratch memory scales
            // with the tile (plus halo), not the dataset. Kernels that
            // read far outside that footprint (`global_inputs`, e.g.
            // GEMM) keep the full inputs and a per-claimant full-shape
            // buffer. Tiles are disjoint, so stitching is order-
            // independent and exact.
            let shape = kernel.shape();
            let localize = !shape.global_inputs;
            let (in_rows, in_cols) = inputs[0].shape();
            pool.scope_fn(n_claims, &|| {
                let mut full_scratch: Option<Tensor> = None;
                let mut locals: Vec<Tensor> = crate::arena::LOCALS.take();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let tile = task.tile;
                    let result =
                        if localize {
                            let ext = shmt_kernels::npu::extended_region(
                                tile,
                                shape.halo,
                                shape.block_align,
                                shape.full_rows,
                                in_rows,
                                in_cols,
                            );
                            locals.clear();
                            locals.extend(inputs.iter().map(|t| {
                                t.view(ext.row0, ext.col0, ext.rows, ext.cols).to_tensor()
                            }));
                            let mut local_refs: [&Tensor; MAX_KERNEL_ARITY] =
                                [inputs[0]; MAX_KERNEL_ARITY];
                            for (slot, t) in local_refs.iter_mut().zip(&locals) {
                                *slot = t;
                            }
                            let local_tile = Tile {
                                index: tile.index,
                                row0: tile.row0 - ext.row0,
                                col0: tile.col0 - ext.col0,
                                rows: tile.rows,
                                cols: tile.cols,
                            };
                            let mut scratch = Tensor::zeros(ext.rows, ext.cols);
                            run_one(
                                kernel,
                                &local_refs[..locals.len()],
                                ComputeTask {
                                    tile: local_tile,
                                    npu: task.npu,
                                },
                                &mut scratch,
                            );
                            scratch
                                .view(local_tile.row0, local_tile.col0, tile.rows, tile.cols)
                                .to_tensor()
                        } else {
                            let scratch = full_scratch
                                .get_or_insert_with(|| Tensor::zeros(out_rows, out_cols));
                            run_one(kernel, inputs, *task, scratch);
                            scratch
                                .view(tile.row0, tile.col0, tile.rows, tile.cols)
                                .to_tensor()
                        };
                    // SAFETY: `i` came from the shared cursor, so this
                    // claim is unique and in bounds (`tasks.get` checked).
                    unsafe { writer.write(i, result) };
                }
                locals.clear();
                crate::arena::LOCALS.put(locals);
            });
            for (i, slot) in slots.iter_mut().enumerate() {
                let result = slot.take().expect("claimed task deposited no result");
                let tile = tasks[i].tile;
                for r in 0..tile.rows {
                    let src = result.row(r);
                    output.row_mut(tile.row0 + r)[tile.col0..tile.col0 + tile.cols]
                        .copy_from_slice(src);
                }
            }
        }
        Aggregation::Reduce { op, .. } => {
            // Reduction buffers are tiny: claimants deposit one buffer per
            // *task*, and the fold walks the slots in ascending task order
            // — float accumulation order is then independent of which
            // worker ran which task.
            let shape = kernel.shape();
            pool.scope_fn(n_claims, &|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let mut buf = shape.allocate_output(out_rows, out_cols);
                run_one(kernel, inputs, *task, &mut buf);
                // SAFETY: unique in-bounds claim, as above.
                unsafe { writer.write(i, buf) };
            });
            for slot in slots.iter_mut() {
                let buf = slot.take().expect("claimed task deposited no result");
                for r in 0..output.rows() {
                    let dst = output.row_mut(r);
                    for (d, s) in dst.iter_mut().zip(buf.row(r)) {
                        *d = op.combine(*d, *s);
                    }
                }
            }
        }
    }
    crate::arena::SLOTS.put(slots);
}

fn run_one(kernel: &dyn Kernel, inputs: &[&Tensor], task: ComputeTask, out: &mut Tensor) {
    if task.npu {
        kernel.run_npu(inputs, task.tile, out);
    } else {
        kernel.run_exact(inputs, task.tile, out);
    }
}

/// Computes the exact whole-dataset output in parallel row bands — the
/// fast path for reference outputs and the GPU baseline's real compute.
pub fn compute_exact_parallel(
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    rows: usize,
    cols: usize,
    threads: usize,
) -> Tensor {
    let shape = kernel.shape();
    let mut output = shape.allocate_output(rows, cols);
    let bands = crate::partition::partition_tiles(rows, cols, threads.max(1) * 2, &shape);
    let mut tasks: Vec<ComputeTask> = crate::arena::COMPUTE.take();
    tasks.extend(bands.iter().map(|t| ComputeTask {
        tile: *t,
        npu: false,
    }));
    compute_tasks(kernel, inputs, &tasks, &mut output, threads);
    crate::arena::COMPUTE.put(tasks);
    kernel.finalize(&mut output);
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmt_kernels::Benchmark;

    fn tasks_for(b: Benchmark, n: usize, npu_every: usize) -> (Vec<ComputeTask>, Vec<Tensor>) {
        let shape = b.kernel().shape();
        let tiles = crate::partition::partition_tiles(n, n, 8, &shape);
        let tasks = tiles
            .iter()
            .map(|t| ComputeTask {
                tile: *t,
                npu: npu_every != 0 && t.index % npu_every == 0,
            })
            .collect();
        (tasks, b.generate_inputs(n, n, 3))
    }

    #[test]
    fn parallel_matches_serial_for_tiles() {
        for b in [Benchmark::Sobel, Benchmark::Dct8x8, Benchmark::Fft] {
            let kernel = b.kernel();
            let (tasks, inputs) = tasks_for(b, 128, 3);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let mut serial = kernel.shape().allocate_output(128, 128);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut serial, 1);
            let mut parallel = kernel.shape().allocate_output(128, 128);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut parallel, 4);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{b}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_sum() {
        let b = Benchmark::Histogram;
        let kernel = b.kernel();
        let (tasks, inputs) = tasks_for(b, 128, 2);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut serial = kernel.shape().allocate_output(128, 128);
        compute_tasks(kernel.as_ref(), &refs, &tasks, &mut serial, 1);
        let mut parallel = kernel.shape().allocate_output(128, 128);
        compute_tasks(kernel.as_ref(), &refs, &tasks, &mut parallel, 4);
        // Counts are integral here, so even float folds agree exactly.
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn compute_exact_parallel_matches_single_tile() {
        let b = Benchmark::MeanFilter;
        let kernel = b.kernel();
        let inputs = b.generate_inputs(96, 96, 5);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let fast = compute_exact_parallel(kernel.as_ref(), &refs, 96, 96, 4);
        let mut slow = kernel.shape().allocate_output(96, 96);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 96,
            cols: 96,
        };
        kernel.run_exact(&refs, tile, &mut slow);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn parallel_matches_serial_for_stencils_with_halo() {
        // Multi-input (Hotspot) and halo-2 (SRAD) kernels exercise the
        // localized input extraction; the NPU mix checks that quantization
        // parameters derived from the localized extract match the ones the
        // serial path derives from the full tensors.
        for b in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::MeanFilter] {
            let kernel = b.kernel();
            let (tasks, inputs) = tasks_for(b, 96, 2);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let mut serial = kernel.shape().allocate_output(96, 96);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut serial, 1);
            let mut parallel = kernel.shape().allocate_output(96, 96);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut parallel, 4);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{b}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_global_inputs_gemm() {
        // GEMM reads all of `A`'s row band and all of `B`: `global_inputs`
        // routes it around the localized-extract path onto per-worker
        // full-shape scratch.
        use shmt_kernels::gemm::Gemm;
        let n = 64;
        let a = Tensor::from_fn(n, n, |r, c| (((r * 7 + c * 3) % 11) as f32 - 5.0) * 0.5);
        let b = Tensor::from_fn(n, n, |r, c| (((r * 5 + c * 13) % 9) as f32 - 4.0) * 0.25);
        let refs = [&a, &b];
        let tiles = crate::partition::partition_tiles(n, n, 6, &Gemm.shape());
        let tasks: Vec<ComputeTask> = tiles
            .iter()
            .map(|t| ComputeTask {
                tile: *t,
                npu: t.index % 2 == 0,
            })
            .collect();
        let mut serial = Gemm.shape().allocate_output(n, n);
        compute_tasks(&Gemm, &refs, &tasks, &mut serial, 1);
        let mut parallel = Gemm.shape().allocate_output(n, n);
        compute_tasks(&Gemm, &refs, &tasks, &mut parallel, 4);
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn shmt_threads_env_overrides_default() {
        std::env::set_var("SHMT_THREADS", "3");
        assert_eq!(default_threads(), 3);
        // Zero clamps to one worker rather than deadlocking.
        std::env::set_var("SHMT_THREADS", "0");
        assert_eq!(default_threads(), 1);
        // Garbage falls back to detection.
        std::env::set_var("SHMT_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::remove_var("SHMT_THREADS");
    }

    #[test]
    fn empty_task_list_is_noop() {
        let b = Benchmark::Sobel;
        let kernel = b.kernel();
        let inputs = b.generate_inputs(32, 32, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut out = Tensor::filled(32, 32, 7.0);
        compute_tasks(kernel.as_ref(), &refs, &[], &mut out, 4);
        assert!(out.as_slice().iter().all(|&v| v == 7.0));
    }
}
