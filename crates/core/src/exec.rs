//! Parallel execution of HLOP computations on the host.
//!
//! The SHMT runtime's virtual-time scheduler decides *where* each HLOP
//! runs and *when* it completes on the modeled platform; the actual
//! numerical work (exact fp32 for CPU/GPU HLOPs, the int8 NPU path for
//! Edge TPU HLOPs) is host computation. This module fans that computation
//! out over worker threads — the software analogue of the paper's
//! per-device monitor threads (§3.3.1) — while keeping results bit-exact
//! and deterministic:
//!
//! * Tile-aggregated kernels write disjoint output tiles, so workers
//!   compute into private buffers that are stitched in one pass.
//! * Reduction kernels (Histogram, reduce_*) produce per-HLOP partial
//!   buffers that are folded in task order, so float accumulation order
//!   never changes regardless of which worker ran which task.

use std::sync::atomic::{AtomicUsize, Ordering};

use shmt_kernels::{Aggregation, Kernel};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

/// One unit of host compute: which partition, and through which path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeTask {
    /// The partition to compute.
    pub tile: Tile,
    /// `true` for the Edge TPU's int8 NPU path.
    pub npu: bool,
}

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
}

/// Computes every task and assembles the results into `output`.
///
/// With `threads <= 1` the tasks run inline; otherwise they are spread
/// over worker threads. The assembled output is identical either way.
///
/// # Panics
///
/// Panics if a worker panics (kernel contract violations).
pub fn compute_tasks(
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    tasks: &[ComputeTask],
    output: &mut Tensor,
    threads: usize,
) {
    if tasks.is_empty() {
        return;
    }
    let aggregation = kernel.shape().aggregation;
    if threads <= 1 || tasks.len() == 1 {
        for task in tasks {
            run_one(kernel, inputs, *task, output);
        }
        return;
    }

    let (out_rows, out_cols) = output.shape();
    // Workers claim tasks through a shared atomic cursor — the software
    // analogue of pulling from a shared incoming queue.
    let next = AtomicUsize::new(0);

    let n_workers = threads.min(tasks.len());
    match aggregation {
        Aggregation::Tile => {
            // Workers write into private full-shape buffers; tiles are
            // disjoint, so stitching is order-independent and exact.
            let results: Vec<(Vec<usize>, Tensor)> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n_workers);
                for _ in 0..n_workers {
                    let next = &next;
                    handles.push(scope.spawn(move || {
                        let mut local = Tensor::zeros(out_rows, out_cols);
                        let mut ran = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(i) else { break };
                            run_one(kernel, inputs, *task, &mut local);
                            ran.push(i);
                        }
                        (ran, local)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for (ran, local) in &results {
                for &i in ran {
                    let tile = tasks[i].tile;
                    for r in tile.row0..tile.row0 + tile.rows {
                        let src = &local.row(r)[tile.col0..tile.col0 + tile.cols];
                        output.row_mut(r)[tile.col0..tile.col0 + tile.cols].copy_from_slice(src);
                    }
                }
            }
        }
        Aggregation::Reduce { op, .. } => {
            // Reduction buffers are tiny: workers return one buffer per
            // *task*, and the fold runs in ascending task order — float
            // accumulation order is then independent of which worker ran
            // which task.
            let shape = kernel.shape();
            let mut partials: Vec<(usize, Tensor)> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n_workers);
                for _ in 0..n_workers {
                    let next = &next;
                    handles.push(scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(i) else { break };
                            let mut buf = shape.allocate_output(out_rows, out_cols);
                            run_one(kernel, inputs, *task, &mut buf);
                            mine.push((i, buf));
                        }
                        mine
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            partials.sort_by_key(|(i, _)| *i);
            for (_, buf) in &partials {
                for r in 0..output.rows() {
                    let dst = output.row_mut(r);
                    for (d, s) in dst.iter_mut().zip(buf.row(r)) {
                        *d = op.combine(*d, *s);
                    }
                }
            }
        }
    }
}

fn run_one(kernel: &dyn Kernel, inputs: &[&Tensor], task: ComputeTask, out: &mut Tensor) {
    if task.npu {
        kernel.run_npu(inputs, task.tile, out);
    } else {
        kernel.run_exact(inputs, task.tile, out);
    }
}

/// Computes the exact whole-dataset output in parallel row bands — the
/// fast path for reference outputs and the GPU baseline's real compute.
pub fn compute_exact_parallel(
    kernel: &dyn Kernel,
    inputs: &[&Tensor],
    rows: usize,
    cols: usize,
    threads: usize,
) -> Tensor {
    let shape = kernel.shape();
    let mut output = shape.allocate_output(rows, cols);
    let bands = crate::partition::partition_tiles(rows, cols, threads.max(1) * 2, &shape);
    let tasks: Vec<ComputeTask> = bands
        .iter()
        .map(|t| ComputeTask {
            tile: *t,
            npu: false,
        })
        .collect();
    compute_tasks(kernel, inputs, &tasks, &mut output, threads);
    kernel.finalize(&mut output);
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmt_kernels::Benchmark;

    fn tasks_for(b: Benchmark, n: usize, npu_every: usize) -> (Vec<ComputeTask>, Vec<Tensor>) {
        let shape = b.kernel().shape();
        let tiles = crate::partition::partition_tiles(n, n, 8, &shape);
        let tasks = tiles
            .iter()
            .map(|t| ComputeTask {
                tile: *t,
                npu: npu_every != 0 && t.index % npu_every == 0,
            })
            .collect();
        (tasks, b.generate_inputs(n, n, 3))
    }

    #[test]
    fn parallel_matches_serial_for_tiles() {
        for b in [Benchmark::Sobel, Benchmark::Dct8x8, Benchmark::Fft] {
            let kernel = b.kernel();
            let (tasks, inputs) = tasks_for(b, 128, 3);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let mut serial = kernel.shape().allocate_output(128, 128);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut serial, 1);
            let mut parallel = kernel.shape().allocate_output(128, 128);
            compute_tasks(kernel.as_ref(), &refs, &tasks, &mut parallel, 4);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "{b}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_sum() {
        let b = Benchmark::Histogram;
        let kernel = b.kernel();
        let (tasks, inputs) = tasks_for(b, 128, 2);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut serial = kernel.shape().allocate_output(128, 128);
        compute_tasks(kernel.as_ref(), &refs, &tasks, &mut serial, 1);
        let mut parallel = kernel.shape().allocate_output(128, 128);
        compute_tasks(kernel.as_ref(), &refs, &tasks, &mut parallel, 4);
        // Counts are integral here, so even float folds agree exactly.
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn compute_exact_parallel_matches_single_tile() {
        let b = Benchmark::MeanFilter;
        let kernel = b.kernel();
        let inputs = b.generate_inputs(96, 96, 5);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let fast = compute_exact_parallel(kernel.as_ref(), &refs, 96, 96, 4);
        let mut slow = kernel.shape().allocate_output(96, 96);
        let tile = Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows: 96,
            cols: 96,
        };
        kernel.run_exact(&refs, tile, &mut slow);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn empty_task_list_is_noop() {
        let b = Benchmark::Sobel;
        let kernel = b.kernel();
        let inputs = b.generate_inputs(32, 32, 1);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut out = Tensor::filled(32, 32, 7.0);
        compute_tasks(kernel.as_ref(), &refs, &[], &mut out, 4);
        assert!(out.as_slice().iter().all(|&v| v == 7.0));
    }
}
