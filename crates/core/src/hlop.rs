//! High-level operations — the basic scheduling identity of SHMT
//! (paper §3.2.2).

use hetsim::DeviceKind;
use shmt_tensor::tile::Tile;

use crate::vop::Opcode;

/// Identifier of an HLOP within its VOP (equal to its partition index).
pub type HlopId = usize;

/// One high-level operation: a partition of a VOP's computation sized for a
/// device. HLOPs share their VOP's opcode; unlike the VOP they carry fixed
/// data sizes, and remain hardware-independent so the runtime "can still
/// adjust the task assignment if necessary" (§3.1) — that adjustability is
/// what work stealing exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hlop {
    /// Identifier within the VOP.
    pub id: HlopId,
    /// The shared opcode.
    pub opcode: Opcode,
    /// The output/input partition this HLOP covers.
    pub tile: Tile,
    /// Sampled criticality rank metadata filled in by quality-aware
    /// policies: `None` when the policy did not sample.
    pub criticality: Option<f32>,
}

impl Hlop {
    /// Creates an HLOP over a partition.
    pub fn new(id: HlopId, opcode: Opcode, tile: Tile) -> Self {
        Hlop {
            id,
            opcode,
            tile,
            criticality: None,
        }
    }

    /// Number of elements in the partition.
    pub fn elements(&self) -> usize {
        self.tile.len()
    }
}

/// Where one HLOP ended up executing, with its timing — the completion
/// record the runtime keeps for aggregation and reporting (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HlopRecord {
    /// The HLOP's identifier.
    pub id: HlopId,
    /// Device that executed it.
    pub device: DeviceKind,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual completion time (seconds).
    pub end_s: f64,
    /// Whether the HLOP was stolen from its originally assigned queue.
    pub stolen: bool,
    /// Elements in the HLOP's partition — the work the span covered,
    /// so observers can derive per-device throughput (elements per
    /// busy second) from completion records alone.
    pub elements: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hlop_reports_partition_size() {
        let t = Tile {
            index: 3,
            row0: 0,
            col0: 0,
            rows: 4,
            cols: 8,
        };
        let h = Hlop::new(3, Opcode::Sobel, t);
        assert_eq!(h.elements(), 32);
        assert_eq!(h.id, 3);
        assert!(h.criticality.is_none());
    }
}
