//! Input sampling for criticality estimation (paper §3.5, Algorithms 3–5).
//!
//! QAWS determines a partition's criticality from a small sample of its
//! input rather than scanning it ("faithfully scanning through the input
//! region increases the computation overhead"). Three mechanisms are
//! provided, matching the paper's:
//!
//! * **Striding** (Algorithm 3): every `s`-th element of the flattened
//!   partition.
//! * **Uniform random** (Algorithm 4): `n` uniformly random elements.
//! * **Reduction** (Algorithm 5): a regular grid scan stepping `s` in each
//!   dimension — more samples are touched and the multi-dimensional
//!   bookkeeping costs more per sample, which is why the paper finds
//!   reduction "performs the worst due to the relatively higher sampling
//!   overhead".

use shmt_tensor::rng::Pcg32;
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

/// The sampling mechanism used by a QAWS policy (the `S`/`U`/`R` suffix in
/// the paper's policy names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingMethod {
    /// Algorithm 3: fixed-stride sampling.
    Striding,
    /// Algorithm 4: uniform random sampling.
    UniformRandom,
    /// Algorithm 5: grid-reduction sampling.
    Reduction,
}

impl SamplingMethod {
    /// The policy-name suffix used in the paper's figures.
    pub fn suffix(&self) -> &'static str {
        match self {
            SamplingMethod::Striding => "S",
            SamplingMethod::UniformRandom => "U",
            SamplingMethod::Reduction => "R",
        }
    }

    /// CPU cost per collected sample, in seconds. Reduction visits a dense
    /// grid (see [`sample_partition`]), so its total cost dwarfs the other
    /// methods even at the same per-visit price.
    pub fn cost_per_sample(&self) -> f64 {
        match self {
            SamplingMethod::Striding => 8.0e-9,
            SamplingMethod::UniformRandom => 16.0e-9,
            SamplingMethod::Reduction => 8.0e-9,
        }
    }
}

/// Samples drawn from one partition plus the virtual-time cost of drawing
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    /// The sampled values.
    pub values: Vec<f32>,
    /// Virtual CPU seconds spent sampling.
    pub cost_s: f64,
}

/// Draws samples from the `tile` partition of `input`.
///
/// `rate` is the fraction of elements sampled (the paper sweeps
/// 2⁻²¹ … 2⁻¹⁴ in Fig 9); at least one sample is always drawn. `seed`
/// makes random sampling deterministic per run; the tile index is mixed in
/// so partitions draw distinct sequences.
///
/// # Panics
///
/// Panics if `rate` is not in `(0, 1]` or the tile is out of bounds.
pub fn sample_partition(
    input: &Tensor,
    tile: Tile,
    method: SamplingMethod,
    rate: f64,
    seed: u64,
) -> SampleSet {
    let mut values = Vec::new();
    let cost_s = sample_partition_into(input, tile, method, rate, seed, &mut values);
    SampleSet { values, cost_s }
}

/// Out-param form of [`sample_partition`]: appends the drawn values to
/// `values` (after clearing it) and returns the virtual sampling cost.
/// The planner's warm path reuses one pooled buffer across partitions
/// instead of allocating a fresh `Vec` per draw.
pub fn sample_partition_into(
    input: &Tensor,
    tile: Tile,
    method: SamplingMethod,
    rate: f64,
    seed: u64,
    values: &mut Vec<f32>,
) -> f64 {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "sampling rate must be in (0, 1], got {rate}"
    );
    values.clear();
    let len = tile.len();
    let n = ((len as f64 * rate).round() as usize).clamp(1, len);
    let view = input.view(tile.row0, tile.col0, tile.rows, tile.cols);
    let at_flat = |i: usize| -> f32 {
        let r = i / tile.cols;
        let c = i % tile.cols;
        view.at(r, c)
    };
    match method {
        SamplingMethod::Striding => {
            // Algorithm 3: S[i] = D[i * s]. A stride that divides the row
            // width would pin every sample to one column of the partition;
            // nudging it off the multiple restores 2-D coverage.
            let mut s = (len / n).max(1);
            if s > 1 && s % tile.cols == 0 {
                s += 1;
            }
            // The bump can push tail indices past the end of the
            // partition; wrapping keeps every draw a distinct element
            // instead of collecting the final one repeatedly (which
            // silently biased the criticality std-dev toward it).
            values.extend((0..n).map(|i| at_flat((i * s) % len)));
        }
        SamplingMethod::UniformRandom => {
            // Algorithm 4: S[i] = D[random()].
            let mut rng = Pcg32::seed_from_u64(
                seed ^ (tile.index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            values.extend((0..n).map(|_| at_flat(rng.gen_range(0..len))));
        }
        SamplingMethod::Reduction => {
            // Algorithm 5: nested per-dimension strides with a small, fixed
            // step. Unlike the count-targeted methods above, reduction
            // scans a dense grid of the partition — it is the most
            // accurate criticality estimate and by far the most expensive
            // (the paper: reduction "performs the worst due to the
            // relatively higher sampling overhead" yet its QAWS variants
            // deliver the best quality).
            const STEP: usize = 8;
            let step_r = STEP.min(tile.rows.div_ceil(2)).max(1);
            let step_c = STEP.min(tile.cols.div_ceil(2)).max(1);
            values.reserve((tile.rows / step_r + 1) * (tile.cols / step_c + 1));
            let mut r = 0;
            while r < tile.rows {
                let mut c = 0;
                while c < tile.cols {
                    values.push(view.at(r, c));
                    c += step_c;
                }
                r += step_r;
            }
        }
    }
    values.len() as f64 * method.cost_per_sample()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(rows: usize, cols: usize) -> Tile {
        Tile {
            index: 0,
            row0: 0,
            col0: 0,
            rows,
            cols,
        }
    }

    #[test]
    fn striding_draws_requested_count() {
        let t = Tensor::from_fn(32, 32, |r, c| (r * 32 + c) as f32);
        let s = sample_partition(&t, tile(32, 32), SamplingMethod::Striding, 1.0 / 64.0, 1);
        assert_eq!(s.values.len(), 16);
        // Stride of 64 would pin every sample to column 0 of the 32-wide
        // tile; the column-drift correction bumps it to 65.
        assert_eq!(s.values[0], 0.0);
        assert_eq!(s.values[1], 65.0);

        // Overflow regime: an 8-wide tile bumps the stride from 8 to 9,
        // so the tail indices (57*9 = 513, …) pass the 512-element end of
        // the partition. They must wrap to fresh elements, not pile up on
        // the last one.
        let t = Tensor::from_fn(64, 8, |r, c| (r * 8 + c) as f32);
        let s = sample_partition(&t, tile(64, 8), SamplingMethod::Striding, 1.0 / 8.0, 1);
        assert_eq!(s.values.len(), 64);
        let distinct: std::collections::BTreeSet<i64> =
            s.values.iter().map(|&v| v as i64).collect();
        assert_eq!(
            distinct.len(),
            64,
            "every overflow draw is a distinct element"
        );
        let last = (64 * 8 - 1) as f32;
        assert_eq!(
            s.values.iter().filter(|&&v| v == last).count(),
            0,
            "tail draws no longer clamp to the final element"
        );
    }

    #[test]
    fn striding_covers_multiple_columns() {
        // Regression: strides that divide the tile width must not sample a
        // single column.
        let t = Tensor::from_fn(64, 64, |_, c| c as f32);
        let s = sample_partition(&t, tile(64, 64), SamplingMethod::Striding, 8.0 / 4096.0, 1);
        let distinct: std::collections::BTreeSet<i64> =
            s.values.iter().map(|&v| v as i64).collect();
        assert!(distinct.len() > 1, "samples all came from one column");
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        let t = Tensor::from_fn(16, 16, |r, c| (r * 16 + c) as f32);
        let a = sample_partition(&t, tile(16, 16), SamplingMethod::UniformRandom, 0.1, 7);
        let b = sample_partition(&t, tile(16, 16), SamplingMethod::UniformRandom, 0.1, 7);
        let c = sample_partition(&t, tile(16, 16), SamplingMethod::UniformRandom, 0.1, 8);
        assert_eq!(a.values, b.values);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn reduction_scans_a_dense_grid() {
        let t = Tensor::from_fn(16, 16, |r, c| (r * 16 + c) as f32);
        let s = sample_partition(&t, tile(16, 16), SamplingMethod::Reduction, 16.0 / 256.0, 1);
        // Step-8 grid over 16x16 = 4 visits regardless of the rate.
        assert_eq!(s.values.len(), 4);
        assert_eq!(s.values[0], 0.0);
        assert_eq!(s.values[1], 8.0);
    }

    #[test]
    fn reduction_total_cost_exceeds_striding() {
        let t = Tensor::from_fn(64, 64, |r, c| (r + c) as f32);
        let red = sample_partition(&t, tile(64, 64), SamplingMethod::Reduction, 0.001, 1);
        let stri = sample_partition(&t, tile(64, 64), SamplingMethod::Striding, 0.001, 1);
        assert!(
            red.cost_s > 3.0 * stri.cost_s,
            "{} vs {}",
            red.cost_s,
            stri.cost_s
        );
    }

    #[test]
    fn minimum_one_sample() {
        let t = Tensor::from_fn(64, 64, |_, _| 1.0);
        for m in [
            SamplingMethod::Striding,
            SamplingMethod::UniformRandom,
            SamplingMethod::Reduction,
        ] {
            let s = sample_partition(&t, tile(64, 64), m, 1e-9, 1);
            assert!(!s.values.is_empty(), "{m:?}");
        }
    }

    #[test]
    fn random_costs_more_per_sample_than_striding() {
        assert!(
            SamplingMethod::UniformRandom.cost_per_sample()
                > SamplingMethod::Striding.cost_per_sample()
        );
    }

    #[test]
    fn samples_come_from_the_tile() {
        let t = Tensor::from_fn(8, 8, |r, c| if r >= 4 { 100.0 + (c as f32) } else { 0.0 });
        let bottom = Tile {
            index: 1,
            row0: 4,
            col0: 0,
            rows: 4,
            cols: 8,
        };
        for m in [
            SamplingMethod::Striding,
            SamplingMethod::UniformRandom,
            SamplingMethod::Reduction,
        ] {
            let s = sample_partition(&t, bottom, m, 0.5, 3);
            assert!(
                s.values.iter().all(|&v| v >= 100.0),
                "{m:?}: {:?}",
                s.values
            );
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        let t = Tensor::zeros(4, 4);
        sample_partition(&t, tile(4, 4), SamplingMethod::Striding, 0.0, 1);
    }
}
