//! Virtual operations — the hardware-independent command set of the SHMT
//! virtual device (paper §3.2.1, Table 1).

use std::fmt;

use shmt_kernels::primitives::{BinaryOp, UnaryOp};
use shmt_kernels::{Benchmark, Kernel, KernelShape};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;

use crate::error::{Result, ShmtError};

/// The parallelization model a VOP admits (paper §3.2.1: "either an
/// element-wise vector processing model or a tile-wise matrix processing
/// model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelModel {
    /// Element-wise vector processing.
    Vector,
    /// Tile-wise matrix processing.
    Tiling,
}

/// The VOP opcodes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    // Vector model.
    Add,
    Log,
    Max,
    Min,
    Multiply,
    ParabolicPde,
    ReduceAverage,
    ReduceHist256,
    ReduceMax,
    ReduceMin,
    ReduceSum,
    Relu,
    Rsqrt,
    Sqrt,
    Sub,
    Tanh,
    Conv,
    // Tiling model.
    Dct8x8,
    Fdwt97,
    Fft,
    Gemm,
    Laplacian,
    MeanFilter,
    Sobel,
    Srad,
    Stencil,
    Blackscholes,
}

impl Opcode {
    /// The parallelization model of the opcode (Table 1's two columns).
    pub fn parallel_model(&self) -> ParallelModel {
        match self {
            Opcode::Add
            | Opcode::Log
            | Opcode::Max
            | Opcode::Min
            | Opcode::Multiply
            | Opcode::ParabolicPde
            | Opcode::ReduceAverage
            | Opcode::ReduceHist256
            | Opcode::ReduceMax
            | Opcode::ReduceMin
            | Opcode::ReduceSum
            | Opcode::Relu
            | Opcode::Rsqrt
            | Opcode::Sqrt
            | Opcode::Sub
            | Opcode::Tanh
            | Opcode::Conv
            | Opcode::Blackscholes => ParallelModel::Vector,
            Opcode::Dct8x8
            | Opcode::Fdwt97
            | Opcode::Fft
            | Opcode::Gemm
            | Opcode::Laplacian
            | Opcode::MeanFilter
            | Opcode::Sobel
            | Opcode::Srad
            | Opcode::Stencil => ParallelModel::Tiling,
        }
    }

    /// The opcode implementing each benchmark application.
    pub fn from_benchmark(b: Benchmark) -> Opcode {
        match b {
            Benchmark::Blackscholes => Opcode::Blackscholes,
            Benchmark::Dct8x8 => Opcode::Dct8x8,
            Benchmark::Dwt => Opcode::Fdwt97,
            Benchmark::Fft => Opcode::Fft,
            Benchmark::Histogram => Opcode::ReduceHist256,
            Benchmark::Hotspot => Opcode::ParabolicPde,
            Benchmark::Laplacian => Opcode::Laplacian,
            Benchmark::MeanFilter => Opcode::MeanFilter,
            Benchmark::Sobel => Opcode::Sobel,
            Benchmark::Srad => Opcode::Srad,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A virtual operation: an opcode, its kernel implementation, and the input
/// tensors it operates on. VOPs make no assumption about data sizes; the
/// runtime partitions them into device-sized HLOPs (§3.2.2).
pub struct Vop {
    opcode: Opcode,
    kernel: Box<dyn Kernel>,
    inputs: Vec<Tensor>,
    criticality_hint: f64,
}

impl fmt::Debug for Vop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vop")
            .field("opcode", &self.opcode)
            .field("kernel", &self.kernel.name())
            .field("inputs", &self.inputs.len())
            .field("criticality_hint", &self.criticality_hint)
            .finish()
    }
}

impl Vop {
    /// Creates a VOP from an opcode, kernel, and inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ShmtError::InvalidVop`] if the input count does not match
    /// the kernel's arity or the inputs' shapes disagree.
    pub fn new(opcode: Opcode, kernel: Box<dyn Kernel>, inputs: Vec<Tensor>) -> Result<Self> {
        let shape = kernel.shape();
        if inputs.len() != shape.num_inputs {
            return Err(ShmtError::InvalidVop(format!(
                "kernel {} expects {} inputs, got {}",
                kernel.name(),
                shape.num_inputs,
                inputs.len()
            )));
        }
        if inputs.is_empty() {
            return Err(ShmtError::InvalidVop("VOP needs at least one input".into()));
        }
        let first = inputs[0].shape();
        if inputs.iter().any(|t| t.shape() != first) {
            return Err(ShmtError::InvalidVop("input shapes must agree".into()));
        }
        Ok(Vop {
            opcode,
            kernel,
            inputs,
            criticality_hint: 0.2,
        })
    }

    /// Creates the VOP for a benchmark application on generated inputs,
    /// carrying the benchmark's application-dependent criticality hint
    /// from the calibration tables.
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    pub fn from_benchmark(benchmark: Benchmark, inputs: Vec<Tensor>) -> Result<Self> {
        let hint = crate::calibration::bench_profile(benchmark).criticality_hint;
        Ok(Vop::new(
            Opcode::from_benchmark(benchmark),
            benchmark.kernel(),
            inputs,
        )?
        .with_criticality_hint(hint))
    }

    /// Convenience: a unary element-wise VOP (Table 1's vector ops).
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    pub fn unary(op: UnaryOp, input: Tensor) -> Result<Self> {
        let opcode = match op {
            UnaryOp::Log => Opcode::Log,
            UnaryOp::Relu => Opcode::Relu,
            UnaryOp::Rsqrt => Opcode::Rsqrt,
            UnaryOp::Sqrt => Opcode::Sqrt,
            UnaryOp::Tanh => Opcode::Tanh,
        };
        Vop::new(opcode, Box::new(UnaryKernel(op)), vec![input])
    }

    /// Convenience: a whole-dataset reduction VOP (`reduce_sum`,
    /// `reduce_average`, `reduce_max`, `reduce_min`).
    ///
    /// The output is the reduction buffer: `1x1` for sum/max/min,
    /// `1x2` (`[average, count]`) for average.
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    pub fn reduce(opcode: Opcode, input: Tensor) -> Result<Self> {
        use shmt_kernels::reductions::{ReduceAverage, ReduceMax, ReduceMin, ReduceSum};
        let kernel: Box<dyn Kernel> = match opcode {
            Opcode::ReduceSum => Box::new(ReduceSum),
            Opcode::ReduceAverage => Box::new(ReduceAverage),
            Opcode::ReduceMax => Box::new(ReduceMax),
            Opcode::ReduceMin => Box::new(ReduceMin),
            other => {
                return Err(ShmtError::InvalidVop(format!(
                    "`{other}` is not a reduction opcode"
                )))
            }
        };
        Vop::new(opcode, kernel, vec![input])
    }

    /// Convenience: a GEMM VOP over two equal-shaped square matrices
    /// (the paper's Fig 4 walkthrough decomposes exactly this operation).
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    pub fn gemm(a: Tensor, b: Tensor) -> Result<Self> {
        Vop::new(Opcode::Gemm, Box::new(shmt_kernels::gemm::Gemm), vec![a, b])
    }

    /// Convenience: a same-size 2-D convolution VOP with a fixed filter.
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    ///
    /// # Panics
    ///
    /// Panics if the filter has even dimensions.
    pub fn conv2d(input: Tensor, filter: Tensor) -> Result<Self> {
        Vop::new(
            Opcode::Conv,
            Box::new(shmt_kernels::conv::Conv2d::new(filter)),
            vec![input],
        )
    }

    /// Convenience: a binary element-wise VOP.
    ///
    /// # Errors
    ///
    /// Propagates [`Vop::new`]'s validation errors.
    pub fn binary(op: BinaryOp, a: Tensor, b: Tensor) -> Result<Self> {
        let opcode = match op {
            BinaryOp::Add => Opcode::Add,
            BinaryOp::Sub => Opcode::Sub,
            BinaryOp::Multiply => Opcode::Multiply,
            BinaryOp::Max => Opcode::Max,
            BinaryOp::Min => Opcode::Min,
        };
        Vop::new(opcode, Box::new(BinaryKernel(op)), vec![a, b])
    }

    /// The VOP's opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The kernel implementation backing the VOP.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// The input tensors.
    pub fn inputs(&self) -> &[Tensor] {
        &self.inputs
    }

    /// Shape of the space the runtime partitions: the output space for tile
    /// aggregation, the input space for reductions.
    pub fn partition_space(&self) -> (usize, usize) {
        self.inputs[0].shape()
    }

    /// The application-provided fraction of partitions that are generally
    /// critical (the Top-K threshold of §3.5, provided "along with each
    /// VOP" by the programmer or library composer).
    pub fn criticality_hint(&self) -> f64 {
        self.criticality_hint
    }

    /// Overrides the Top-K criticality hint (a fraction in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn with_criticality_hint(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "hint must be a fraction");
        self.criticality_hint = fraction;
        self
    }
}

/// Adapter exposing a unary element-wise primitive as a [`Kernel`].
#[derive(Debug, Clone, Copy)]
struct UnaryKernel(UnaryOp);

impl Kernel for UnaryKernel {
    fn name(&self) -> &'static str {
        match self.0 {
            UnaryOp::Log => "log",
            UnaryOp::Relu => "relu",
            UnaryOp::Rsqrt => "rsqrt",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Tanh => "tanh",
        }
    }

    fn shape(&self) -> KernelShape {
        KernelShape::elementwise()
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        for r in tile.row0..tile.row0 + tile.rows {
            let src = &input.row(r)[tile.col0..tile.col0 + tile.cols];
            let dst = &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = self.0.apply(s);
            }
        }
    }

    fn work_per_element(&self) -> f64 {
        4.0
    }
}

/// Adapter exposing a binary element-wise primitive as a [`Kernel`].
#[derive(Debug, Clone, Copy)]
struct BinaryKernel(BinaryOp);

impl Kernel for BinaryKernel {
    fn name(&self) -> &'static str {
        match self.0 {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Multiply => "multiply",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }

    fn shape(&self) -> KernelShape {
        KernelShape {
            num_inputs: 2,
            ..KernelShape::elementwise()
        }
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let (a, b) = (inputs[0], inputs[1]);
        for r in tile.row0..tile.row0 + tile.rows {
            let sa = &a.row(r)[tile.col0..tile.col0 + tile.cols];
            let sb = &b.row(r)[tile.col0..tile.col0 + tile.cols];
            let dst = &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols];
            for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                *d = self.0.apply(x, y);
            }
        }
    }

    fn work_per_element(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_has_a_model() {
        // Spot-check both columns of Table 1.
        assert_eq!(Opcode::Add.parallel_model(), ParallelModel::Vector);
        assert_eq!(
            Opcode::ReduceHist256.parallel_model(),
            ParallelModel::Vector
        );
        assert_eq!(Opcode::Gemm.parallel_model(), ParallelModel::Tiling);
        assert_eq!(Opcode::Srad.parallel_model(), ParallelModel::Tiling);
    }

    #[test]
    fn vop_validates_arity() {
        let k = Benchmark::Hotspot.kernel();
        let err = Vop::new(Opcode::ParabolicPde, k, vec![Tensor::zeros(4, 4)]).unwrap_err();
        assert!(matches!(err, ShmtError::InvalidVop(_)));
    }

    #[test]
    fn vop_validates_shapes() {
        let k = Benchmark::Hotspot.kernel();
        let err = Vop::new(
            Opcode::ParabolicPde,
            k,
            vec![Tensor::zeros(4, 4), Tensor::zeros(4, 8)],
        )
        .unwrap_err();
        assert!(matches!(err, ShmtError::InvalidVop(_)));
    }

    #[test]
    fn unary_vop_applies_op() {
        let input = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 4.0, 9.0]).unwrap();
        let vop = Vop::unary(UnaryOp::Relu, input).unwrap();
        let mut out = Tensor::zeros(1, 4);
        let refs: Vec<_> = vop.inputs().iter().collect();
        vop.kernel().run_exact(
            &refs,
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 1,
                cols: 4,
            },
            &mut out,
        );
        assert_eq!(out.as_slice(), &[0.0, 0.0, 4.0, 9.0]);
    }

    #[test]
    fn binary_vop_applies_op() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4.0, 1.0, 3.0]).unwrap();
        let vop = Vop::binary(BinaryOp::Max, a, b).unwrap();
        let mut out = Tensor::zeros(1, 3);
        let refs: Vec<_> = vop.inputs().iter().collect();
        vop.kernel().run_exact(
            &refs,
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 1,
                cols: 3,
            },
            &mut out,
        );
        assert_eq!(out.as_slice(), &[4.0, 2.0, 3.0]);
    }

    #[test]
    fn gemm_vop_multiplies() {
        let a = Tensor::from_fn(4, 4, |r, c| if r == c { 2.0 } else { 0.0 });
        let b = Tensor::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let vop = Vop::gemm(a, b.clone()).unwrap();
        let mut out = Tensor::zeros(4, 4);
        let refs: Vec<_> = vop.inputs().iter().collect();
        vop.kernel().run_exact(
            &refs,
            Tile {
                index: 0,
                row0: 0,
                col0: 0,
                rows: 4,
                cols: 4,
            },
            &mut out,
        );
        for (o, e) in out.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(*o, 2.0 * e);
        }
        assert_eq!(vop.opcode(), Opcode::Gemm);
    }

    #[test]
    fn conv_vop_runs_end_to_end() {
        let input = Tensor::filled(32, 32, 5.0);
        let vop = Vop::conv2d(input, Tensor::from_vec(1, 1, vec![3.0]).unwrap()).unwrap();
        let report = crate::ShmtRuntime::new(
            crate::Platform::generic(),
            crate::RuntimeConfig::new(crate::Policy::WorkStealing),
        )
        .execute(&vop)
        .unwrap();
        assert!(report
            .output
            .as_slice()
            .iter()
            .all(|&v| (v - 15.0).abs() < 0.2));
    }

    #[test]
    fn criticality_hint_is_clamped_by_validation() {
        let vop = Vop::from_benchmark(
            Benchmark::Sobel,
            Benchmark::Sobel.generate_inputs(16, 16, 1),
        )
        .unwrap()
        .with_criticality_hint(0.5);
        assert_eq!(vop.criticality_hint(), 0.5);
    }
}
