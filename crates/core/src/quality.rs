//! Result-quality metrics (paper §5.3): Mean Absolute Percentage Error and
//! the Structural Similarity Index Measure.

use shmt_tensor::Tensor;

/// Mean Absolute Percentage Error between a reference and an approximation,
/// as a fraction (0.05 = 5%).
///
/// MAPE's known weakness on near-zero references (the paper discusses it
/// for the edge-detection outputs, citing Kim & Kim) is handled by flooring
/// each denominator at a small fraction of the reference's mean magnitude;
/// near-zero reference values still contribute large relative errors — as
/// they do in the paper — without dividing by zero. An *all-zero*
/// reference (a blank edge map) has no magnitude of its own to scale by,
/// so the floor falls back to the approximation's mean magnitude, and to
/// an absolute epsilon when both sides are blank — tiny absolute noise
/// then reads as an error on the order of 1, not 10¹².
///
/// # Panics
///
/// Panics if the shapes differ.
///
/// # Examples
///
/// ```
/// use shmt::quality::mape;
/// use shmt_tensor::Tensor;
///
/// let reference = Tensor::filled(2, 2, 10.0);
/// let approx = Tensor::filled(2, 2, 10.5);
/// assert!((mape(&reference, &approx) - 0.05).abs() < 1e-6);
/// ```
pub fn mape(reference: &Tensor, approx: &Tensor) -> f64 {
    assert_eq!(
        reference.shape(),
        approx.shape(),
        "MAPE requires equal shapes"
    );
    let mean_abs = |t: &Tensor| -> f64 {
        t.as_slice().iter().map(|v| v.abs() as f64).sum::<f64>() / t.len() as f64
    };
    let ref_mean = mean_abs(reference);
    let floor = if ref_mean > 0.0 {
        (ref_mean * 1e-2).max(1e-12)
    } else {
        mean_abs(approx).max(1e-6)
    };
    let mut acc = 0.0f64;
    for (&r, &a) in reference.as_slice().iter().zip(approx.as_slice()) {
        let denom = (r.abs() as f64).max(floor);
        acc += ((r - a).abs() as f64) / denom;
    }
    acc / reference.len() as f64
}

/// Mean SSIM between a reference and an approximation over 8x8 windows,
/// with the standard constants `C1 = (0.01 L)^2`, `C2 = (0.03 L)^2`, where
/// `L` is the reference's dynamic range.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn ssim(reference: &Tensor, approx: &Tensor) -> f64 {
    assert_eq!(
        reference.shape(),
        approx.shape(),
        "SSIM requires equal shapes"
    );
    let (rows, cols) = reference.shape();
    let (lo, hi) = reference.min_max();
    let l = (hi - lo).max(1e-6) as f64;
    let c1 = (0.01 * l).powi(2);
    let c2 = (0.03 * l).powi(2);
    const W: usize = 8;
    let mut total = 0.0f64;
    let mut windows = 0usize;
    let mut r0 = 0;
    while r0 < rows {
        let wr = W.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let wc = W.min(cols - c0);
            let n = (wr * wc) as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for r in r0..r0 + wr {
                let xr = &reference.row(r)[c0..c0 + wc];
                let yr = &approx.row(r)[c0..c0 + wc];
                for (&x, &y) in xr.iter().zip(yr) {
                    let (x, y) = (x as f64, y as f64);
                    sx += x;
                    sy += y;
                    sxx += x * x;
                    syy += y * y;
                    sxy += x * y;
                }
            }
            let mx = sx / n;
            let my = sy / n;
            let vx = (sxx / n - mx * mx).max(0.0);
            let vy = (syy / n - my * my).max(0.0);
            let cov = sxy / n - mx * my;
            let s = ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                / ((mx * mx + my * my + c1) * (vx + vy + c2));
            total += s;
            windows += 1;
            c0 += W;
        }
        r0 += W;
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_zero_for_identical() {
        let t = Tensor::from_fn(8, 8, |r, c| (r * 8 + c) as f32 + 1.0);
        assert_eq!(mape(&t, &t.clone()), 0.0);
    }

    #[test]
    fn mape_scales_with_relative_error() {
        let r = Tensor::filled(4, 4, 100.0);
        let a = Tensor::filled(4, 4, 90.0);
        assert!((mape(&r, &a) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn mape_all_zero_reference_stays_finite() {
        // Regression: an all-zero edge map with tiny uniform noise used to
        // hit the 1e-12 absolute floor and report a MAPE around 5e11. The
        // approximation's own magnitude now sets the scale, so uniform
        // noise of 0.5 over a blank reference reads as an error of 1.
        let reference = Tensor::zeros(8, 8);
        let noisy = Tensor::filled(8, 8, 0.5);
        let e = mape(&reference, &noisy);
        assert!((e - 1.0).abs() < 1e-9, "blank-reference mape = {e}");
        // Two blank maps agree exactly.
        assert_eq!(mape(&reference, &Tensor::zeros(8, 8)), 0.0);
    }

    #[test]
    fn mape_near_zero_references_inflate_error() {
        // An edge map: mostly zeros, a few strong edges. Small absolute
        // noise on the zeros dominates the MAPE, as the paper observes.
        let reference = Tensor::from_fn(4, 4, |r, c| if r == 0 && c == 0 { 100.0 } else { 0.0 });
        let approx = reference.map(|v| v + 0.5);
        assert!(mape(&reference, &approx) > 0.4);
    }

    #[test]
    fn ssim_is_one_for_identical() {
        let t = Tensor::from_fn(16, 16, |r, c| ((r * 31 + c * 7) % 23) as f32);
        assert!((ssim(&t, &t.clone()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let r = Tensor::from_fn(32, 32, |i, j| ((i * 13 + j * 29) % 61) as f32);
        let slight = r.map(|v| v + 0.5);
        let heavy = r.map(|v| v * 0.3 + 20.0 * ((v as i32 % 7) as f32));
        let s_slight = ssim(&r, &slight);
        let s_heavy = ssim(&r, &heavy);
        assert!(s_slight > 0.99, "slight noise keeps SSIM high: {s_slight}");
        assert!(s_heavy < s_slight, "{s_heavy} vs {s_slight}");
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn mape_rejects_shape_mismatch() {
        mape(&Tensor::zeros(2, 2), &Tensor::zeros(2, 3));
    }
}
