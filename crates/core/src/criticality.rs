//! Partition criticality metrics (paper §3.5).
//!
//! SHMT borrows the input-evaluation half of IRA's canary technique: the
//! criticality of a data partition is estimated from its sampled **value
//! range** and **standard deviation** — "critical regions \[are\] data
//! partitions with the widest value distributions". Partitions with wide
//! distributions lose the most absolute precision through the Edge TPU's
//! int8 grid, so they are the ones QAWS keeps on exact hardware.

/// Which sampled statistic defines criticality. The paper uses range and
/// standard deviation together; the separated variants exist for the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CriticalityMetric {
    /// Sampled max - min.
    Range,
    /// Sampled standard deviation.
    StdDev,
    /// `range + 2 * stddev` (the default, combining both signals).
    #[default]
    Combined,
}

/// Summary statistics of one partition's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalityStats {
    /// Sampled minimum.
    pub min: f32,
    /// Sampled maximum.
    pub max: f32,
    /// Sampled standard deviation.
    pub stddev: f32,
}

impl CriticalityStats {
    /// Computes statistics from a sample set.
    ///
    /// Empty or all-NaN samples yield all-zero statistics (a partition we
    /// know nothing about is treated as non-critical).
    pub fn from_samples(samples: &[f32]) -> Self {
        // Streamed over the raw slice instead of collecting the finite
        // values first: visits the same values in the same order as the
        // old filtered copy, so every fold is bit-identical — minus one
        // heap allocation per scored partition.
        let finite = || samples.iter().copied().filter(|v| v.is_finite());
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for v in finite() {
            if count == 0 {
                min = v;
                max = v;
            }
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
            count += 1;
        }
        if count == 0 {
            return CriticalityStats {
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = sum / count as f64;
        let var = finite().map(|v| (v as f64 - mean).powi(2)).sum::<f64>() / count as f64;
        CriticalityStats {
            min,
            max,
            stddev: var.sqrt() as f32,
        }
    }

    /// Sampled value range.
    pub fn range(&self) -> f32 {
        self.max - self.min
    }

    /// The scalar criticality score under a metric.
    pub fn score(&self, metric: CriticalityMetric) -> f32 {
        match metric {
            CriticalityMetric::Range => self.range(),
            CriticalityMetric::StdDev => self.stddev,
            CriticalityMetric::Combined => self.range() + 2.0 * self.stddev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computed() {
        let s = CriticalityStats::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.range(), 6.0);
        // Population stddev of {1,3,5,7} = sqrt(5).
        assert!((s.stddev - 5.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn wide_distribution_scores_higher() {
        let narrow = CriticalityStats::from_samples(&[10.0, 10.1, 10.2, 9.9]);
        let wide = CriticalityStats::from_samples(&[0.0, 50.0, -50.0, 10.0]);
        for m in [
            CriticalityMetric::Range,
            CriticalityMetric::StdDev,
            CriticalityMetric::Combined,
        ] {
            assert!(wide.score(m) > narrow.score(m), "{m:?}");
        }
    }

    #[test]
    fn degenerate_samples_are_noncritical() {
        let s = CriticalityStats::from_samples(&[]);
        assert_eq!(s.score(CriticalityMetric::Combined), 0.0);
        let nan = CriticalityStats::from_samples(&[f32::NAN, f32::INFINITY]);
        assert_eq!(nan.score(CriticalityMetric::Combined), 0.0);
    }

    #[test]
    fn constant_samples_have_zero_score() {
        let s = CriticalityStats::from_samples(&[4.0; 16]);
        assert_eq!(s.score(CriticalityMetric::Combined), 0.0);
    }
}
