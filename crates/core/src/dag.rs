//! Multi-VOP dataflow graphs with inter-stage data residency.
//!
//! [`crate::pipeline::Program`] chains stages linearly and re-stages every
//! intermediate through host memory. [`VopDag`] generalizes the chain into
//! a DAG of VOP stages (nodes = VOP stages, edges = tensor dependencies,
//! cycle/arity validation at build time) and composes the stages with
//! *mixed-mode awareness*:
//!
//! * **Residency** — an HLOP's output stays resident on its producing
//!   device when the consuming stage reads it there. The CPU and GPU share
//!   host memory (zero-copy), so exact-class edges never round-trip
//!   through framework staging buffers; an Edge-TPU tile consumed by an
//!   Edge-TPU tile of the next stage stays in device memory as int8 and
//!   skips both the producer's restoration and the consumer's cast+PCIe
//!   staging. The accuracy class is respected: int8 data is only ever left
//!   in place for an approximate-class consumer — any exact-device
//!   consumer receives restored fp32, which is exactly the cross-device
//!   edge charge.
//! * **Fusion** — adjacent element-wise stages (a unary node whose single
//!   consumer is another unary node) collapse into one VOP, eliminating
//!   the intermediate tensor entirely.
//! * **Edge charging** — only real cross-device edges are charged: the
//!   staged (non-resident) portion of every Edge-TPU tile pays its
//!   fp32↔int8 cast on the TPU timeline via [`DeviceTimeline::occupy`] and
//!   its PCIe bytes on the simulated [`Interconnect`]; resident portions
//!   charge nothing.
//!
//! # Cost model
//!
//! Every stage is executed **once** through the ordinary
//! [`crate::runtime::ShmtRuntime`] — placement, stealing, and the computed
//! values are decided there, so the resident and naive compositions below
//! are bit-identical by construction and a linear DAG reproduces
//! [`crate::pipeline::Program`]'s per-stage reports exactly. The DAG layer
//! then *re-times* each stage's schedule twice with placement pinned:
//!
//! * **naive** — conventional framework composition: every Edge-TPU tile
//!   stages in and restores out in full, and each inter-stage edge
//!   additionally round-trips the whole tensor through a host staging
//!   buffer (one bus transfer down, one back up) behind a global barrier.
//! * **resident** — the replay skips the cast/PCIe charges for tile
//!   regions that stay in TPU memory, and inter-stage edges cost nothing
//!   beyond the dependency itself (shared host memory is zero-copy).
//!
//! Both compositions use the same replay model and the same pinned
//! schedule, and residency only ever removes non-negative charges, so the
//! resident makespan never exceeds the naive one. Numerically the outputs
//! are identical in both modes: residency is a *cost-model* statement
//! about where bytes live, while the simulated int8 path always models the
//! same quantize→compute→dequantize computation. Guarded stages (per-node
//! quality budgets) are not re-timed — their pass-1 makespan is used for
//! both compositions, so the guard's charge is never flattered.

use hetsim::{DeviceKind, DeviceTimeline, Interconnect, SimTime};
use shmt_kernels::primitives::{BinaryOp, UnaryOp};
use shmt_kernels::{Aggregation, Benchmark, Kernel, KernelShape};
use shmt_tensor::tile::Tile;
use shmt_tensor::Tensor;
use shmt_trace::{NullSink, TraceSink};

use crate::error::{Result, ShmtError};
use crate::guard::GuardConfig;
use crate::partition::partition_vop;
use crate::pipeline::{sanitize, Stage};
use crate::platform::Platform;
use crate::report::RunReport;
use crate::runtime::{RuntimeConfig, ShmtRuntime};
use crate::sched::{CPU, GPU, TPU};
use crate::vop::{Opcode, Vop};

/// Identifier of a node within its DAG (its index in the node list).
pub type NodeId = usize;

/// The operation a DAG node applies to its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeOp {
    /// A benchmark kernel stage; auxiliary inputs beyond the supplied
    /// dependencies are generated from `aux_seed` (exactly like
    /// [`crate::pipeline::Program`] stages).
    Benchmark {
        /// The kernel this stage applies.
        benchmark: Benchmark,
        /// Seed for generated auxiliary inputs.
        aux_seed: u64,
    },
    /// A unary element-wise stage (fusable).
    Unary(UnaryOp),
    /// A binary element-wise stage over two dependencies.
    Binary(BinaryOp),
}

/// One node of a [`VopDag`]: an operation plus the node ids whose outputs
/// feed its kernel inputs, in slot order. A node with no dependencies is a
/// root and reads the DAG's external input tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// The operation.
    pub op: NodeOp,
    /// Producing nodes, in kernel-input slot order.
    pub deps: Vec<NodeId>,
    /// Per-stage quality budget: when set, the stage runs under an
    /// enforcing [`GuardConfig`] with this MAPE budget.
    pub max_mape: Option<f64>,
}

impl DagNode {
    /// A benchmark stage over the given dependencies (empty = root).
    pub fn benchmark(benchmark: Benchmark, aux_seed: u64, deps: Vec<NodeId>) -> Self {
        DagNode {
            op: NodeOp::Benchmark {
                benchmark,
                aux_seed,
            },
            deps,
            max_mape: None,
        }
    }

    /// A unary element-wise stage over one producer.
    pub fn unary(op: UnaryOp, dep: NodeId) -> Self {
        DagNode {
            op: NodeOp::Unary(op),
            deps: vec![dep],
            max_mape: None,
        }
    }

    /// A binary element-wise stage over two producers.
    pub fn binary(op: BinaryOp, a: NodeId, b: NodeId) -> Self {
        DagNode {
            op: NodeOp::Binary(op),
            deps: vec![a, b],
            max_mape: None,
        }
    }

    /// Attaches a per-stage quality budget (enforced by the output guard).
    #[must_use]
    pub fn with_quality_budget(mut self, max_mape: f64) -> Self {
        self.max_mape = Some(max_mape);
        self
    }
}

/// A validated DAG of VOP stages.
#[derive(Debug, Clone, PartialEq)]
pub struct VopDag {
    nodes: Vec<DagNode>,
    /// Node ids in a deterministic topological order (Kahn, smallest id
    /// first among ready nodes).
    topo: Vec<NodeId>,
    /// The unique sink (the DAG's output node).
    sink: NodeId,
}

impl VopDag {
    /// Validates and builds a DAG.
    ///
    /// # Errors
    ///
    /// Returns [`ShmtError::InvalidConfig`] when the node list is empty,
    /// a dependency index is out of range or self-referential, a node's
    /// dependency count violates its kernel's arity (unary: at most one;
    /// binary: exactly two; benchmark: at most the kernel arity), the
    /// graph has a cycle, or there is not exactly one sink.
    pub fn new(nodes: Vec<DagNode>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(ShmtError::InvalidConfig(
                "DAG needs at least one node".into(),
            ));
        }
        for (i, n) in nodes.iter().enumerate() {
            for &d in &n.deps {
                if d >= nodes.len() {
                    return Err(ShmtError::InvalidConfig(format!(
                        "node {i} depends on missing node {d}"
                    )));
                }
                if d == i {
                    return Err(ShmtError::InvalidConfig(format!(
                        "node {i} depends on itself"
                    )));
                }
            }
            let (min, max) = match n.op {
                NodeOp::Unary(_) => (0, 1),
                NodeOp::Binary(_) => (2, 2),
                NodeOp::Benchmark { benchmark, .. } => (0, benchmark.kernel().shape().num_inputs),
            };
            if n.deps.len() < min || n.deps.len() > max {
                return Err(ShmtError::InvalidConfig(format!(
                    "node {i} has {} dependencies; its kernel admits {min}..={max}",
                    n.deps.len()
                )));
            }
        }

        // Kahn's algorithm, deterministic (lowest ready id first).
        let mut indegree: Vec<usize> = nodes.iter().map(|n| n.deps.len()).collect();
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for &d in &n.deps {
                consumers[d].push(i);
            }
        }
        let mut ready: Vec<NodeId> = (0..nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(nodes.len());
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&i| i != next);
            topo.push(next);
            for &c in &consumers[next] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if topo.len() != nodes.len() {
            return Err(ShmtError::InvalidConfig(
                "DAG contains a dependency cycle".into(),
            ));
        }
        let sinks: Vec<NodeId> = (0..nodes.len())
            .filter(|&i| consumers[i].is_empty())
            .collect();
        let [sink] = sinks[..] else {
            return Err(ShmtError::InvalidConfig(format!(
                "DAG must have exactly one sink, found {}",
                sinks.len()
            )));
        };
        Ok(VopDag { nodes, topo, sink })
    }

    /// The linear DAG equivalent to a [`crate::pipeline::Program`] stage
    /// chain: node `i` consumes node `i-1`, node 0 reads the external
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates [`VopDag::new`]'s validation errors (e.g. an empty
    /// chain).
    pub fn linear(stages: &[Stage]) -> Result<Self> {
        let nodes = stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                DagNode::benchmark(
                    s.benchmark,
                    s.aux_seed,
                    if i == 0 { vec![] } else { vec![i - 1] },
                )
            })
            .collect();
        VopDag::new(nodes)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: validation rejects empty DAGs.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// The DAG's unique sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.deps.len()).sum()
    }

    /// Runs the DAG on the external input.
    ///
    /// # Errors
    ///
    /// Propagates VOP validation and runtime errors.
    pub fn run(&self, input: &Tensor, cfg: &DagConfig) -> Result<DagReport> {
        self.run_with_sink(input, cfg, &mut NullSink)
    }

    /// [`VopDag::run`], streaming every stage's runtime events (plus
    /// `dag.*` counters) into `sink` — the per-stage spans appear under
    /// the ordinary runtime event kinds.
    ///
    /// # Errors
    ///
    /// Same as [`VopDag::run`].
    pub fn run_with_sink(
        &self,
        input: &Tensor,
        cfg: &DagConfig,
        sink: &mut dyn TraceSink,
    ) -> Result<DagReport> {
        self.run_with_cancel(input, cfg, sink, &mut || false)
    }

    /// [`VopDag::run_with_sink`] with a cancellation hook, polled between
    /// stages (the serve layer uses it for pipeline-level deadlines).
    ///
    /// # Errors
    ///
    /// Same as [`VopDag::run`], plus [`ShmtError::Canceled`] when the
    /// hook returns `true`.
    pub fn run_with_cancel(
        &self,
        input: &Tensor,
        cfg: &DagConfig,
        sink: &mut dyn TraceSink,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Result<DagReport> {
        let stages = self.plan_stages(cfg.fuse_elementwise);
        let fused = self.nodes.len() - stages.len();

        // Pass 1: execute every stage once through the ordinary runtime,
        // in topological order. Placement and values are decided here.
        let mut execs: Vec<StageExec> = Vec::with_capacity(stages.len());
        let mut outputs: Vec<Option<Tensor>> = vec![None; stages.len()];
        for (si, stage) in stages.iter().enumerate() {
            if cancel() {
                return Err(ShmtError::Canceled);
            }
            let vop = self.stage_vop(stage, &outputs, input)?;
            let first = stage
                .nodes
                .first()
                .copied()
                .ok_or_else(|| ShmtError::Internal("execution stage has no nodes".into()))?;
            let platform = stage_platform(&self.nodes[first].op);
            let mut stage_cfg = cfg.runtime;
            if let Some(m) = stage.max_mape {
                stage_cfg.guard = GuardConfig::enforcing(m);
            }
            if cfg.residency_dispatch {
                stage_cfg.tpu_residency_hint = self.input_tpu_fraction(stage, &execs);
            }
            let runtime = ShmtRuntime::new(platform.clone(), stage_cfg);
            let mut report = runtime.execute_with_sink(&vop, sink)?;
            let out = sanitize(std::mem::replace(&mut report.output, Tensor::zeros(1, 1)));
            let hlops = partition_vop(&vop, stage_cfg.partitions)?;
            let tiles: Vec<Tile> = hlops.iter().map(|h| h.tile).collect();
            crate::arena::HLOPS.put(hlops);
            let (rows, cols) = vop.partition_space();
            execs.push(StageExec {
                label: vop.kernel().name(),
                elements: rows * cols,
                work_per_elem: vop.kernel().work_per_element(),
                cast_s: if vop.kernel().npu_native_u8() {
                    0.0
                } else {
                    platform.calibration().cast_s_per_elem
                },
                aggregation: vop.kernel().shape().aggregation,
                pipelined: stage_cfg.policy.pipelined() && !stage_cfg.force_synchronous,
                guarded: stage_cfg.guard.enabled,
                tiles,
                platform,
                report,
            });
            outputs[si] = Some(out);
            // Drop intermediates nobody will read again. The sink's exec
            // stage is always last (validation guarantees every other
            // node has a consumer), so the DAG result is never dropped
            // here (`pi < si <= stages.len() - 1`).
            for (pi, out) in outputs.iter_mut().enumerate().take(si) {
                let still_needed = stages.iter().skip(si + 1).any(|s| s.deps.contains(&pi));
                if !still_needed {
                    *out = None;
                }
            }
        }

        // Residency coverage per eligible edge: intersect the producer's
        // TPU tiles with the consumer's TPU tiles. Eligible edges are
        // slot-0 (flowing) edges whose producer has exactly one consumer
        // and tile-aggregated output — multi-consumer outputs must be
        // restored for the other readers, and reduction partials fold on
        // the host.
        let mut resident_in: Vec<Vec<usize>> =
            execs.iter().map(|e| vec![0usize; e.tiles.len()]).collect();
        let mut resident_out: Vec<Vec<usize>> =
            execs.iter().map(|e| vec![0usize; e.tiles.len()]).collect();
        let mut resident_edges = 0usize;
        for (ci, stage) in stages.iter().enumerate() {
            let Some(&pi) = stage.deps.first() else {
                continue;
            };
            let consumers_of_p = stages
                .iter()
                .map(|s| s.deps.iter().filter(|&&d| d == pi).count())
                .sum::<usize>();
            let eligible = consumers_of_p == 1
                && matches!(execs[pi].aggregation, Aggregation::Tile)
                && execs[pi].elements == execs[ci].elements;
            if !eligible {
                continue;
            }
            resident_edges += 1;
            let p_tpu: Vec<&Tile> = tpu_tiles(&execs[pi]);
            let c_tpu: Vec<&Tile> = tpu_tiles(&execs[ci]);
            for r in &execs[ci].report.records {
                if r.device != DeviceKind::EdgeTpu {
                    continue;
                }
                let ct = &execs[ci].tiles[r.id];
                let ov: usize = p_tpu.iter().map(|pt| tile_overlap(pt, ct)).sum();
                resident_in[ci][r.id] = ov.min(r.elements);
            }
            for r in &execs[pi].report.records {
                if r.device != DeviceKind::EdgeTpu {
                    continue;
                }
                let pt = &execs[pi].tiles[r.id];
                let ov: usize = c_tpu.iter().map(|ct| tile_overlap(pt, ct)).sum();
                resident_out[pi][r.id] = ov.min(r.elements);
            }
        }

        // Re-time every stage twice with placement pinned: once with the
        // residency discounts, once without (the naive round-trip model).
        let resident: Vec<Replay> = execs
            .iter()
            .enumerate()
            .map(|(i, e)| replay_stage(e, Some(&resident_in[i]), Some(&resident_out[i])))
            .collect();
        let naive: Vec<Replay> = execs.iter().map(|e| replay_stage(e, None, None)).collect();

        // Compose the stage windows. Both compositions serialize stages on
        // the shared device pool; the naive one additionally round-trips
        // every edge's full tensor through a host staging buffer on the
        // shared bus.
        let windows_resident = compose(&stages, &resident, &execs, false);
        let windows_naive = compose(&stages, &naive, &execs, true);

        let output = outputs[stages.len() - 1]
            .take()
            .ok_or_else(|| ShmtError::Internal("DAG sink produced no output".into()))?;

        let makespan_s = windows_resident.iter().map(|w| w.1).fold(0.0f64, f64::max);
        let naive_makespan_s = windows_naive.iter().map(|w| w.1).fold(0.0f64, f64::max);
        let total_latency_s: f64 = execs.iter().map(|e| e.report.makespan_s).sum();
        let total_energy_j: f64 = execs.iter().map(|e| e.report.energy.total_j()).sum();
        let resident_bus_bytes: u64 = resident.iter().map(|r| r.bus_bytes).sum();
        let naive_bus_bytes: u64 = naive.iter().map(|r| r.bus_bytes).sum::<u64>()
            + stages
                .iter()
                .flat_map(|s| s.deps.iter())
                .map(|&p| 2 * 4 * output_elements(&execs[p]) as u64)
                .sum::<u64>();

        let stage_reports: Vec<DagStageReport> = stages
            .iter()
            .zip(execs)
            .enumerate()
            .map(|(i, (stage, e))| DagStageReport {
                nodes: stage.nodes.clone(),
                label: e.label,
                elements: e.elements,
                start_s: windows_resident[i].0,
                finish_s: windows_resident[i].1,
                naive_start_s: windows_naive[i].0,
                naive_finish_s: windows_naive[i].1,
                resident_in_elements: resident_in[i].iter().sum(),
                resident_out_elements: resident_out[i].iter().sum(),
                staged_in_elements: resident[i].staged_in_elements,
                staged_out_elements: resident[i].staged_out_elements,
                report: e.report,
            })
            .collect();

        if sink.enabled() {
            sink.counter("dag.stages", stage_reports.len() as f64);
            sink.counter("dag.fused", fused as f64);
            sink.counter("dag.edges", self.edge_count() as f64);
            sink.counter("dag.resident_edges", resident_edges as f64);
            sink.counter(
                "dag.resident_elements",
                stage_reports
                    .iter()
                    .map(|s| s.resident_in_elements as f64)
                    .sum(),
            );
            sink.counter("dag.staged_bytes", resident_bus_bytes as f64);
        }

        Ok(DagReport {
            stages: stage_reports,
            makespan_s,
            naive_makespan_s,
            total_latency_s,
            total_energy_j,
            resident_edges,
            resident_bus_bytes,
            naive_bus_bytes,
            fused,
            output,
        })
    }

    /// Groups nodes into execution stages, fusing chains of unary
    /// element-wise nodes when `fuse` is set. Fusion criteria: the
    /// producer is unary, its single consumer is unary, and the producer
    /// is the current tail of its stage — benchmark and binary nodes
    /// never fuse, so a linear benchmark chain always degenerates to one
    /// stage per node.
    fn plan_stages(&self, fuse: bool) -> Vec<ExecStage> {
        let mut consumer_count = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for &d in &n.deps {
                consumer_count[d] += 1;
            }
        }
        let mut stage_of: Vec<usize> = vec![usize::MAX; self.nodes.len()];
        let mut stages: Vec<ExecStage> = Vec::new();
        for &id in &self.topo {
            let node = &self.nodes[id];
            let fusable = fuse
                && matches!(node.op, NodeOp::Unary(_))
                && node.deps.len() == 1
                && matches!(self.nodes[node.deps[0]].op, NodeOp::Unary(_))
                && consumer_count[node.deps[0]] == 1
                && stages[stage_of[node.deps[0]]].nodes.last() == Some(&node.deps[0]);
            if fusable {
                let si = stage_of[node.deps[0]];
                stages[si].nodes.push(id);
                stages[si].max_mape = merge_budget(stages[si].max_mape, node.max_mape);
                stage_of[id] = si;
            } else {
                let si = stages.len();
                stages.push(ExecStage {
                    nodes: vec![id],
                    deps: Vec::new(),
                    max_mape: node.max_mape,
                });
                stage_of[id] = si;
            }
        }
        for st in stages.iter_mut() {
            // Stages are created with one node and only ever gain more.
            let Some(&first) = st.nodes.first() else {
                continue;
            };
            st.deps = self.nodes[first]
                .deps
                .iter()
                .map(|&d| stage_of[d])
                .collect();
        }
        stages
    }

    /// Builds one stage's VOP from its dependencies' outputs (or the
    /// external input for a root).
    fn stage_vop(
        &self,
        stage: &ExecStage,
        outputs: &[Option<Tensor>],
        external: &Tensor,
    ) -> Result<Vop> {
        let mut inputs: Vec<Tensor> = if stage.deps.is_empty() {
            vec![external.clone()]
        } else {
            stage
                .deps
                .iter()
                .map(|&p| {
                    outputs[p]
                        .clone()
                        .ok_or_else(|| ShmtError::Internal("dependency ran out of order".into()))
                })
                .collect::<Result<_>>()?
        };
        let first = stage
            .nodes
            .first()
            .copied()
            .ok_or_else(|| ShmtError::Internal("execution stage has no nodes".into()))?;
        match self.nodes[first].op {
            NodeOp::Benchmark {
                benchmark,
                aux_seed,
            } => {
                let (rows, cols) = inputs
                    .first()
                    .ok_or_else(|| ShmtError::Internal("benchmark stage has no input".into()))?
                    .shape();
                let arity = benchmark.kernel().shape().num_inputs;
                if arity > inputs.len() {
                    let mut extra = benchmark.generate_inputs(rows, cols, aux_seed);
                    inputs.extend(extra.drain(inputs.len()..));
                }
                Vop::from_benchmark(benchmark, inputs)
            }
            NodeOp::Binary(op) => {
                let b = inputs.pop().ok_or_else(|| {
                    ShmtError::Internal("binary stage lost its second input".into())
                })?;
                let a = inputs.pop().ok_or_else(|| {
                    ShmtError::Internal("binary stage lost its first input".into())
                })?;
                Vop::binary(op, a, b)
            }
            NodeOp::Unary(op) => {
                let input = inputs
                    .pop()
                    .ok_or_else(|| ShmtError::Internal("unary stage lost its input".into()))?;
                if stage.nodes.len() == 1 {
                    Vop::unary(op, input)
                } else {
                    let ops: Vec<UnaryOp> = stage
                        .nodes
                        .iter()
                        .map(|&id| match self.nodes[id].op {
                            NodeOp::Unary(u) => u,
                            _ => op,
                        })
                        .collect();
                    // `ops` mirrors `stage.nodes`, proven non-empty above.
                    let opcode = unary_opcode(ops.last().copied().unwrap_or(op));
                    Vop::new(opcode, Box::new(FusedElementwise { ops }), vec![input])
                }
            }
        }
    }

    /// Fraction of a stage's flowing input produced on the Edge TPU by
    /// its slot-0 dependency — the residency hint handed to the planner
    /// under [`DagConfig::residency_dispatch`].
    fn input_tpu_fraction(&self, stage: &ExecStage, execs: &[StageExec]) -> f64 {
        let Some(&p) = stage.deps.first() else {
            return 0.0;
        };
        let e = &execs[p];
        let tpu: usize = e
            .report
            .records
            .iter()
            .filter(|r| r.device == DeviceKind::EdgeTpu)
            .map(|r| r.elements)
            .sum();
        tpu as f64 / e.elements.max(1) as f64
    }
}

/// Configuration for one DAG execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagConfig {
    /// The per-stage runtime configuration (policy, partitions, …).
    pub runtime: RuntimeConfig,
    /// Fuse adjacent unary element-wise nodes into one VOP (default on).
    pub fuse_elementwise: bool,
    /// Feed each stage's planner the fraction of its input already
    /// resident on the Edge TPU ([`crate::sched::PlanContext`]'s
    /// `tpu_residency`), letting quality-aware policies widen the TPU's
    /// admission where the data already lives. Off by default: the hint
    /// changes placement, so runs with it enabled are only comparable to
    /// references executed with the same hint.
    pub residency_dispatch: bool,
}

impl DagConfig {
    /// Defaults (fusion on, residency dispatch off) around a runtime
    /// configuration.
    pub fn new(runtime: RuntimeConfig) -> Self {
        DagConfig {
            runtime,
            fuse_elementwise: true,
            residency_dispatch: false,
        }
    }
}

/// One executed stage of a [`DagReport`].
#[derive(Debug)]
pub struct DagStageReport {
    /// The DAG nodes this stage covers (more than one after fusion).
    pub nodes: Vec<NodeId>,
    /// The stage kernel's name.
    pub label: &'static str,
    /// Elements in the stage's partition space — the *true* per-stage
    /// size (the embedded report's `output` is a placeholder, its
    /// `output_shape` and `records` carry the real counts).
    pub elements: usize,
    /// Stage start in the resident composition (virtual seconds).
    pub start_s: f64,
    /// Stage finish in the resident composition.
    pub finish_s: f64,
    /// Stage start in the naive round-trip composition.
    pub naive_start_s: f64,
    /// Stage finish in the naive round-trip composition.
    pub naive_finish_s: f64,
    /// Input elements read directly from Edge-TPU memory (per-edge
    /// residency the replay did not charge).
    pub resident_in_elements: usize,
    /// Output elements left in Edge-TPU memory for the consumer.
    pub resident_out_elements: usize,
    /// Input elements that crossed the bus into the TPU in the resident
    /// replay (the real cross-device edge charge).
    pub staged_in_elements: usize,
    /// Output elements restored to host memory in the resident replay.
    pub staged_out_elements: usize,
    /// The stage's pass-1 run report (Program-equivalent timing; the
    /// `output` tensor is a placeholder).
    pub report: RunReport,
}

/// The outcome of one DAG execution.
#[derive(Debug)]
pub struct DagReport {
    /// Per-stage reports, in execution (topological) order.
    pub stages: Vec<DagStageReport>,
    /// End-to-end makespan of the resident composition.
    pub makespan_s: f64,
    /// End-to-end makespan of the naive stage-by-stage round-trip
    /// composition (always ≥ `makespan_s`).
    pub naive_makespan_s: f64,
    /// Sum of the pass-1 stage makespans — exactly
    /// [`crate::pipeline::ProgramReport::total_latency_s`] for a linear
    /// benchmark DAG.
    pub total_latency_s: f64,
    /// Sum of stage energies.
    pub total_energy_j: f64,
    /// Edges whose intermediate was eligible to stay device-resident.
    pub resident_edges: usize,
    /// Bytes the resident replays charged to the per-stage interconnect
    /// (cross-device edge traffic only).
    pub resident_bus_bytes: u64,
    /// Bytes the naive model charges: full per-stage staging plus the
    /// host round-trip of every edge tensor.
    pub naive_bus_bytes: u64,
    /// Element-wise nodes eliminated by fusion.
    pub fused: usize,
    /// The sink stage's output.
    pub output: Tensor,
}

impl DagReport {
    /// The resident composition's speedup over naive round-tripping.
    pub fn residency_speedup(&self) -> f64 {
        self.naive_makespan_s / self.makespan_s.max(1e-12)
    }

    /// Collapses the DAG run into one [`RunReport`] shaped like a
    /// single-VOP execution, for layers (serve, bench) whose responses
    /// carry a `RunReport`: per-device accounting, energy, steals, and
    /// quality are summed across stages; `makespan_s` is the resident
    /// composition's end-to-end makespan; `bus_bytes` is the resident
    /// cross-device edge traffic. Per-HLOP records stay with the stage
    /// reports (the merged record list is empty — stage HLOP ids would
    /// collide).
    pub fn into_run_report(mut self) -> RunReport {
        let mut devices: Vec<crate::report::DeviceStats> = Vec::new();
        let mut energy = hetsim::EnergyBreakdown::default();
        let mut quality = crate::guard::QualityReport::default();
        let mut scheduling_overhead_s = 0.0;
        let mut steals = 0;
        let mut peak_memory_bytes = 0u64;
        let mut tpu_elements = 0u64;
        let mut total_elements = 0u64;
        for stage in &mut self.stages {
            let r = &mut stage.report;
            scheduling_overhead_s += r.scheduling_overhead_s;
            steals += r.steals;
            peak_memory_bytes = peak_memory_bytes.max(r.peak_memory_bytes);
            energy.idle_j += r.energy.idle_j;
            energy.active_j += r.energy.active_j;
            for d in &r.devices {
                match devices.iter_mut().find(|m| m.kind == d.kind) {
                    Some(m) => {
                        m.busy_s += d.busy_s;
                        m.wait_s += d.wait_s;
                        m.hlops += d.hlops;
                        m.max_queue_depth = m.max_queue_depth.max(d.max_queue_depth);
                        m.stolen_away += d.stolen_away;
                    }
                    None => devices.push(*d),
                }
            }
            for (kind, elems) in r.device_elements() {
                if kind == DeviceKind::EdgeTpu {
                    tpu_elements += elems;
                }
                total_elements += elems;
            }
            quality.enabled |= r.quality.enabled;
            quality.page_verifiable |= r.quality.page_verifiable;
            quality.approx_hlops += r.quality.approx_hlops;
            quality.checked_hlops += r.quality.checked_hlops;
            quality.sampled_pages += r.quality.sampled_pages;
            quality.estimated_mape = quality.estimated_mape.max(r.quality.estimated_mape);
            quality.true_mape = quality.true_mape.max(r.quality.true_mape);
            quality.overhead_s += r.quality.overhead_s;
            quality.budget_mape = quality.budget_mape.max(r.quality.budget_mape);
            quality.repairs.append(&mut r.quality.repairs);
        }
        let output_shape = self.output.shape();
        RunReport {
            output: self.output,
            output_shape,
            makespan_s: self.makespan_s,
            scheduling_overhead_s,
            devices,
            energy,
            bus_bytes: self.resident_bus_bytes,
            records: Vec::new(),
            tpu_fraction: tpu_elements as f64 / total_elements.max(1) as f64,
            steals,
            peak_memory_bytes,
            faults: hetsim::FaultReport::default(),
            quality,
            trace: None,
        }
    }
}

/// One fused execution stage (internal).
#[derive(Debug, Clone)]
struct ExecStage {
    nodes: Vec<NodeId>,
    deps: Vec<usize>,
    max_mape: Option<f64>,
}

/// Pass-1 execution data kept per stage for the replays.
#[derive(Debug)]
struct StageExec {
    label: &'static str,
    elements: usize,
    work_per_elem: f64,
    cast_s: f64,
    aggregation: Aggregation,
    pipelined: bool,
    guarded: bool,
    tiles: Vec<Tile>,
    platform: Platform,
    report: RunReport,
}

/// Output of one pinned-schedule replay.
#[derive(Debug, Clone, Copy)]
struct Replay {
    makespan_s: f64,
    bus_bytes: u64,
    staged_in_elements: usize,
    staged_out_elements: usize,
}

fn stage_platform(op: &NodeOp) -> Platform {
    match op {
        NodeOp::Benchmark { benchmark, .. } => Platform::jetson(*benchmark),
        _ => Platform::generic(),
    }
}

fn merge_budget(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn tpu_tiles(e: &StageExec) -> Vec<&Tile> {
    e.report
        .records
        .iter()
        .filter(|r| r.device == DeviceKind::EdgeTpu)
        .map(|r| &e.tiles[r.id])
        .collect()
}

/// Elements in the intersection of two tile rectangles.
fn tile_overlap(a: &Tile, b: &Tile) -> usize {
    let r0 = a.row0.max(b.row0);
    let r1 = (a.row0 + a.rows).min(b.row0 + b.rows);
    let c0 = a.col0.max(b.col0);
    let c1 = (a.col0 + a.cols).min(b.col0 + b.cols);
    r1.saturating_sub(r0) * c1.saturating_sub(c0)
}

/// Elements of a stage's *output* (the bytes an edge moves): the
/// partition space for tile aggregation, the folded reduction buffer for
/// reductions.
fn output_elements(e: &StageExec) -> usize {
    let (r, c) = e.report.output_shape;
    r * c
}

fn unary_opcode(op: UnaryOp) -> Opcode {
    match op {
        UnaryOp::Log => Opcode::Log,
        UnaryOp::Relu => Opcode::Relu,
        UnaryOp::Rsqrt => Opcode::Rsqrt,
        UnaryOp::Sqrt => Opcode::Sqrt,
        UnaryOp::Tanh => Opcode::Tanh,
    }
}

/// Re-times one stage's pass-1 schedule with placement pinned,
/// optionally skipping the cast/PCIe charges for device-resident tile
/// regions. `None` residency maps give the naive (full round-trip)
/// timing. Guarded stages return their pass-1 makespan unchanged — the
/// guard's exact-device charges cannot be replayed faithfully, so they
/// are never discounted.
fn replay_stage(
    e: &StageExec,
    resident_in: Option<&[usize]>,
    resident_out: Option<&[usize]>,
) -> Replay {
    if e.guarded {
        return Replay {
            makespan_s: e.report.makespan_s,
            bus_bytes: e.report.bus_bytes,
            staged_in_elements: 0,
            staged_out_elements: 0,
        };
    }
    let profiles = e.platform.device_profiles();
    let cal = e.platform.calibration();
    let t0 = SimTime::from_secs(e.report.scheduling_overhead_s);
    let mut timelines: [DeviceTimeline; 3] = profiles.map(|p| DeviceTimeline::starting_at(p, t0));
    let mut bus = e.platform.bus();

    // Per-device record sequences in pass-1 execution order.
    let mut order: Vec<usize> = (0..e.report.records.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&e.report.records[a], &e.report.records[b]);
        ra.start_s
            .partial_cmp(&rb.start_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ra.id.cmp(&rb.id))
    });
    let mut seqs: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &i in &order {
        seqs[queue_index(e.report.records[i].device)].push(i);
    }
    let mut next = [0usize; 3];
    let mut prev_start = [t0; 3];
    let mut latest = t0;
    let mut staged_in_elements = 0usize;
    let mut staged_out_elements = 0usize;
    let tpu_throughput = profiles[TPU].throughput;

    while let Some(d) = (0..3)
        .filter(|&i| next[i] < seqs[i].len())
        .min_by(|&a, &b| timelines[a].free_at().cmp(&timelines[b].free_at()))
    {
        let r = &e.report.records[seqs[d][next[d]]];
        next[d] += 1;
        let elems = r.elements;
        let work = elems as f64 * e.work_per_elem;

        let data_ready = if d == TPU {
            let res = resident_in.map_or(0, |m| m[r.id]);
            let staged = elems - res.min(elems);
            staged_in_elements += staged;
            let issue = if e.pipelined {
                prev_start[TPU].max(t0)
            } else {
                timelines[TPU].free_at()
            };
            if staged > 0 {
                // The fp32→int8 cast of the staged (non-resident) region
                // burns TPU-side staging time; resident regions skip it
                // entirely — this is the cross-device edge charge.
                let cast_done = if e.cast_s > 0.0 {
                    timelines[TPU].occupy(issue, staged as f64 * e.cast_s * tpu_throughput)
                } else {
                    issue
                };
                let bytes = (staged as f64 * cal.tpu_bytes_per_elem_in) as usize;
                bus.transfer(cast_done, bytes).end
            } else {
                issue
            }
        } else {
            t0
        };
        let start = timelines[d].free_at().max(data_ready);
        prev_start[d] = start;
        let mut end = timelines[d].execute(data_ready, work);
        if d == TPU {
            let extra = tpu_extra_launch_time(elems, &profiles[TPU]);
            if extra > 0.0 {
                timelines[d].stall_until(end + extra);
                end += extra;
            }
        }

        let completion = if d == TPU {
            let res = resident_out.map_or(0, |m| m[r.id]);
            let staged = elems - res.min(elems);
            staged_out_elements += staged;
            if staged > 0 {
                let bytes = (staged as f64 * cal.tpu_bytes_per_elem_out) as usize;
                let xfer = bus.transfer(end, bytes);
                let restored = if e.cast_s > 0.0 {
                    timelines[TPU].occupy(xfer.end, staged as f64 * e.cast_s * tpu_throughput)
                } else {
                    xfer.end
                };
                if !e.pipelined {
                    timelines[TPU].stall_until(restored);
                }
                restored
            } else {
                end
            }
        } else {
            end
        };
        latest = latest.max(completion);
    }

    let ideal_gpu_s = e.elements as f64 * e.work_per_elem / profiles[GPU].throughput;
    let staging_s = e.platform.bench_profile().host_staging_frac * ideal_gpu_s;
    Replay {
        makespan_s: latest.max(t0 + staging_s).as_secs(),
        bus_bytes: bus.total_bytes(),
        staged_in_elements,
        staged_out_elements,
    }
}

/// Composes stage windows over the shared device pool: every stage
/// starts no earlier than the previous stage's finish (the stages share
/// all three devices) and no earlier than its dependencies. The naive
/// composition additionally round-trips every edge tensor through a host
/// staging buffer on a shared bus.
fn compose(
    stages: &[ExecStage],
    replays: &[Replay],
    execs: &[StageExec],
    naive: bool,
) -> Vec<(f64, f64)> {
    let mut bus = Interconnect::jetson_prototype();
    let mut windows: Vec<(f64, f64)> = Vec::with_capacity(stages.len());
    let mut prev_finish = SimTime::ZERO;
    for (i, stage) in stages.iter().enumerate() {
        let mut start = prev_finish;
        for &p in &stage.deps {
            let dep_finish = SimTime::from_secs(windows[p].1);
            if naive {
                let bytes = 4 * output_elements(&execs[p]);
                let down = bus.transfer(dep_finish, bytes);
                let up = bus.transfer(down.end, bytes);
                start = start.max(up.end);
            } else {
                start = start.max(dep_finish);
            }
        }
        let finish = start + replays[i].makespan_s;
        windows.push((start.as_secs(), finish.as_secs()));
        prev_finish = finish;
    }
    windows
}

fn queue_index(kind: DeviceKind) -> usize {
    match kind {
        DeviceKind::Gpu => GPU,
        DeviceKind::Cpu => CPU,
        DeviceKind::EdgeTpu => TPU,
    }
}

/// Mirrors the runtime's extra-launch charge for HLOPs whose int8
/// footprint exceeds the Edge TPU's device memory.
fn tpu_extra_launch_time(elems: usize, tpu: &hetsim::DeviceProfile) -> f64 {
    let dev_mem = tpu.device_memory_bytes.unwrap_or(usize::MAX).max(1);
    let need = elems * 2;
    need.div_ceil(dev_mem).saturating_sub(1) as f64 * tpu.launch_overhead
}

/// A chain of unary element-wise primitives fused into one kernel, so a
/// `relu → sqrt` pair runs as a single VOP with one intermediate-free
/// pass. The int8 NPU path quantizes once around the whole chain, exactly
/// as a fused device kernel would.
#[derive(Debug, Clone)]
struct FusedElementwise {
    ops: Vec<UnaryOp>,
}

impl Kernel for FusedElementwise {
    fn name(&self) -> &'static str {
        "fused-elementwise"
    }

    fn shape(&self) -> KernelShape {
        KernelShape::elementwise()
    }

    fn run_exact(&self, inputs: &[&Tensor], tile: Tile, out: &mut Tensor) {
        let input = inputs[0];
        for r in tile.row0..tile.row0 + tile.rows {
            let src = &input.row(r)[tile.col0..tile.col0 + tile.cols];
            let dst = &mut out.row_mut(r)[tile.col0..tile.col0 + tile.cols];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = self.ops.iter().fold(s, |v, op| op.apply(v));
            }
        }
    }

    fn work_per_element(&self) -> f64 {
        4.0 * self.ops.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Policy;
    use shmt_tensor::gen;

    fn cfg() -> DagConfig {
        let mut rt = RuntimeConfig::new(Policy::WorkStealing);
        rt.partitions = 8;
        DagConfig::new(rt)
    }

    #[test]
    fn rejects_empty_cyclic_and_multi_sink_graphs() {
        assert!(matches!(
            VopDag::new(vec![]),
            Err(ShmtError::InvalidConfig(_))
        ));
        // 0 → 1 → 0 cycle.
        let cyc = vec![
            DagNode::unary(UnaryOp::Relu, 1),
            DagNode::unary(UnaryOp::Sqrt, 0),
        ];
        assert!(matches!(VopDag::new(cyc), Err(ShmtError::InvalidConfig(_))));
        // Two disconnected roots are two sinks.
        let two = vec![
            DagNode::benchmark(Benchmark::Sobel, 1, vec![]),
            DagNode::benchmark(Benchmark::Sobel, 2, vec![]),
        ];
        assert!(matches!(VopDag::new(two), Err(ShmtError::InvalidConfig(_))));
        // Binary arity violation.
        let bad = vec![
            DagNode::benchmark(Benchmark::Sobel, 1, vec![]),
            DagNode {
                op: NodeOp::Binary(BinaryOp::Add),
                deps: vec![0],
                max_mape: None,
            },
        ];
        assert!(matches!(VopDag::new(bad), Err(ShmtError::InvalidConfig(_))));
    }

    #[test]
    fn linear_dag_matches_program_exactly() {
        let stages = [
            Stage {
                benchmark: Benchmark::MeanFilter,
                aux_seed: 1,
            },
            Stage {
                benchmark: Benchmark::Sobel,
                aux_seed: 2,
            },
        ];
        let dag = VopDag::linear(&stages).unwrap();
        let input = gen::image8(96, 96, 3);
        let c = cfg();
        let program = crate::pipeline::Program::new(stages.to_vec()).unwrap();
        let p = program.run_shmt(input.clone(), c.runtime).unwrap();
        let d = dag.run(&input, &c).unwrap();
        assert_eq!(d.output.as_slice(), p.output.as_slice());
        assert_eq!(d.total_latency_s, p.total_latency_s);
        for (ds, ps) in d.stages.iter().zip(&p.stages) {
            assert_eq!(ds.report.makespan_s, ps.makespan_s);
            assert_eq!(ds.report.bus_bytes, ps.bus_bytes);
        }
    }

    #[test]
    fn resident_never_loses_to_naive() {
        let dag = VopDag::linear(&[
            Stage {
                benchmark: Benchmark::Sobel,
                aux_seed: 1,
            },
            Stage {
                benchmark: Benchmark::Histogram,
                aux_seed: 2,
            },
        ])
        .unwrap();
        let input = gen::image8(128, 128, 5);
        let d = dag.run(&input, &cfg()).unwrap();
        assert!(
            d.makespan_s < d.naive_makespan_s,
            "resident {} vs naive {}",
            d.makespan_s,
            d.naive_makespan_s
        );
        assert!(d.resident_bus_bytes <= d.naive_bus_bytes);
    }

    #[test]
    fn unary_chain_fuses_to_one_stage() {
        let dag = VopDag::new(vec![
            DagNode::benchmark(Benchmark::Dwt, 1, vec![]),
            DagNode::unary(UnaryOp::Relu, 0),
            DagNode::unary(UnaryOp::Sqrt, 1),
        ])
        .unwrap();
        let input = gen::image8(64, 64, 9);
        let d = dag.run(&input, &cfg()).unwrap();
        assert_eq!(d.stages.len(), 2, "relu+sqrt fuse into one stage");
        assert_eq!(d.fused, 1);
        assert_eq!(d.stages[1].nodes, vec![1, 2]);
        // Fusion off executes all three nodes separately.
        let mut c = cfg();
        c.fuse_elementwise = false;
        let u = dag.run(&input, &c).unwrap();
        assert_eq!(u.stages.len(), 3);
        assert_eq!(u.fused, 0);
    }

    #[test]
    fn diamond_dag_runs_and_merges() {
        // source → (relu, sqrt-of-relu?) no: diamond via binary join.
        let dag = VopDag::new(vec![
            DagNode::benchmark(Benchmark::MeanFilter, 3, vec![]),
            DagNode::unary(UnaryOp::Relu, 0),
            DagNode::unary(UnaryOp::Tanh, 0),
            DagNode::binary(BinaryOp::Add, 1, 2),
        ])
        .unwrap();
        let input = gen::image8(64, 64, 4);
        let d = dag.run(&input, &cfg()).unwrap();
        assert_eq!(d.output.shape(), (64, 64));
        // Node 0 has two consumers: neither edge is residency-eligible.
        assert_eq!(d.stages.len(), 4);
        assert!(d.makespan_s > 0.0);
        assert!(d.naive_makespan_s > d.makespan_s);
    }

    #[test]
    fn canceled_runs_surface_typed_error() {
        let dag = VopDag::linear(&[Stage {
            benchmark: Benchmark::Sobel,
            aux_seed: 1,
        }])
        .unwrap();
        let input = gen::image8(32, 32, 1);
        let err = dag
            .run_with_cancel(&input, &cfg(), &mut NullSink, &mut || true)
            .unwrap_err();
        assert!(matches!(err, ShmtError::Canceled));
    }
}
