//! Experiment drivers regenerating every table and figure in the paper's
//! evaluation (§5). Each function returns typed rows; the `shmt-bench`
//! crate's `fig*`/`table*` binaries print them in the paper's layout.
//!
//! The drivers are size-parametric: integration tests exercise them at
//! small sizes, the bench binaries run them at paper scale.

use shmt_kernels::{Benchmark, ALL_BENCHMARKS};
use shmt_tensor::Tensor;

use crate::baseline::{exact_reference, gpu_baseline, software_pipelining};
use crate::calibration::bench_profile;
use crate::error::Result;
use crate::platform::Platform;
use crate::quality::{mape, ssim};
use crate::report::{BaselineReport, RunReport};
use crate::runtime::{RuntimeConfig, ShmtRuntime};
use crate::sampling::SamplingMethod;
use crate::sched::{Policy, QawsAssignment};
use crate::vop::Vop;

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset edge length (datasets are `size x size`).
    pub size: usize,
    /// Desired HLOP count.
    pub partitions: usize,
    /// QAWS sampling rate.
    pub sampling_rate: f64,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            size: 2048,
            partitions: 64,
            sampling_rate: 2.0f64.powi(-15),
            seed: 0xC0FFEE,
        }
    }
}

impl ExperimentConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        ExperimentConfig {
            size: 128,
            partitions: 8,
            sampling_rate: 0.02,
            seed: 0xC0FFEE,
        }
    }
}

/// Geometric mean.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The ten Fig 6 policies in the paper's legend order.
pub fn fig6_policies() -> Vec<(String, Fig6Policy)> {
    let mut out = vec![
        (
            "IRA-sampling".to_string(),
            Fig6Policy::Runtime(Policy::IraSampling),
        ),
        ("SW pipelining".to_string(), Fig6Policy::SoftwarePipelining),
        (
            "even distribution".to_string(),
            Fig6Policy::Runtime(Policy::EvenDistribution),
        ),
        (
            "work-stealing".to_string(),
            Fig6Policy::Runtime(Policy::WorkStealing),
        ),
    ];
    for p in Policy::qaws_variants() {
        out.push((p.name().to_string(), Fig6Policy::Runtime(p)));
    }
    out
}

/// A Fig 6 policy: either an SHMT runtime policy or the GPU-side
/// software-pipelining reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fig6Policy {
    /// Executed through [`ShmtRuntime`].
    Runtime(Policy),
    /// Executed through [`software_pipelining`].
    SoftwarePipelining,
}

/// Everything needed to evaluate one benchmark at one size: the VOP, the
/// exact reference output, and the GPU baseline report.
pub struct BenchContext {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The VOP under test.
    pub vop: Vop,
    /// Ground-truth output.
    pub reference: Tensor,
    /// The GPU baseline run.
    pub baseline: BaselineReport,
    /// Experiment parameters.
    pub config: ExperimentConfig,
}

impl std::fmt::Debug for BenchContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchContext")
            .field("benchmark", &self.benchmark)
            .finish()
    }
}

impl BenchContext {
    /// Prepares inputs, reference, and baseline for one benchmark.
    ///
    /// # Errors
    ///
    /// Propagates VOP validation and partitioning errors.
    pub fn new(benchmark: Benchmark, config: ExperimentConfig) -> Result<Self> {
        let inputs = benchmark.generate_inputs(config.size, config.size, config.seed);
        let vop = Vop::from_benchmark(benchmark, inputs)?;
        let reference = exact_reference(&vop);
        let baseline = gpu_baseline(&Platform::jetson(benchmark), &vop, config.partitions)?;
        Ok(BenchContext {
            benchmark,
            vop,
            reference,
            baseline,
            config,
        })
    }

    /// Runs one SHMT policy on this context.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run(&self, policy: Policy) -> Result<RunReport> {
        self.run_with(RuntimeConfig {
            policy,
            partitions: self.config.partitions,
            quality: crate::sched::QualityConfig {
                sampling_rate: self.config.sampling_rate,
                ..Default::default()
            },
            ..RuntimeConfig::new(policy)
        })
    }

    /// Runs with an explicit runtime configuration.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_with(&self, config: RuntimeConfig) -> Result<RunReport> {
        ShmtRuntime::new(Platform::jetson(self.benchmark), config).execute(&self.vop)
    }

    /// Speedup of a run over the GPU baseline.
    pub fn speedup(&self, report: &RunReport) -> f64 {
        self.baseline.makespan_s / report.makespan_s
    }

    /// MAPE of a run against the exact reference.
    pub fn mape(&self, report: &RunReport) -> f64 {
        mape(&self.reference, &report.output)
    }

    /// SSIM of a run against the exact reference.
    pub fn ssim(&self, report: &RunReport) -> f64 {
        ssim(&self.reference, &report.output)
    }
}

// ---------------------------------------------------------------------
// Fig 2: motivation — solo Edge TPU vs theoretical gains.
// ---------------------------------------------------------------------

/// One row of Fig 2.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured solo Edge TPU speedup over the GPU baseline.
    pub edge_tpu: f64,
    /// Theoretical gain of the conventional best-device approach.
    pub conventional: f64,
    /// Theoretical gain of SHMT (all devices' throughputs combined).
    pub shmt: f64,
}

/// Regenerates Fig 2 for every benchmark, plus a GMEAN row.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig2(config: ExperimentConfig) -> Result<Vec<Fig2Row>> {
    let mut rows = Vec::new();
    for b in ALL_BENCHMARKS {
        let ctx = BenchContext::new(b, config)?;
        let tpu_run = ctx.run_with(RuntimeConfig {
            partitions: config.partitions,
            ..RuntimeConfig::new(Policy::WorkStealing).tpu_only()
        })?;
        let p = bench_profile(b);
        rows.push(Fig2Row {
            benchmark: b.name().to_string(),
            edge_tpu: ctx.speedup(&tpu_run),
            conventional: p.tpu_ratio.max(1.0),
            shmt: 1.0 + p.cpu_ratio + p.tpu_ratio,
        });
    }
    rows.push(Fig2Row {
        benchmark: "GMEAN".into(),
        edge_tpu: gmean(&rows.iter().map(|r| r.edge_tpu).collect::<Vec<_>>()),
        conventional: gmean(&rows.iter().map(|r| r.conventional).collect::<Vec<_>>()),
        shmt: gmean(&rows.iter().map(|r| r.shmt).collect::<Vec<_>>()),
    });
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 6: end-to-end speedup per policy.
// ---------------------------------------------------------------------

/// One (policy, benchmark) speedup cell of Fig 6.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Policy legend name.
    pub policy: String,
    /// Per-benchmark speedups in `ALL_BENCHMARKS` order.
    pub speedups: Vec<f64>,
    /// Geometric mean across benchmarks.
    pub gmean: f64,
}

/// Regenerates Fig 6: speedup of every policy over the GPU baseline.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig6(config: ExperimentConfig) -> Result<Vec<SpeedupRow>> {
    let contexts: Vec<BenchContext> = ALL_BENCHMARKS
        .iter()
        .map(|&b| BenchContext::new(b, config))
        .collect::<Result<_>>()?;
    let mut rows = Vec::new();
    for (name, policy) in fig6_policies() {
        let mut speedups = Vec::new();
        for ctx in &contexts {
            let s = match policy {
                Fig6Policy::Runtime(p) => ctx.speedup(&ctx.run(p)?),
                Fig6Policy::SoftwarePipelining => {
                    let pipe = software_pipelining(
                        &Platform::jetson(ctx.benchmark),
                        &ctx.vop,
                        config.partitions,
                    )?;
                    ctx.baseline.makespan_s / pipe.makespan_s
                }
            };
            speedups.push(s);
        }
        let g = gmean(&speedups);
        rows.push(SpeedupRow {
            policy: name,
            speedups,
            gmean: g,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 7 / Fig 8: quality per policy.
// ---------------------------------------------------------------------

/// The quality-policy list of Fig 7/8 in legend order.
pub fn quality_policies() -> Vec<(String, QualityPolicy)> {
    let mut out = vec![
        ("edgeTPU".to_string(), QualityPolicy::TpuOnly),
        (
            "IRA-sampling".to_string(),
            QualityPolicy::Runtime(Policy::IraSampling),
        ),
        (
            "work-stealing".to_string(),
            QualityPolicy::Runtime(Policy::WorkStealing),
        ),
    ];
    for p in Policy::qaws_variants() {
        out.push((p.name().to_string(), QualityPolicy::Runtime(p)));
    }
    out.push(("oracle".to_string(), QualityPolicy::Runtime(Policy::Oracle)));
    out
}

/// A Fig 7/8 policy: a runtime policy or the TPU-only reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityPolicy {
    /// Everything on the Edge TPU.
    TpuOnly,
    /// An SHMT runtime policy.
    Runtime(Policy),
}

/// One policy row of Fig 7 (MAPE) or Fig 8 (SSIM).
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Policy legend name.
    pub policy: String,
    /// Per-benchmark values.
    pub values: Vec<f64>,
    /// Geometric mean.
    pub gmean: f64,
}

fn run_quality_policy(ctx: &BenchContext, policy: QualityPolicy) -> Result<RunReport> {
    match policy {
        QualityPolicy::TpuOnly => ctx.run_with(RuntimeConfig {
            partitions: ctx.config.partitions,
            ..RuntimeConfig::new(Policy::WorkStealing).tpu_only()
        }),
        QualityPolicy::Runtime(p) => ctx.run(p),
    }
}

/// Regenerates Fig 7: MAPE (as a fraction) for every policy over all ten
/// benchmarks.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig7(config: ExperimentConfig) -> Result<Vec<QualityRow>> {
    let contexts: Vec<BenchContext> = ALL_BENCHMARKS
        .iter()
        .map(|&b| BenchContext::new(b, config))
        .collect::<Result<_>>()?;
    quality_table(&contexts, |ctx, r| ctx.mape(r))
}

/// Regenerates Fig 8: SSIM for the six image benchmarks.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig8(config: ExperimentConfig) -> Result<Vec<QualityRow>> {
    let contexts: Vec<BenchContext> = ALL_BENCHMARKS
        .iter()
        .filter(|b| b.is_image())
        .map(|&b| BenchContext::new(b, config))
        .collect::<Result<_>>()?;
    quality_table(&contexts, |ctx, r| ctx.ssim(r))
}

fn quality_table(
    contexts: &[BenchContext],
    metric: impl Fn(&BenchContext, &RunReport) -> f64,
) -> Result<Vec<QualityRow>> {
    let mut rows = Vec::new();
    for (name, policy) in quality_policies() {
        let mut values = Vec::new();
        for ctx in contexts {
            let report = run_quality_policy(ctx, policy)?;
            values.push(metric(ctx, &report));
        }
        let g = gmean(&values);
        rows.push(QualityRow {
            policy: name,
            values,
            gmean: g,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 9: sampling-rate sensitivity of QAWS-TS.
// ---------------------------------------------------------------------

/// One sampling-rate row of Fig 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// log2 of the sampling rate (e.g. -15).
    pub log2_rate: i32,
    /// Per-benchmark MAPE.
    pub mape: Vec<f64>,
    /// Per-benchmark speedup.
    pub speedup: Vec<f64>,
    /// MAPE geometric mean.
    pub mape_gmean: f64,
    /// Speedup geometric mean.
    pub speedup_gmean: f64,
}

/// Regenerates Fig 9: QAWS-TS quality and speedup across sampling rates
/// 2⁻²¹ … 2⁻¹⁴ (paper uses 2048x2048 inputs here).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig9(config: ExperimentConfig, log2_rates: &[i32]) -> Result<Vec<Fig9Row>> {
    let contexts: Vec<BenchContext> = ALL_BENCHMARKS
        .iter()
        .map(|&b| BenchContext::new(b, config))
        .collect::<Result<_>>()?;
    let qaws_ts = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let mut rows = Vec::new();
    for &lr in log2_rates {
        let rate = 2.0f64.powi(lr);
        let mut mapes = Vec::new();
        let mut speedups = Vec::new();
        for ctx in &contexts {
            let report = ctx.run_with(RuntimeConfig {
                partitions: config.partitions,
                quality: crate::sched::QualityConfig {
                    sampling_rate: rate,
                    ..Default::default()
                },
                ..RuntimeConfig::new(qaws_ts)
            })?;
            mapes.push(ctx.mape(&report));
            speedups.push(ctx.speedup(&report));
        }
        rows.push(Fig9Row {
            log2_rate: lr,
            mape_gmean: gmean(&mapes),
            speedup_gmean: gmean(&speedups),
            mape: mapes,
            speedup: speedups,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 10: energy and EDP.
// ---------------------------------------------------------------------

/// One benchmark row of Fig 10 (all values normalized to the GPU
/// baseline's total energy, except EDP which is normalized to the
/// baseline's EDP).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline active energy fraction.
    pub baseline_active: f64,
    /// Baseline idle energy fraction.
    pub baseline_idle: f64,
    /// SHMT active energy fraction.
    pub shmt_active: f64,
    /// SHMT idle energy fraction.
    pub shmt_idle: f64,
    /// SHMT EDP relative to baseline EDP.
    pub shmt_edp: f64,
}

/// Regenerates Fig 10 with SHMT under QAWS-TS.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig10(config: ExperimentConfig) -> Result<Vec<Fig10Row>> {
    let qaws_ts = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let mut rows = Vec::new();
    for b in ALL_BENCHMARKS {
        let ctx = BenchContext::new(b, config)?;
        let shmt = ctx.run(qaws_ts)?;
        let base_total = ctx.baseline.energy.total_j();
        rows.push(Fig10Row {
            benchmark: b.name().to_string(),
            baseline_active: ctx.baseline.energy.active_j / base_total,
            baseline_idle: ctx.baseline.energy.idle_j / base_total,
            shmt_active: shmt.energy.active_j / base_total,
            shmt_idle: shmt.energy.idle_j / base_total,
            shmt_edp: shmt.edp() / ctx.baseline.edp(),
        });
    }
    let g =
        |f: fn(&Fig10Row) -> f64, rows: &[Fig10Row]| gmean(&rows.iter().map(f).collect::<Vec<_>>());
    rows.push(Fig10Row {
        benchmark: "GMEAN".into(),
        baseline_active: g(|r| r.baseline_active, &rows),
        baseline_idle: g(|r| r.baseline_idle, &rows),
        shmt_active: g(|r| r.shmt_active, &rows),
        shmt_idle: g(|r| r.shmt_idle, &rows),
        shmt_edp: g(|r| r.shmt_edp, &rows),
    });
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 11: memory footprint. Table 3: communication overhead.
// ---------------------------------------------------------------------

/// One benchmark entry of Fig 11 / Table 3.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub benchmark: String,
    /// SHMT peak memory over baseline peak memory (Fig 11).
    pub memory_ratio: f64,
    /// Communication overhead fraction (Table 3).
    pub comm_overhead: f64,
}

/// Regenerates Fig 11 and Table 3 in one pass (both come from the same
/// QAWS-TS run).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig11_table3(config: ExperimentConfig) -> Result<Vec<OverheadRow>> {
    let qaws_ts = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let mut rows = Vec::new();
    for b in ALL_BENCHMARKS {
        let ctx = BenchContext::new(b, config)?;
        let shmt = ctx.run(qaws_ts)?;
        rows.push(OverheadRow {
            benchmark: b.name().to_string(),
            memory_ratio: shmt.peak_memory_bytes as f64 / ctx.baseline.peak_memory_bytes as f64,
            comm_overhead: shmt.comm_overhead(),
        });
    }
    rows.push(OverheadRow {
        benchmark: "GMEAN".into(),
        memory_ratio: gmean(&rows.iter().map(|r| r.memory_ratio).collect::<Vec<_>>()),
        comm_overhead: gmean(
            &rows
                .iter()
                .map(|r| r.comm_overhead.max(1e-9))
                .collect::<Vec<_>>(),
        ),
    });
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 12: problem-size scaling.
// ---------------------------------------------------------------------

/// One problem-size column of Fig 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Dataset elements (the x axis: 4K … 64M).
    pub elements: usize,
    /// Per-benchmark QAWS-TS speedups.
    pub speedups: Vec<f64>,
    /// Geometric mean.
    pub gmean: f64,
}

/// Regenerates Fig 12: QAWS-TS speedup across problem sizes. `edges` are
/// the square dataset edge lengths to sweep (e.g. 64 → 4K elements).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn fig12(base: ExperimentConfig, edges: &[usize]) -> Result<Vec<Fig12Row>> {
    let qaws_ts = Policy::Qaws {
        assignment: QawsAssignment::TopK,
        sampling: SamplingMethod::Striding,
    };
    let mut rows = Vec::new();
    for &edge in edges {
        let config = ExperimentConfig { size: edge, ..base };
        let mut speedups = Vec::new();
        for b in ALL_BENCHMARKS {
            let ctx = BenchContext::new(b, config)?;
            let report = ctx.run(qaws_ts)?;
            speedups.push(ctx.speedup(&report));
        }
        let g = gmean(&speedups);
        rows.push(Fig12Row {
            elements: edge * edge,
            speedups,
            gmean: g,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_matches_hand_computed() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn fig6_has_ten_policies_in_order() {
        let names: Vec<String> = fig6_policies().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 10);
        assert_eq!(names[0], "IRA-sampling");
        assert_eq!(names[3], "work-stealing");
        assert_eq!(names[4], "QAWS-TS");
        assert_eq!(names[9], "QAWS-LR");
    }

    #[test]
    fn quality_policies_bracket_with_tpu_and_oracle() {
        let names: Vec<String> = quality_policies().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.first().unwrap(), "edgeTPU");
        assert_eq!(names.last().unwrap(), "oracle");
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn fig9_sweep_produces_rows_per_rate() {
        let rows = fig9(ExperimentConfig::tiny(), &[-10, -6]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.mape.len(), 10);
            assert_eq!(r.speedup.len(), 10);
            assert!(r.mape_gmean >= 0.0);
            assert!(r.speedup_gmean > 0.0);
        }
    }

    #[test]
    fn fig10_energy_rows_are_normalized() {
        let rows = fig10(ExperimentConfig::tiny()).unwrap();
        assert_eq!(rows.len(), 11);
        for r in &rows[..10] {
            let base_total = r.baseline_active + r.baseline_idle;
            assert!(
                (base_total - 1.0).abs() < 1e-9,
                "{}: {base_total}",
                r.benchmark
            );
            assert!(r.shmt_edp > 0.0);
        }
    }

    #[test]
    fn fig11_table3_rows_are_positive() {
        let rows = fig11_table3(ExperimentConfig::tiny()).unwrap();
        assert_eq!(rows.len(), 11);
        for r in &rows[..10] {
            assert!(r.memory_ratio > 0.0, "{}", r.benchmark);
            assert!(
                r.comm_overhead >= 0.0 && r.comm_overhead < 1.0,
                "{}",
                r.benchmark
            );
        }
    }

    #[test]
    fn fig12_sweeps_sizes() {
        let rows = fig12(ExperimentConfig::tiny(), &[64, 128]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].elements, 4096);
        assert_eq!(rows[1].elements, 16384);
        assert!(rows.iter().all(|r| r.gmean > 0.0));
    }

    #[test]
    fn fig2_rows_cover_all_benchmarks() {
        let rows = fig2(ExperimentConfig::tiny()).unwrap();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows.last().unwrap().benchmark, "GMEAN");
        for r in &rows[..10] {
            assert!(
                r.shmt > r.conventional,
                "{}: SHMT bound above conventional",
                r.benchmark
            );
        }
    }
}
